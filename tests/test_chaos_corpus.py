"""Corpus mechanics + the tier-1 replay harness.

The parametrized replay test is the regression teeth of the chaos
subsystem: every checked-in minimal repro in ``tests/chaos_corpus/``
re-runs under strict invariant checks with the determinism oracle and
must pass.  A fixed bug that regresses, or fresh nondeterminism in one
of the sentinel scenarios, fails tier-1.
"""

import json
import os

import pytest

from repro.chaos import (OracleVerdict, Scenario, corpus_entry,
                         entry_filename, load_corpus, replay_entry,
                         save_entry)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "chaos_corpus")

_CORPUS = load_corpus(CORPUS_DIR)


class TestCorpusMechanics:
    def test_entry_save_load_round_trip(self, tmp_path):
        scenario = Scenario(seed=7, faults="rst@2:1",
                            config={"protocol": "spdy"})
        verdict = OracleVerdict(status="invariant-violation",
                                error_type="InvariantViolation",
                                message="m")
        entry = corpus_entry(scenario, verdict, master_seed=5,
                             trial_index=12,
                             shrink_info={"attempts": 9},
                             note="unit test")
        path = save_entry(entry, str(tmp_path))
        assert os.path.basename(path) == entry_filename(entry)
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        assert loaded[0][1] == entry
        assert Scenario.from_dict(loaded[0][1]["scenario"]) == scenario

    def test_entry_filename_is_deterministic_and_self_describing(self):
        scenario = Scenario(seed=7, faults="rst@2:1")
        entry = corpus_entry(scenario, OracleVerdict(status="wedge"))
        name = entry_filename(entry)
        assert name.startswith("wedge-")
        assert name.endswith("-s7.json")
        assert entry_filename(entry) == name

    def test_load_corpus_ignores_non_entries(self, tmp_path):
        (tmp_path / "README.md").write_text("not json")
        (tmp_path / "stray.json").write_text(json.dumps({"no": "scenario"}))
        assert load_corpus(str(tmp_path)) == []

    def test_load_missing_dir_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []


class TestCheckedInCorpus:
    def test_corpus_is_not_empty(self):
        # The corpus is part of the suite's coverage: at minimum the
        # sentinel scenarios from the first fuzzing sweeps live here.
        assert _CORPUS, f"no corpus entries found in {CORPUS_DIR}"

    def test_entries_are_well_formed(self):
        for path, entry in _CORPUS:
            assert entry.get("schema") == 1, path
            scenario = Scenario.from_dict(entry["scenario"])
            scenario.experiment_config()  # must validate
            assert os.path.basename(path) == entry_filename(entry), \
                f"{path} is misnamed for its content"

    @pytest.mark.parametrize(
        "path,entry", _CORPUS,
        ids=[os.path.basename(p) for p, _ in _CORPUS])
    def test_corpus_replays_green(self, path, entry):
        """Tier-1 regression replay: strict checks + determinism oracle."""
        verdict = replay_entry(entry)
        assert verdict.status == "pass", (
            f"{os.path.basename(path)} no longer replays green: "
            f"{verdict.status}: {verdict.message}\n"
            f"(this repro was checked in as a fixed "
            f"{entry.get('expected_failure')!r} bug or a sentinel; "
            f"replay with: repro chaos --replay {path})")
