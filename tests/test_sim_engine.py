"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import SimulationError, Simulator, Timer


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(1.0, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]
        assert sim.now == 5.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)  # repro-lint: disable=SIM002 -- exercises the error path

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["a", "b"]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_step_runs_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert not sim.step()

    def test_pending_counts_live_events(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        event.cancel()
        assert sim.pending() == 1

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(3.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [3.0]


class TestRngStreams:
    def test_streams_are_deterministic_in_seed_and_name(self):
        a = Simulator(seed=42).rng("radio").random()
        b = Simulator(seed=42).rng("radio").random()
        assert a == b

    def test_different_names_give_independent_streams(self):
        sim = Simulator(seed=42)
        assert sim.rng("radio").random() != sim.rng("loss").random()

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng("x").random()
        b = Simulator(seed=2).rng("x").random()
        assert a != b

    def test_stream_is_cached(self):
        sim = Simulator()
        assert sim.rng("x") is sim.rng("x")


class TestTimer:
    def test_timer_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]
        assert not timer.armed

    def test_restart_supersedes_previous_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.start(5.0)
        sim.run()
        assert fired == [5.0]

    def test_stop_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_remaining(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert timer.remaining() is None
        timer.start(4.0)
        assert timer.remaining() == pytest.approx(4.0)

    def test_timer_args_passed_through(self):
        sim = Simulator()
        got = []
        timer = Timer(sim, lambda a, b: got.append((a, b)))
        timer.start(1.0, "x", 7)
        sim.run()
        assert got == [("x", 7)]


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=50))
def test_property_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert len(times) == len(delays)
    assert times == sorted(times)


class TestRunUntilAndMaxEvents:
    def test_until_advances_clock_past_cancelled_tail(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "b").cancel()
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_until_with_empty_queue_still_advances(self):
        sim = Simulator()
        assert sim.run(until=7.0) == 7.0
        assert sim.now == 7.0

    def test_max_events_does_not_jump_to_until(self):
        # Stopping on the event budget must leave the clock at the last
        # fired event, not teleport it past work still in the queue.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(3.0, fired.append, "c")
        stopped_at = sim.run(until=10.0, max_events=2)
        assert fired == ["a", "b"]
        assert stopped_at == 2.0
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert fired == ["a", "b", "c"]
        assert sim.now == 10.0

    def test_until_before_next_event_leaves_it_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(4.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == []
        assert sim.now == 2.0
        assert sim.peek_time() == 4.0


class TestPeekTime:
    def test_peek_empty(self):
        assert Simulator().peek_time() is None

    def test_peek_returns_next_live_time(self):
        sim = Simulator()
        sim.schedule(2.5, lambda: None)
        sim.schedule(1.5, lambda: None)
        assert sim.peek_time() == 1.5

    def test_peek_skips_cancelled_head(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_all_cancelled_is_none_and_prunes(self):
        sim = Simulator()
        events = [sim.schedule(t, lambda: None) for t in (1.0, 2.0, 3.0)]
        for event in events:
            event.cancel()
        assert sim.peek_time() is None
        assert sim.pending() == 0

    def test_peek_does_not_advance_clock_or_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        assert sim.peek_time() == 1.0
        assert sim.now == 0.0
        assert fired == []
