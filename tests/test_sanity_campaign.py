"""Crash-safe campaigns: digests, journal, isolation, resume, wedge."""

import json

import pytest

from repro.cli import main
from repro.experiments.runner import ExperimentConfig, run_many
from repro.sanity import (CampaignJournal, TrialFailure, WedgeError,
                          config_digest, run_campaign, sweep_configs)

SMALL = dict(site_ids=[1], think_time=4.0, tail_time=4.0, load_timeout=4.0)


# ----------------------------------------------------------------------
# config digests
# ----------------------------------------------------------------------
def test_digest_stable_for_equal_configs():
    assert config_digest(ExperimentConfig(**SMALL)) == \
        config_digest(ExperimentConfig(**SMALL))


def test_digest_ignores_seed_checks_and_budget():
    base = ExperimentConfig(**SMALL)
    assert config_digest(base) == config_digest(
        base.with_overrides(seed=7, checks="strict", max_events=1000))


def test_digest_sees_measurement_knobs():
    base = ExperimentConfig(**SMALL)
    assert config_digest(base) != config_digest(
        base.with_overrides(protocol="spdy"))
    assert config_digest(base) != config_digest(
        base.with_overrides(tcp=base.tcp.with_overrides(initial_cwnd=3.0)))


def test_digest_canonicalizes_nested_config():
    # TcpConfig (a nested dataclass) must round into the digest without
    # repr()-style memory addresses.
    digest = config_digest(ExperimentConfig(**SMALL))
    assert len(digest) == 16
    int(digest, 16)  # hex


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
def test_journal_appends_and_loads(tmp_path):
    journal = CampaignJournal(str(tmp_path / "j.jsonl"))
    journal.append({"kind": "trial", "digest": "abc", "seed": 0,
                    "status": "ok"})
    journal.append({"kind": "trial", "digest": "abc", "seed": 1,
                    "status": "failed"})
    assert len(journal.load()) == 2
    assert set(journal.completed()) == {("abc", 0), ("abc", 1)}


def test_journal_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = CampaignJournal(str(path))
    journal.append({"kind": "trial", "digest": "abc", "seed": 0,
                    "status": "ok"})
    with open(path, "a") as handle:
        handle.write('{"kind": "trial", "digest": "de')  # crash mid-write
    assert len(journal.load()) == 1
    assert set(journal.completed()) == {("abc", 0)}


def test_journal_missing_file_is_empty(tmp_path):
    journal = CampaignJournal(str(tmp_path / "nope.jsonl"))
    assert journal.load() == []
    assert journal.completed() == {}


def test_journal_fsync_every_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="fsync_every"):
        CampaignJournal(str(tmp_path / "j.jsonl"), fsync_every=0)


def test_journal_batched_fsync_counts(tmp_path, monkeypatch):
    import repro.sanity.campaign as campaign_mod

    synced = {"file": 0, "dir": 0}
    real_fsync = campaign_mod.os.fsync

    def counting_fsync(fd):
        synced["file"] += 1
        return real_fsync(fd)

    monkeypatch.setattr(campaign_mod.os, "fsync", counting_fsync)
    monkeypatch.setattr(CampaignJournal, "_fsync_directory",
                        staticmethod(lambda directory: synced.__setitem__(
                            "dir", synced["dir"] + 1)))
    journal = CampaignJournal(str(tmp_path / "j.jsonl"), fsync_every=4)
    for seed in range(10):
        journal.append({"kind": "trial", "digest": "a", "seed": seed})
    # one fsync per full batch of 4 (after records 4 and 8) ...
    assert synced["file"] == 2
    journal.close()
    # ... and close() flushes the 2-record remainder
    assert synced["file"] == 3
    assert len(CampaignJournal(str(tmp_path / "j.jsonl")).load()) == 10


def test_journal_batched_records_survive_process_buffering(tmp_path):
    # Records written but not yet fsynced must still be visible to a
    # different handle: append() flushes to the OS on every record, the
    # batching only defers the platter sync.
    journal = CampaignJournal(str(tmp_path / "j.jsonl"), fsync_every=100)
    journal.append({"kind": "trial", "digest": "a", "seed": 0})
    assert len(CampaignJournal(str(tmp_path / "j.jsonl")).load()) == 1
    journal.close()


@pytest.mark.parametrize("fsync_every", [1, 3, 7])
def test_batched_journal_torn_tail_property(tmp_path, fsync_every):
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=40, deadline=None)
    @given(n_records=st.integers(1, 8), torn=st.integers(0, 120))
    def check(n_records, torn):
        path = tmp_path / f"torn-{fsync_every}.jsonl"
        if path.exists():
            path.unlink()
        journal = CampaignJournal(str(path), fsync_every=fsync_every)
        for seed in range(n_records):
            journal.append({"kind": "trial", "digest": "abc",
                            "seed": seed, "status": "ok"})
        journal.close()
        size = path.stat().st_size
        with open(path, "a+b") as handle:
            handle.truncate(max(0, size - torn))

        # Whatever the crash tore off, what remains loads as a clean
        # serial prefix ...
        loaded = CampaignJournal(str(path)).load()
        assert [r["seed"] for r in loaded] == list(range(len(loaded)))

        # ... and appending continues safely past any torn fragment.
        journal = CampaignJournal(str(path), fsync_every=fsync_every)
        journal.append({"kind": "trial", "digest": "abc", "seed": 99,
                        "status": "ok"})
        journal.close()
        reloaded = CampaignJournal(str(path)).load()
        assert reloaded[:len(loaded)] == loaded
        assert reloaded[-1]["seed"] == 99

    check()


# ----------------------------------------------------------------------
# trial failures and isolation
# ----------------------------------------------------------------------
def test_trial_failure_kinds():
    cfg = ExperimentConfig(**SMALL)
    assert TrialFailure.from_exception(cfg, ValueError("x")).kind \
        == "exception"
    assert TrialFailure.from_exception(cfg, WedgeError(9, 1.0, 2.0)).kind \
        == "wedge"
    from repro.sanity import InvariantViolation
    violation = InvariantViolation("inv", "comp", "msg")
    assert TrialFailure.from_exception(cfg, violation).kind \
        == "invariant-violation"


def test_trial_failure_carries_replay_context():
    # Journaled failures must be self-contained enough for
    # `repro chaos --replay <journal-line>`: fault spec + master seed.
    cfg = ExperimentConfig(**SMALL, fault_plan="rst@3:2,blackout@1:2:drop")
    failure = TrialFailure.from_exception(cfg, ValueError("x"),
                                          master_seed=42)
    data = failure.as_dict()
    assert data["master_seed"] == 42
    # normalized via FaultPlan.to_spec(): exact, parseable, canonical
    assert data["faults"] == "blackout@1.0:2.0:drop,rst@3.0:2"
    from repro.faults import FaultPlan
    assert FaultPlan.parse(data["faults"]) == FaultPlan.parse(cfg.fault_plan)

    plain = TrialFailure.from_exception(ExperimentConfig(**SMALL),
                                        ValueError("x"))
    assert plain.as_dict()["faults"] is None
    assert plain.as_dict()["master_seed"] is None


def test_journal_append_fsyncs_records_and_directory(tmp_path, monkeypatch):
    import repro.sanity.campaign as campaign_mod

    synced = {"file": 0, "dir": 0}
    real_fsync = campaign_mod.os.fsync

    def counting_fsync(fd):
        synced["file"] += 1
        return real_fsync(fd)

    def counting_dir(directory):
        synced["dir"] += 1

    monkeypatch.setattr(campaign_mod.os, "fsync", counting_fsync)
    monkeypatch.setattr(CampaignJournal, "_fsync_directory",
                        staticmethod(counting_dir))
    journal = CampaignJournal(str(tmp_path / "j.jsonl"))
    journal.append({"kind": "trial", "digest": "a", "seed": 0})
    journal.append({"kind": "trial", "digest": "a", "seed": 1})
    # every record hits the platter; the directory entry only needs
    # syncing when the file first appears
    assert synced["file"] == 2
    assert synced["dir"] == 1


def test_campaign_isolates_a_crashing_trial(tmp_path, monkeypatch):
    import repro.sanity.campaign as campaign_mod

    real = campaign_mod.run_experiment

    def flaky(config, pages=None):
        if config.seed == 1:
            raise RuntimeError("synthetic crash")
        return real(config, pages)

    monkeypatch.setattr(campaign_mod, "run_experiment", flaky)
    configs = sweep_configs(ExperimentConfig(**SMALL), 3)
    result = run_campaign(configs, journal_path=str(tmp_path / "j.jsonl"))
    assert result.ok_count == 2 and result.failed_count == 1
    assert result.failures[0]["kind"] == "exception"
    assert "synthetic crash" in result.failures[0]["message"]


def test_run_many_isolate_collects_failures(monkeypatch):
    import repro.experiments.runner as runner_mod

    def always_crash(config, pages=None):
        raise RuntimeError("boom")

    monkeypatch.setattr(runner_mod, "run_experiment", always_crash)
    failures = []
    results = run_many(ExperimentConfig(**SMALL), 2, isolate=True,
                       failures=failures)
    assert results == []
    assert [f.kind for f in failures] == ["exception", "exception"]


def test_run_many_without_isolation_still_raises(monkeypatch):
    import repro.experiments.runner as runner_mod
    monkeypatch.setattr(runner_mod, "run_experiment",
                        lambda config, pages=None: 1 / 0)
    with pytest.raises(ZeroDivisionError):
        run_many(ExperimentConfig(**SMALL), 1)


# ----------------------------------------------------------------------
# wedge watchdog
# ----------------------------------------------------------------------
def test_tiny_event_budget_becomes_wedge_record(tmp_path):
    configs = sweep_configs(ExperimentConfig(**SMALL), 1)
    result = run_campaign(configs, journal_path=str(tmp_path / "j.jsonl"),
                          event_budget=50)
    assert result.failed_count == 1
    assert result.failures[0]["kind"] == "wedge"


def test_generous_budget_does_not_trip():
    configs = sweep_configs(ExperimentConfig(**SMALL), 1)
    result = run_campaign(configs)
    assert result.ok_count == 1 and result.failed_count == 0


# ----------------------------------------------------------------------
# resume
# ----------------------------------------------------------------------
def _campaign_configs():
    return sweep_configs(ExperimentConfig(**SMALL), 2,
                         protocols=["http", "spdy"])


def test_resume_skips_done_and_matches_uninterrupted(tmp_path):
    full = run_campaign(_campaign_configs(),
                        journal_path=str(tmp_path / "full.jsonl"))

    # Simulate a crash: keep only the first two journal lines (plus a
    # torn third), then resume into a fresh journal state.
    lines = open(tmp_path / "full.jsonl").read().splitlines()
    partial = tmp_path / "partial.jsonl"
    partial.write_text("\n".join(lines[:2]) + "\n" + lines[2][:25])

    resumed = run_campaign(_campaign_configs(), journal_path=str(partial),
                           resume=True)
    assert resumed.resumed_count == 2
    assert resumed.ok_count == 4
    assert resumed.aggregate() == full.aggregate()
    # After the resumed run the journal holds every trial exactly once.
    done = CampaignJournal(str(partial)).completed()
    assert len(done) == 4


def test_resume_requires_journal():
    with pytest.raises(ValueError):
        run_campaign(_campaign_configs(), resume=True)


def test_resume_rejects_missing_journal(tmp_path):
    missing = str(tmp_path / "nope.jsonl")
    with pytest.raises(FileNotFoundError, match="does not exist"):
        run_campaign(_campaign_configs(), journal_path=missing, resume=True)
    assert not (tmp_path / "nope.jsonl").exists()


def test_resume_skips_journaled_failures(tmp_path):
    configs = sweep_configs(ExperimentConfig(**SMALL), 1)
    digest = config_digest(configs[0])
    journal = CampaignJournal(str(tmp_path / "j.jsonl"))
    journal.append({"kind": "trial", "digest": digest, "seed": 0,
                    "status": "failed", "violations": 0, "summary": None,
                    "failure": {"kind": "exception", "message": "old"}})
    result = run_campaign(configs, journal_path=journal.path, resume=True)
    assert result.resumed_count == 1 and result.failed_count == 1
    assert len(journal.load()) == 1  # nothing re-journaled


# ----------------------------------------------------------------------
# sweep expansion and CLI
# ----------------------------------------------------------------------
def test_sweep_configs_seeds_and_protocols():
    base = ExperimentConfig(seed=5, **SMALL)
    configs = sweep_configs(base, 2, protocols=["http", "spdy"])
    assert [(c.protocol, c.seed) for c in configs] == [
        ("http", 5), ("http", 6), ("spdy", 5), ("spdy", 6)]
    with pytest.raises(ValueError):
        sweep_configs(base, 0)


def test_cli_campaign_smoke(tmp_path, capsys):
    journal = tmp_path / "cli.jsonl"
    code = main(["campaign", "--sites", "1", "--runs", "1",
                 "--think-time", "4", "--timeout", "4",
                 "--check", "warn", "--journal", str(journal)])
    out = capsys.readouterr().out
    assert code == 0
    assert "campaign health" in out
    records = [json.loads(line) for line in journal.read_text().splitlines()]
    assert all(r["status"] == "ok" for r in records)


def test_cli_campaign_resume_smoke(tmp_path, capsys):
    journal = tmp_path / "cli.jsonl"
    main(["campaign", "--sites", "1", "--runs", "1", "--think-time", "4",
          "--timeout", "4", "--journal", str(journal)])
    first = capsys.readouterr().out
    code = main(["campaign", "--sites", "1", "--runs", "1",
                 "--think-time", "4", "--timeout", "4",
                 "--resume", str(journal)])
    second = capsys.readouterr().out
    assert code == 0
    # Same aggregate lines, everything served from the journal.
    assert first.splitlines()[-2:] == second.splitlines()[-2:]
