"""Unit tests for the 3G/LTE RRC state machines (paper Appendix A)."""

import pytest

from repro.cellular import (LteRrc, LteRrcConfig, UmtsRrc, UmtsRrcConfig,
                            RadioEnergyModel)
from repro.cellular.rrc import (LTE_CRX, LTE_IDLE, LTE_LDRX, LTE_SDRX,
                                UMTS_DCH, UMTS_FACH, UMTS_IDLE)
from repro.sim import Simulator


class TestUmtsPromotion:
    def test_starts_idle(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        assert rrc.state == UMTS_IDLE

    def test_idle_to_dch_takes_promotion_delay(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        ready = rrc.request_channel(1400)
        assert ready == pytest.approx(2.0)
        sim.run(until=2.5)
        assert rrc.state == UMTS_DCH
        assert rrc.promotions == 1

    def test_concurrent_requests_share_promotion(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        first = rrc.request_channel(1400)
        second = rrc.request_channel(1400)
        assert first == second
        assert rrc.promotions == 1

    def test_active_state_serves_immediately(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        rrc.request_channel(1400)
        sim.run(until=2.1)
        assert rrc.request_channel(1400) == sim.now

    def test_custom_promotion_delay(self):
        sim = Simulator()
        rrc = UmtsRrc(sim, UmtsRrcConfig(idle_to_dch_delay=1.2))
        assert rrc.request_channel(1400) == pytest.approx(1.2)


class TestUmtsDemotion:
    def test_dch_demotes_to_fach_after_inactivity(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        rrc.request_channel(1400)
        sim.run(until=2.1)          # now in DCH
        sim.run(until=2.0 + 5.0 + 0.1)
        assert rrc.state == UMTS_FACH

    def test_fach_demotes_to_idle_after_further_inactivity(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        rrc.request_channel(1400)
        # 2s promote + 5s DCH-idle + 12s FACH-idle
        sim.run(until=2.0 + 5.0 + 12.0 + 0.2)
        assert rrc.state == UMTS_IDLE

    def test_activity_resets_demotion_timer(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        rrc.request_channel(1400)
        sim.run(until=2.1)
        # Touch every 3 seconds: DCH->FACH (5s) never fires.
        for t in (5.0, 8.0, 11.0, 14.0):
            sim.schedule_at(t, rrc.touch)
        sim.run(until=17.0)
        assert rrc.state == UMTS_DCH

    def test_small_packets_served_on_fach_without_promotion(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        rrc.request_channel(1400)
        sim.run(until=2.0 + 5.0 + 0.1)      # demoted to FACH
        assert rrc.state == UMTS_FACH
        ready = rrc.request_channel(100)    # a ping fits on the FACH
        assert ready == sim.now
        assert rrc.state == UMTS_FACH

    def test_large_transfer_from_fach_promotes(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        rrc.request_channel(1400)
        sim.run(until=7.1)                  # FACH
        ready = rrc.request_channel(5000)
        assert ready == pytest.approx(sim.now + 1.5)


class TestLteStateMachine:
    def test_promotion_faster_than_3g(self):
        sim = Simulator()
        lte = LteRrc(sim)
        assert lte.request_channel(1400) == pytest.approx(0.4)

    def test_drx_cascade(self):
        sim = Simulator()
        lte = LteRrc(sim)
        lte.request_channel(1400)
        sim.run(until=0.45)
        assert lte.state == LTE_CRX
        sim.run(until=0.4 + 0.1 + 0.05)
        assert lte.state == LTE_SDRX
        sim.run(until=0.4 + 0.1 + 1.0 + 0.05)
        assert lte.state == LTE_LDRX
        sim.run(until=0.4 + 0.1 + 1.0 + 11.5 + 0.1)
        assert lte.state == LTE_IDLE

    def test_short_drx_wakes_quickly(self):
        sim = Simulator()
        lte = LteRrc(sim)
        lte.request_channel(1400)
        sim.run(until=0.55)  # CRX -> SDRX at 0.5
        assert lte.state == LTE_SDRX
        ready = lte.request_channel(1400)
        assert ready - sim.now == pytest.approx(0.02)

    def test_long_drx_wake_is_400ms(self):
        sim = Simulator()
        cfg = LteRrcConfig()
        lte = LteRrc(sim, cfg)
        lte.request_channel(1400)
        sim.run(until=0.4 + 0.1 + 1.0 + 0.2)  # into LDRX
        assert lte.state == LTE_LDRX
        ready = lte.request_channel(1400)
        assert ready - sim.now == pytest.approx(cfg.ldrx_wake_delay)


class TestStateLog:
    def test_time_in_states_accounts_for_everything(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        rrc.request_channel(1400)
        sim.run(until=30.0)
        totals = rrc.time_in_states(until=30.0)
        assert sum(totals.values()) == pytest.approx(30.0)
        assert totals[UMTS_DCH] == pytest.approx(5.0)   # 2..7
        assert totals[UMTS_FACH] == pytest.approx(12.0)  # 7..19

    def test_state_change_callback(self):
        sim = Simulator()
        rrc = UmtsRrc(sim)
        changes = []
        rrc.on_state_change = lambda t, old, new: changes.append((t, old, new))
        rrc.request_channel(1400)
        sim.run(until=8.0)
        assert changes[0] == (pytest.approx(2.0), UMTS_IDLE, UMTS_DCH)
        assert changes[1][2] == UMTS_FACH


class TestEnergyModel:
    def test_energy_integrates_power(self):
        sim = Simulator()
        cfg = UmtsRrcConfig()
        rrc = UmtsRrc(sim, cfg)
        rrc.request_channel(1400)
        sim.run(until=30.0)
        model = RadioEnergyModel(rrc, cfg.power_mw)
        # 5s DCH @ 800mW + 12s FACH @ 460mW (idle and promotion draw 0
        # under this simple model, promotion counted as previous state).
        expected = 5.0 * 800 + 12.0 * 460
        assert model.energy_mj(until=30.0) == pytest.approx(expected, rel=0.1)

    def test_breakdown_sums_to_total(self):
        sim = Simulator()
        cfg = UmtsRrcConfig()
        rrc = UmtsRrc(sim, cfg)
        rrc.request_channel(1400)
        sim.run(until=25.0)
        model = RadioEnergyModel(rrc, cfg.power_mw)
        assert sum(model.breakdown(25.0).values()) == \
            pytest.approx(model.energy_mj(25.0))

    def test_average_power(self):
        sim = Simulator()
        cfg = UmtsRrcConfig()
        rrc = UmtsRrc(sim, cfg)
        sim.run(until=10.0)  # all idle
        model = RadioEnergyModel(rrc, cfg.power_mw)
        assert model.average_power_mw(10.0) == pytest.approx(0.0)
