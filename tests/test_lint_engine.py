"""Lint engine plumbing: suppressions, baseline, CLI, JSON output."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.lint import (Baseline, BaselineError, Finding, lint_paths,
                        lint_source, iter_python_files)
from repro.lint.cli import main as lint_main

HASHY = "bucket = hash(domain) % 97\n"


# ----------------------------------------------------------------------
# inline suppression
# ----------------------------------------------------------------------

class TestSuppression:
    def test_unsuppressed_line_is_flagged(self):
        assert any(f.code == "DET003" for f in lint_source(HASHY))

    def test_matching_code_suppresses(self):
        src = "bucket = hash(d) % 97  # repro-lint: disable=DET003\n"
        assert lint_source(src) == []

    def test_disable_all_suppresses(self):
        src = "bucket = hash(d) % 97  # repro-lint: disable=all\n"
        assert lint_source(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "bucket = hash(d) % 97  # repro-lint: disable=SIM001\n"
        assert any(f.code == "DET003" for f in lint_source(src))

    def test_suppression_is_per_line(self):
        src = ("a = hash(x)  # repro-lint: disable=DET003\n"
               "b = hash(y)\n")
        findings = lint_source(src)
        assert [f.line for f in findings if f.code == "DET003"] == [2]

    def test_multiple_codes_in_one_comment(self):
        src = ("import time\n"
               "t = time.time(); h = hash(t)"
               "  # repro-lint: disable=DET001,DET003\n")
        assert lint_source(src) == []


# ----------------------------------------------------------------------
# parse errors
# ----------------------------------------------------------------------

class TestParseError:
    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n")
        assert len(findings) == 1
        assert findings[0].code == "PARSE"

    def test_parse_finding_carries_position_and_text(self):
        (finding,) = lint_source("x = 1\ny = 2\ndef broken(:\n")
        assert finding.line == 3
        assert finding.col > 0
        assert finding.line_text == "def broken(:"
        assert "def broken(:" in finding.message


# ----------------------------------------------------------------------
# file discovery
# ----------------------------------------------------------------------

class TestDiscovery:
    def test_lint_fixtures_dir_is_excluded(self, tmp_path):
        pkg = tmp_path / "code"
        (pkg / "lint_fixtures").mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n")
        (pkg / "lint_fixtures" / "bad.py").write_text(HASHY)
        files = list(iter_python_files([str(pkg)]))
        assert [os.path.basename(f) for f in files] == ["ok.py"]

    def test_missing_path_reports_error(self):
        report = lint_paths(["no/such/dir"])
        assert report.errors and not report.clean

    def test_explicit_file_is_linted(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(HASHY)
        report = lint_paths([str(target)])
        assert [f.code for f in report.findings] == ["DET003"]


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

class TestBaseline:
    def _finding_file(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text(HASHY)
        return target

    def test_baselined_finding_is_silenced(self, tmp_path):
        target = self._finding_file(tmp_path)
        raw = lint_paths([str(target)])
        baseline = Baseline.from_findings(raw.findings)
        report = lint_paths([str(target)], baseline=baseline)
        assert report.findings == [] and report.baselined == 1
        assert report.stale_baseline == []

    def test_fixed_finding_makes_entry_stale(self, tmp_path):
        target = self._finding_file(tmp_path)
        baseline = Baseline.from_findings(lint_paths([str(target)]).findings)
        target.write_text("bucket = 7\n")
        report = lint_paths([str(target)], baseline=baseline)
        assert report.findings == []
        assert len(report.stale_baseline) == 1

    def test_baseline_is_content_keyed_not_line_keyed(self, tmp_path):
        target = self._finding_file(tmp_path)
        baseline = Baseline.from_findings(lint_paths([str(target)]).findings)
        # Shift the finding down two lines: still matches.
        target.write_text("import zlib\nx = 1\n" + HASHY)
        report = lint_paths([str(target)], baseline=baseline)
        assert report.findings == [] and report.baselined == 1

    def test_multiset_semantics(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text(HASHY + HASHY)  # identical line twice
        raw = lint_paths([str(target)])
        assert len(raw.findings) == 2
        baseline = Baseline.from_findings(raw.findings[:1])
        report = lint_paths([str(target)], baseline=baseline)
        assert len(report.findings) == 1 and report.baselined == 1

    def test_save_load_roundtrip(self, tmp_path):
        entries = [Finding(path="a.py", line=3, col=0, code="DET003",
                           message="m", line_text="x = hash(y)")]
        path = str(tmp_path / "base.json")
        Baseline.from_findings(entries, note="why").save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1 and loaded.note == "why"

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("[1, 2]")
        with pytest.raises(BaselineError):
            Baseline.load(str(path))


# ----------------------------------------------------------------------
# CLI (module entry point + repro subcommand)
# ----------------------------------------------------------------------

class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(HASHY)
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET003" in out and "bad.py" in out

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/here"]) == 2

    def test_repro_lint_subcommand(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(HASHY)
        assert repro_main(["lint", str(tmp_path)]) == 1
        assert "DET003" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "UNIT001", "SIM003"):
            assert code in out

    def test_select_restricts_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(HASHY)
        assert lint_main([str(tmp_path), "--select", "DET001"]) == 0
        assert lint_main([str(tmp_path), "--select", "DET003"]) == 1

    def test_unknown_select_code_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main([str(tmp_path), "--select", "NOPE99"])

    def test_write_then_check_baseline(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(HASHY)
        assert lint_main(["bad.py", "--write-baseline"]) == 0
        assert lint_main(["bad.py"]) == 0  # baselined now
        capsys.readouterr()
        (tmp_path / "bad.py").write_text("x = 1\n")
        assert lint_main(["bad.py"]) == 1  # stale entry fails the run
        assert "stale baseline entry" in capsys.readouterr().out

    def test_python_dash_m_entry_point(self, tmp_path):
        (tmp_path / "bad.py").write_text(HASHY)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path)],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 1
        assert "DET003" in proc.stdout


class TestJsonFormat:
    def test_json_document_shape(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert payload["counts"] == {"DET001": 1}
        (finding,) = payload["findings"]
        assert finding["code"] == "DET001"
        assert finding["line"] == 2
        assert finding["path"].endswith("bad.py")
        assert set(finding) == {"path", "line", "col", "code", "message"}

    def test_json_clean_run(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True and payload["findings"] == []


# ----------------------------------------------------------------------
# --deep and --jobs integration
# ----------------------------------------------------------------------

DEEP_LEAK = (
    "import time\n\n\n"
    "class Simulator:\n"
    "    def run(self):\n        pass\n\n"
    "    def schedule(self, delay, callback):\n        pass\n\n\n"
    "def _jitter():\n"
    "    return time.time() % 1.0\n\n\n"
    "def arm(sim, cb):\n"
    "    sim.schedule(_jitter(), cb)\n")


class TestDeepAndJobs:
    def _sim_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "leak.py").write_text(DEEP_LEAK)
        (pkg / "hashy.py").write_text(HASHY)
        return str(tmp_path / "src")

    def test_deep_merges_graph_findings_into_report(self, tmp_path):
        root = self._sim_tree(tmp_path)
        shallow = lint_paths([root])
        deep = lint_paths([root], deep=True)
        assert "DET101" not in {f.code for f in shallow.findings}
        codes = {f.code for f in deep.findings}
        assert "DET101" in codes and "DET003" in codes
        assert deep.deep and deep.deep_modules == 2

    def test_deep_findings_are_baselineable(self, tmp_path):
        root = self._sim_tree(tmp_path)
        raw = lint_paths([root], deep=True)
        baseline = Baseline.from_findings(raw.findings)
        report = lint_paths([root], deep=True, baseline=baseline)
        assert report.findings == []
        assert report.baselined == len(raw.findings)

    def test_jobs_output_is_byte_identical_to_serial(self, tmp_path):
        root = self._sim_tree(tmp_path)
        for index in range(6):
            (tmp_path / "src" / "repro" / f"extra{index}.py").write_text(
                HASHY + "import time\nt = time.time()\n")
        serial = lint_paths([root], deep=True)
        parallel = lint_paths([root], deep=True, jobs=4)
        assert ([f.render() for f in serial.findings]
                == [f.render() for f in parallel.findings])
        assert serial.files_checked == parallel.files_checked
        assert serial.suppressed == parallel.suppressed

    def test_deep_uses_cache_dir(self, tmp_path):
        root = self._sim_tree(tmp_path)
        cache_dir = str(tmp_path / "ircache")
        cold = lint_paths([root], deep=True, cache_dir=cache_dir)
        warm = lint_paths([root], deep=True, cache_dir=cache_dir)
        assert cold.deep_cache_misses == 2 and cold.deep_cache_hits == 0
        assert warm.deep_cache_hits == 2 and warm.deep_cache_misses == 0

    def test_cli_deep_flag_reports_stats(self, tmp_path, capsys):
        root = self._sim_tree(tmp_path)
        assert lint_main([root, "--deep", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out and "deep:" in out and "module(s)" in out

    def test_cli_deep_json_payload(self, tmp_path, capsys):
        root = self._sim_tree(tmp_path)
        assert lint_main(
            [root, "--deep", "--no-cache", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["deep"]["modules"] == 2
        deep_findings = [f for f in payload["findings"]
                        if f["code"] == "DET101"]
        assert deep_findings and deep_findings[0]["chain"]

    def test_cli_select_accepts_deep_codes(self, tmp_path, capsys):
        root = self._sim_tree(tmp_path)
        assert lint_main(
            [root, "--deep", "--no-cache", "--select", "DET101"]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out and "DET003" not in out

    def test_cli_rejects_bad_jobs(self, tmp_path):
        assert lint_main([str(tmp_path), "--jobs", "0"]) == 2

    def test_list_rules_includes_graph_catalogue(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET101", "SIM101", "PAR001", "UNIT102"):
            assert code in out


# ----------------------------------------------------------------------
# the repo itself stays clean (the CI gate, as a local test)
# ----------------------------------------------------------------------

class TestRepoIsClean:
    def test_src_tests_benchmarks_lint_clean(self):
        root = os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir))
        paths = [os.path.join(root, p) for p in ("src", "tests", "benchmarks")]
        report = lint_paths(paths)
        assert report.errors == []
        assert [f.render() for f in report.findings] == []

    def test_src_tests_benchmarks_deep_lint_clean(self):
        # The acceptance gate: the whole-program analyses find nothing to
        # grandfather — the deep baseline is empty and stays that way.
        root = os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir))
        paths = [os.path.join(root, p) for p in ("src", "tests", "benchmarks")]
        report = lint_paths(paths, deep=True)
        assert report.errors == []
        assert [f.render() for f in report.findings] == []
        assert report.deep_modules > 100
