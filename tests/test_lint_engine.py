"""Lint engine plumbing: suppressions, baseline, CLI, JSON output."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.lint import (Baseline, BaselineError, Finding, lint_paths,
                        lint_source, iter_python_files)
from repro.lint.cli import main as lint_main

HASHY = "bucket = hash(domain) % 97\n"


# ----------------------------------------------------------------------
# inline suppression
# ----------------------------------------------------------------------

class TestSuppression:
    def test_unsuppressed_line_is_flagged(self):
        assert any(f.code == "DET003" for f in lint_source(HASHY))

    def test_matching_code_suppresses(self):
        src = "bucket = hash(d) % 97  # repro-lint: disable=DET003\n"
        assert lint_source(src) == []

    def test_disable_all_suppresses(self):
        src = "bucket = hash(d) % 97  # repro-lint: disable=all\n"
        assert lint_source(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "bucket = hash(d) % 97  # repro-lint: disable=SIM001\n"
        assert any(f.code == "DET003" for f in lint_source(src))

    def test_suppression_is_per_line(self):
        src = ("a = hash(x)  # repro-lint: disable=DET003\n"
               "b = hash(y)\n")
        findings = lint_source(src)
        assert [f.line for f in findings if f.code == "DET003"] == [2]

    def test_multiple_codes_in_one_comment(self):
        src = ("import time\n"
               "t = time.time(); h = hash(t)"
               "  # repro-lint: disable=DET001,DET003\n")
        assert lint_source(src) == []


# ----------------------------------------------------------------------
# parse errors
# ----------------------------------------------------------------------

class TestParseError:
    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n")
        assert len(findings) == 1
        assert findings[0].code == "PARSE"


# ----------------------------------------------------------------------
# file discovery
# ----------------------------------------------------------------------

class TestDiscovery:
    def test_lint_fixtures_dir_is_excluded(self, tmp_path):
        pkg = tmp_path / "code"
        (pkg / "lint_fixtures").mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n")
        (pkg / "lint_fixtures" / "bad.py").write_text(HASHY)
        files = list(iter_python_files([str(pkg)]))
        assert [os.path.basename(f) for f in files] == ["ok.py"]

    def test_missing_path_reports_error(self):
        report = lint_paths(["no/such/dir"])
        assert report.errors and not report.clean

    def test_explicit_file_is_linted(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(HASHY)
        report = lint_paths([str(target)])
        assert [f.code for f in report.findings] == ["DET003"]


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

class TestBaseline:
    def _finding_file(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text(HASHY)
        return target

    def test_baselined_finding_is_silenced(self, tmp_path):
        target = self._finding_file(tmp_path)
        raw = lint_paths([str(target)])
        baseline = Baseline.from_findings(raw.findings)
        report = lint_paths([str(target)], baseline=baseline)
        assert report.findings == [] and report.baselined == 1
        assert report.stale_baseline == []

    def test_fixed_finding_makes_entry_stale(self, tmp_path):
        target = self._finding_file(tmp_path)
        baseline = Baseline.from_findings(lint_paths([str(target)]).findings)
        target.write_text("bucket = 7\n")
        report = lint_paths([str(target)], baseline=baseline)
        assert report.findings == []
        assert len(report.stale_baseline) == 1

    def test_baseline_is_content_keyed_not_line_keyed(self, tmp_path):
        target = self._finding_file(tmp_path)
        baseline = Baseline.from_findings(lint_paths([str(target)]).findings)
        # Shift the finding down two lines: still matches.
        target.write_text("import zlib\nx = 1\n" + HASHY)
        report = lint_paths([str(target)], baseline=baseline)
        assert report.findings == [] and report.baselined == 1

    def test_multiset_semantics(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text(HASHY + HASHY)  # identical line twice
        raw = lint_paths([str(target)])
        assert len(raw.findings) == 2
        baseline = Baseline.from_findings(raw.findings[:1])
        report = lint_paths([str(target)], baseline=baseline)
        assert len(report.findings) == 1 and report.baselined == 1

    def test_save_load_roundtrip(self, tmp_path):
        entries = [Finding(path="a.py", line=3, col=0, code="DET003",
                           message="m", line_text="x = hash(y)")]
        path = str(tmp_path / "base.json")
        Baseline.from_findings(entries, note="why").save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1 and loaded.note == "why"

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("[1, 2]")
        with pytest.raises(BaselineError):
            Baseline.load(str(path))


# ----------------------------------------------------------------------
# CLI (module entry point + repro subcommand)
# ----------------------------------------------------------------------

class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(HASHY)
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET003" in out and "bad.py" in out

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/here"]) == 2

    def test_repro_lint_subcommand(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(HASHY)
        assert repro_main(["lint", str(tmp_path)]) == 1
        assert "DET003" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "UNIT001", "SIM003"):
            assert code in out

    def test_select_restricts_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(HASHY)
        assert lint_main([str(tmp_path), "--select", "DET001"]) == 0
        assert lint_main([str(tmp_path), "--select", "DET003"]) == 1

    def test_unknown_select_code_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main([str(tmp_path), "--select", "NOPE99"])

    def test_write_then_check_baseline(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(HASHY)
        assert lint_main(["bad.py", "--write-baseline"]) == 0
        assert lint_main(["bad.py"]) == 0  # baselined now
        capsys.readouterr()
        (tmp_path / "bad.py").write_text("x = 1\n")
        assert lint_main(["bad.py"]) == 1  # stale entry fails the run
        assert "stale baseline entry" in capsys.readouterr().out

    def test_python_dash_m_entry_point(self, tmp_path):
        (tmp_path / "bad.py").write_text(HASHY)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path)],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 1
        assert "DET003" in proc.stdout


class TestJsonFormat:
    def test_json_document_shape(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert payload["counts"] == {"DET001": 1}
        (finding,) = payload["findings"]
        assert finding["code"] == "DET001"
        assert finding["line"] == 2
        assert finding["path"].endswith("bad.py")
        assert set(finding) == {"path", "line", "col", "code", "message"}

    def test_json_clean_run(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True and payload["findings"] == []


# ----------------------------------------------------------------------
# the repo itself stays clean (the CI gate, as a local test)
# ----------------------------------------------------------------------

class TestRepoIsClean:
    def test_src_tests_benchmarks_lint_clean(self):
        root = os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir))
        paths = [os.path.join(root, p) for p in ("src", "tests", "benchmarks")]
        report = lint_paths(paths)
        assert report.errors == []
        assert [f.render() for f in report.findings] == []
