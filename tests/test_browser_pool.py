"""Unit tests for the Chrome-style connection pool."""

import pytest

from repro.browser.pool import ConnectionPool
from repro.net import DuplexLink, Host
from repro.sim import Simulator
from repro.tcp import TcpStack


def build(max_per_domain=6, max_total=32, idle_timeout=30.0):
    sim = Simulator()
    client = Host(sim, "client")
    proxy = Host(sim, "proxy")
    DuplexLink(sim, client, proxy, latency=0.01, bandwidth_down_bps=10e6,
               bandwidth_up_bps=10e6)
    client_tcp = TcpStack(sim, client)
    proxy_tcp = TcpStack(sim, proxy)
    proxy_tcp.listen(8080, lambda conn: None)
    pool = ConnectionPool(sim, client_tcp, "proxy", 8080,
                          max_per_domain=max_per_domain, max_total=max_total,
                          idle_timeout=idle_timeout)
    return sim, pool


class TestAcquireRelease:
    def test_acquire_opens_connection(self):
        sim, pool = build()
        got = []
        pool.acquire("a.example", got.append)
        sim.run(until=1.0)
        assert len(got) == 1
        assert got[0].state == "ESTABLISHED"
        assert pool.stats.opened == 1

    def test_release_then_acquire_reuses(self):
        sim, pool = build()
        got = []
        pool.acquire("a.example", got.append)
        sim.run(until=1.0)
        pool.release("a.example", got[0])
        pool.acquire("a.example", got.append)
        sim.run(until=2.0)
        assert got[0] is got[1]
        assert pool.stats.reused == 1
        assert pool.stats.opened == 1

    def test_per_domain_cap(self):
        sim, pool = build(max_per_domain=2)
        got = []
        for _ in range(5):
            pool.acquire("a.example", got.append)
        sim.run(until=1.0)
        assert len(got) == 2  # two served, three queued
        assert pool.connection_count("a.example") == 2
        pool.release("a.example", got[0])
        sim.run(until=2.0)
        assert len(got) == 3  # the queue drains on release

    def test_global_cap_and_eviction(self):
        sim, pool = build(max_per_domain=6, max_total=4)
        got = {}
        for i in range(4):
            domain = f"d{i}.example"
            pool.acquire(domain, lambda c, d=domain: got.setdefault(d, c))
        sim.run(until=1.0)
        assert pool.total_connections == 4
        # Free one domain's conn, then a fifth domain arrives: the idle
        # conn is evicted to stay under the global cap.
        pool.release("d0.example", got["d0.example"])
        pool.acquire("d4.example", lambda c: got.setdefault("d4.example", c))
        sim.run(until=2.0)
        assert "d4.example" in got
        assert pool.total_connections <= 4

    def test_idle_timeout_closes_connection(self):
        sim, pool = build(idle_timeout=5.0)
        got = []
        pool.acquire("a.example", got.append)
        sim.run(until=1.0)
        pool.release("a.example", got[0])
        sim.run(until=10.0)
        assert pool.stats.closed_idle == 1
        assert got[0].state in ("CLOSED", "CLOSING")

    def test_close_all(self):
        sim, pool = build()
        got = []
        for d in ("a.example", "b.example"):
            pool.acquire(d, got.append)
        sim.run(until=1.0)
        pool.close_all()
        sim.run(until=2.0)
        assert pool.total_connections == 0


class TestCounters:
    def test_max_concurrent_tracked(self):
        sim, pool = build()
        for i in range(8):
            pool.acquire(f"d{i}.example", lambda c: None)
        sim.run(until=1.0)
        assert pool.stats.max_concurrent >= 7
