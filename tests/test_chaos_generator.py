"""Scenario model and generator: replayability and validity."""

from repro.chaos import (BASELINE_CONFIG, Scenario, ScenarioGenerator,
                         SearchSpace)
from repro.faults import FaultPlan


class TestScenario:
    def test_experiment_config_applies_overrides(self):
        scenario = Scenario(seed=9, faults="rst@3",
                            config={"protocol": "spdy", "think_time": 3.0},
                            tcp={"min_rto": 0.05})
        config = scenario.experiment_config()
        assert config.protocol == "spdy"
        assert config.think_time == 3.0
        assert config.seed == 9
        assert config.fault_plan == "rst@3"
        assert config.tcp.min_rto == 0.05
        # unspecified fields come from the chaos baseline
        assert config.site_ids == BASELINE_CONFIG["site_ids"]

    def test_dict_round_trip(self):
        scenario = Scenario(seed=4, faults="handover@2:0.5",
                            config={"network": "lte"}, tcp={})
        again = Scenario.from_dict(scenario.to_dict())
        assert again == scenario
        assert again.key() == scenario.key()

    def test_with_copies_deeply(self):
        scenario = Scenario(config={"site_ids": [1, 2]})
        clone = scenario.with_()
        clone.config["site_ids"].append(3)
        assert scenario.config["site_ids"] == [1, 2]

    def test_digest_tracks_condition_not_seed(self):
        a = Scenario(seed=1, faults="rst@3")
        b = Scenario(seed=2, faults="rst@3")
        c = Scenario(seed=1, faults="rst@4")
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()


class TestScenarioGenerator:
    def test_pure_function_of_master_seed_and_index(self):
        first = ScenarioGenerator(master_seed=7)
        second = ScenarioGenerator(master_seed=7)
        for index in range(12):
            assert first.scenario(index) == second.scenario(index)

    def test_different_master_seeds_diverge(self):
        a = [s.key() for s in ScenarioGenerator(1).scenarios(8)]
        b = [s.key() for s in ScenarioGenerator(2).scenarios(8)]
        assert a != b

    def test_indices_are_independent(self):
        # Regenerating trial 5 alone must match a full pass (resume and
        # replay rely on this).
        gen = ScenarioGenerator(master_seed=3)
        sequence = list(gen.scenarios(6))
        assert gen.scenario(5) == sequence[5]

    def test_scenarios_are_valid_and_runnable(self):
        for scenario in ScenarioGenerator(master_seed=11).scenarios(25):
            config = scenario.experiment_config()   # validates
            assert config.protocol in ("http", "spdy")
            plan = FaultPlan.parse(scenario.faults)
            assert 1 <= len(plan) <= SearchSpace().max_fault_events
            assert FaultPlan.parse(plan.to_spec()) == plan

    def test_space_is_respected(self):
        space = SearchSpace(protocols=("spdy",), networks=("wifi",),
                            fault_kinds=("rst",), max_fault_events=2)
        for scenario in ScenarioGenerator(5, space).scenarios(10):
            assert scenario.config["protocol"] == "spdy"
            assert scenario.config["network"] == "wifi"
            plan = FaultPlan.parse(scenario.faults)
            assert {e.kind for e in plan.events} == {"rst"}
            assert len(plan) <= 2

    def test_fault_times_inside_horizon(self):
        for scenario in ScenarioGenerator(master_seed=2).scenarios(20):
            config = scenario.experiment_config()
            horizon = (len(config.site_ids) * config.think_time
                       + config.tail_time)
            for event in FaultPlan.parse(scenario.faults).events:
                assert 0.0 <= event.time <= horizon
