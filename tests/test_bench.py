"""The bench harness: registry, report schema, digests, and the guard
tests that keep the engine's fast paths honest.

Two properties are load-bearing:

* every workload's determinism digest is identical across invocations
  (the harness refuses to time nondeterministic code), and
* the no-sanitizer fast path in ``Simulator.run`` fires events in
  exactly the order the instrumented path does — speed must never buy
  a different simulation.
"""

import json

import pytest

from repro.bench import (BENCH_SCHEMA, BenchError, all_workloads,
                         compare_digests, load_report, run_bench,
                         workloads_by_name, write_report)
from repro.bench.harness import WorkloadTiming, _time_workload
from repro.bench.workloads import Workload, WorkloadOutcome
from repro.sanity import Sanitizer
from repro.sim import Simulator, Timer


# ----------------------------------------------------------------------
# workload registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_at_least_five_workloads_registered(self):
        assert len(all_workloads()) >= 5

    def test_names_unique_and_kinds_known(self):
        workloads = all_workloads()
        names = [w.name for w in workloads]
        assert len(names) == len(set(names))
        assert {w.kind for w in workloads} <= {"micro", "page", "macro"}

    def test_every_workload_fully_described(self):
        for w in all_workloads():
            assert w.name and w.metric and w.description
            assert callable(w.run)

    def test_canonical_workloads_present(self):
        names = set(workloads_by_name())
        assert {"engine-timer-churn", "engine-link-delivery",
                "pages-http-3g", "pages-spdy-3g", "figure-sweep"} <= names

    def test_unknown_workload_rejected(self):
        with pytest.raises(BenchError, match="unknown workload"):
            run_bench(names=["no-such-workload"])


# ----------------------------------------------------------------------
# harness protocol
# ----------------------------------------------------------------------

def _micro_result(scale=0.02, reps=2):
    return run_bench(names=["engine-timer-churn", "engine-link-delivery"],
                     reps=reps, warmup=0, scale=scale)


class TestHarness:
    def test_digest_stable_across_two_invocations(self):
        first = _micro_result()
        second = _micro_result()
        assert first.digests() == second.digests()

    def test_reps_and_units_recorded(self):
        result = _micro_result(reps=3)
        for timing in result.timings:
            assert len(timing.samples_s) == 3
            assert timing.units > 0
            assert timing.rate > 0

    def test_nondeterministic_workload_refused(self):
        ticks = [0]

        def run(scale):
            ticks[0] += 1
            return WorkloadOutcome(units=1, digest_parts={"tick": ticks[0]})

        fake = Workload(name="flappy", kind="micro", metric="events/s",
                        description="varies per call", run=run)
        with pytest.raises(BenchError, match="nondeterministic"):
            _time_workload(fake, scale=1.0, reps=2, warmup=0)

    def test_quick_keeps_full_scale(self):
        result = run_bench(names=["engine-timer-churn"], quick=True,
                           reps=1, warmup=0)
        assert result.quick and result.scale == 1.0

    def test_bad_scale_rejected(self):
        with pytest.raises(BenchError, match="scale"):
            run_bench(names=["engine-timer-churn"], scale=0.0)


# ----------------------------------------------------------------------
# report schema + digest comparison
# ----------------------------------------------------------------------

class TestReport:
    def test_report_schema_roundtrip(self, tmp_path):
        result = _micro_result()
        path = tmp_path / "BENCH_test.json"
        report = write_report(result, str(path), rev="deadbee")
        on_disk = load_report(str(path))
        assert on_disk == report
        assert on_disk["schema"] == BENCH_SCHEMA
        assert on_disk["rev"] == "deadbee"
        assert on_disk["scale"] == result.scale
        for name, entry in on_disk["workloads"].items():
            assert {"kind", "metric", "units", "reps", "samples_s",
                    "median_s", "rate", "digest"} <= set(entry)

    def test_baseline_embeds_speedups(self, tmp_path):
        result = _micro_result()
        base_path = tmp_path / "base.json"
        write_report(result, str(base_path), rev="base111")
        report = write_report(result, str(tmp_path / "new.json"),
                              rev="new2222",
                              baseline=load_report(str(base_path)))
        assert report["baseline"]["rev"] == "base111"
        for timing in result.timings:
            # identical run against itself: speedup 1.0 by construction
            assert report["baseline"]["speedup"][timing.name] == pytest.approx(
                1.0, abs=0.001)

    def test_load_report_rejects_non_reports(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(BenchError, match="not a bench report"):
            load_report(str(path))

    def test_load_report_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps(
            {"schema": BENCH_SCHEMA + 1, "workloads": {}}))
        with pytest.raises(BenchError, match="newer"):
            load_report(str(path))

    def test_compare_digests_flags_drift_only(self):
        result = _micro_result()
        reference = {
            "rev": "ref0000", "scale": result.scale,
            "workloads": {t.name: {"digest": t.digest}
                          for t in result.timings},
        }
        assert compare_digests(result, reference) == []
        reference["workloads"]["engine-timer-churn"]["digest"] = "0" * 16
        mismatches = compare_digests(result, reference)
        assert len(mismatches) == 1
        assert "engine-timer-churn" in mismatches[0]

    def test_compare_digests_rejects_scale_mismatch(self):
        result = _micro_result(scale=0.02)
        reference = {"scale": 1.0, "workloads": {}}
        mismatches = compare_digests(result, reference)
        assert mismatches and "scale mismatch" in mismatches[0]

    def test_committed_reference_matches_live_run(self):
        """The repo's BENCH_<rev>.json digests must match a fresh run.

        This is the same gate CI's bench-smoke job applies; running it
        in-tree catches digest drift before a PR ever reaches CI.
        """
        import glob
        candidates = sorted(glob.glob("BENCH_*.json"))
        if not candidates:
            pytest.skip("no committed bench reference")
        reference = load_report(candidates[-1])
        names = [n for n in ("engine-timer-churn", "engine-link-delivery")
                 if n in reference["workloads"]]
        result = run_bench(names=names, quick=True, reps=1, warmup=0)
        assert compare_digests(result, reference) == []


# ----------------------------------------------------------------------
# fast-path guards: the optimized loops must not change the simulation
# ----------------------------------------------------------------------

def _churn_scenario(sim):
    """A small timer-churn scenario exercising cancel + re-arm + cascade."""
    fired = []
    timers = [Timer(sim, lambda i=i: fired.append(("t", i, sim.now)),
                    name=f"t{i}") for i in range(8)]

    def tick(round_no):
        fired.append(("tick", round_no, sim.now))
        for timer in timers:
            timer.start(5.0)   # re-arm: cancels the previous event
        if round_no < 40:
            sim.schedule(0.25, tick, round_no + 1)

    sim.schedule(0.0, tick, 0)
    return fired


class TestFastPathEquivalence:
    def test_sanitizer_and_fast_path_fire_identical_order(self):
        plain = Simulator(seed=11)
        plain_fired = _churn_scenario(plain)
        plain.run()

        checked = Simulator(seed=11)
        sanitizer = Sanitizer(mode="warn")
        sanitizer.sim = checked
        checked.sanitizer = sanitizer
        checked_fired = _churn_scenario(checked)
        checked.run()

        assert plain_fired == checked_fired
        assert plain.events_processed == checked.events_processed
        assert plain.now == checked.now

    def test_until_fast_path_matches_budgeted_path(self):
        fast = Simulator(seed=5)
        fast_fired = _churn_scenario(fast)
        fast.run(until=6.0)

        slow = Simulator(seed=5)
        slow_fired = _churn_scenario(slow)
        # max_events forces the instrumented loop; large enough to
        # process everything until the same horizon.
        slow.run(until=6.0, max_events=10**9)

        assert fast_fired == slow_fired
        assert fast.now == slow.now == 6.0

    def test_step_matches_run(self):
        stepped = Simulator(seed=3)
        stepped_fired = _churn_scenario(stepped)
        while stepped.step():
            pass
        ran = Simulator(seed=3)
        ran_fired = _churn_scenario(ran)
        ran.run()
        assert stepped_fired == ran_fired
        assert stepped.events_processed == ran.events_processed


# ----------------------------------------------------------------------
# O(1) pending + lazy heap compaction
# ----------------------------------------------------------------------

class TestPendingAndCompaction:
    def test_pending_counts_live_events_after_cancels(self):
        sim = Simulator()
        events = [sim.schedule(float(i), lambda: None) for i in range(10)]
        assert sim.pending() == 10
        for event in events[::2]:
            event.cancel()
        assert sim.pending() == 5

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 1

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.schedule(2.0, fired.append, "y")
        sim.run(until=1.5)
        event.cancel()   # too late: it already fired
        assert fired == ["x"]
        assert sim.pending() == 1
        sim.run()
        assert fired == ["x", "y"]
        assert sim.pending() == 0

    def test_compaction_shrinks_heap_when_cancelled_dominate(self):
        sim = Simulator()
        doomed = [sim.schedule(float(i), lambda: None) for i in range(200)]
        survivors = [sim.schedule(1000.0 + i, lambda: None)
                     for i in range(10)]
        for event in doomed:
            event.cancel()
        # Far fewer than 210 entries remain: the heap was compacted.
        assert len(sim._queue) <= len(survivors) + 130
        assert sim.pending() == 10
        for event in survivors:
            event.cancel()
        assert sim.pending() == 0
        assert sim.run() == 0.0

    def test_compaction_preserves_fire_order(self):
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(2.0 + i * 0.001, lambda: None)
                  for i in range(150)]
        for label in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, label)
        for event in doomed:
            event.cancel()
        sim.schedule(0.5, fired.append, "first")
        sim.run()
        assert fired == ["first", "a", "b", "c"]

    def test_timer_rearm_churn_keeps_books_balanced(self):
        sim = Simulator()
        fires = []
        timer = Timer(sim, lambda: fires.append(sim.now), name="rto")
        for i in range(500):
            sim.schedule(i * 0.01, timer.start, 10.0)
        sim.run(until=5.0)
        assert fires == []            # always re-armed before the deadline
        assert sim.pending() == 1     # exactly the last armed deadline
        sim.run()
        assert len(fires) == 1
