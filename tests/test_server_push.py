"""Tests for SPDY server push (§2.2's "server-initiated data exchange")."""

import pytest

from repro.cellular import make_profile
from repro.experiments import Testbed
from repro.web import WebObject, WebPage


def push_friendly_page():
    """Main HTML with same-domain children (pushable) and one cross-domain."""
    main = WebObject("m", "d0.example", "/", 8000, "html",
                     children=["a", "b", "x"], processing_delay=0.03)
    a = WebObject("a", "d0.example", "/a.jpg", 15000, "image")
    b = WebObject("b", "d0.example", "/b.jpg", 15000, "image")
    x = WebObject("x", "other.example", "/x.jpg", 15000, "image")
    return WebPage(42, "pushy", "Test",
                   {o.object_id: o for o in (main, a, b, x)}, "m")


def build(server_push, seed=0, profile_name="3g"):
    testbed = Testbed(profile=make_profile(profile_name), seed=seed)
    testbed.spdy_proxy.server_push = server_push
    return testbed


class TestServerPush:
    def test_push_disabled_by_default(self):
        testbed = build(server_push=False)
        browser = testbed.make_browser("spdy")
        record = browser.load_page(push_friendly_page())
        testbed.sim.run(until=60.0)
        assert testbed.spdy_proxy.streams_pushed == 0
        assert record.plt is not None

    def test_same_domain_children_pushed(self):
        testbed = build(server_push=True)
        browser = testbed.make_browser("spdy")
        record = browser.load_page(push_friendly_page())
        testbed.sim.run(until=60.0)
        # a and b are same-domain children of the HTML: pushed.
        assert testbed.spdy_proxy.streams_pushed == 2
        assert browser.fetcher.pushes_received == 2
        assert record.plt is not None
        assert all(t.complete for t in record.objects)

    def test_pushed_objects_not_requested(self):
        testbed = build(server_push=True)
        browser = testbed.make_browser("spdy")
        browser.load_page(push_friendly_page())
        testbed.sim.run(until=60.0)
        # Only the main page and the cross-domain image go out as
        # client-initiated streams.
        assert browser.fetcher.requests_sent <= 2 + 1

    def test_push_not_duplicated_across_pages(self):
        testbed = build(server_push=True)
        browser = testbed.make_browser("spdy")
        page = push_friendly_page()
        browser.load_page(page)
        testbed.sim.run(until=60.0)
        browser.load_page(push_friendly_page())
        testbed.sim.run(until=120.0)
        # The proxy remembers it already pushed these objects.
        assert testbed.spdy_proxy.streams_pushed == 2

    def test_push_helps_plt_on_3g(self):
        """Pushed children skip a request round trip over the radio."""
        plain = build(server_push=False, seed=3)
        b1 = plain.make_browser("spdy")
        r1 = b1.load_page(push_friendly_page())
        plain.sim.run(until=60.0)

        pushy = build(server_push=True, seed=3)
        b2 = pushy.make_browser("spdy")
        r2 = b2.load_page(push_friendly_page())
        pushy.sim.run(until=60.0)

        assert r1.plt is not None and r2.plt is not None
        assert r2.plt <= r1.plt * 1.02
