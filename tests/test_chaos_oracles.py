"""Oracle stack against the real simulator: pass, crash classification,
wedge, determinism divergence — and the acceptance-criteria drill: an
intentionally injected invariant bug is caught and shrunk to a minimal
fault plan."""

import pytest

from repro.chaos import (OracleVerdict, Scenario, check_scenario,
                         run_digest, shrink)
from repro.chaos import oracles as oracles_module
from repro.experiments.runner import run_experiment
from repro.faults import FaultInjector, FaultPlan
from repro.sanity import InvariantViolation, WedgeError

BENIGN = Scenario(seed=5, faults="handover@3:0.5",
                  config={"think_time": 3.0, "tail_time": 3.0,
                          "load_timeout": 5.0})


class TestCheckScenario:
    def test_benign_scenario_passes_with_digest(self):
        verdict = check_scenario(BENIGN)
        assert verdict.status == "pass"
        assert not verdict.failed
        assert verdict.run_digest

    def test_run_digest_is_reproducible(self):
        config = BENIGN.experiment_config()
        assert run_digest(run_experiment(config)) == \
            run_digest(run_experiment(config))

    def test_tiny_event_budget_classified_as_wedge(self):
        verdict = check_scenario(BENIGN, event_budget=50)
        assert verdict.status == "wedge"
        assert verdict.error_type == "WedgeError"

    def test_crash_classified_as_exception(self, monkeypatch):
        def boom(self, event):
            raise RuntimeError("injected crash")
        monkeypatch.setattr(FaultInjector, "_apply_handover", boom)
        verdict = check_scenario(BENIGN, determinism=False)
        assert verdict.status == "exception"
        assert verdict.error_type == "RuntimeError"
        assert "injected crash" in verdict.message

    def test_determinism_divergence_detected(self, monkeypatch):
        # Perturb the digest on every other call: identical replays now
        # "measure" different things, which is exactly the pathology the
        # double-run oracle exists to catch.
        real = oracles_module.run_digest
        calls = []

        def flaky(run):
            calls.append(1)
            digest = real(run)
            return digest if len(calls) % 2 else "deadbeef00000000"
        monkeypatch.setattr(oracles_module, "run_digest", flaky)
        verdict = oracles_module.check_scenario(BENIGN)
        assert verdict.status == "determinism-divergence"
        assert "deadbeef" in verdict.message

    def test_crash_on_replay_is_divergence(self, monkeypatch):
        calls = []
        original = run_experiment

        def second_run_crashes(config, pages=None):
            calls.append(1)
            if len(calls) > 1:
                raise RuntimeError("only on replay")
            return original(config, pages)
        monkeypatch.setattr(oracles_module, "run_experiment",
                            second_run_crashes)
        verdict = oracles_module.check_scenario(BENIGN)
        assert verdict.status == "determinism-divergence"


def _install_accounting_bug(monkeypatch):
    """The intentional bug: an RST fault corrupts a link counter.

    ``rst`` faults now also bump the downlink's ``packets_accepted``
    without a matching delivery — exactly the kind of cross-layer
    bookkeeping slip the ``link.byte-conservation`` invariant exists to
    catch.
    """
    original = FaultInjector._apply_rst

    def buggy(self, event):
        original(self, event)
        self.testbed.access.downlink.packets_accepted += 1
    monkeypatch.setattr(FaultInjector, "_apply_rst", buggy)


class TestInjectedInvariantBug:
    FAULTY = Scenario(
        seed=3,
        faults=("blackout@2:1:drop,burstloss@1:0.05:8,"
                "handover@4:0.5,rst@3:2,proxyrestart@5"),
        config={"protocol": "spdy", "site_ids": [1, 2],
                "think_time": 4.0, "tail_time": 4.0,
                "load_timeout": 6.0},
        tcp={"min_rto": 0.05})

    def test_bug_is_caught_by_strict_oracle(self, monkeypatch):
        _install_accounting_bug(monkeypatch)
        verdict = check_scenario(self.FAULTY, determinism=False)
        assert verdict.status == "invariant-violation"
        assert verdict.error_type == "InvariantViolation"
        assert "conservation" in verdict.message

    def test_bug_shrinks_to_minimal_fault_plan(self, monkeypatch):
        _install_accounting_bug(monkeypatch)

        def check(scenario):
            return check_scenario(scenario, determinism=False)

        verdict = check(self.FAULTY)
        assert verdict.failed
        result = shrink(self.FAULTY, verdict, check, budget=60)
        # acceptance criterion: <= 2 fault events survive the shrink
        assert result.final_events <= 2
        plan = FaultPlan.parse(result.scenario.faults)
        assert any(e.kind == "rst" for e in plan.events)
        assert result.verdict.status == "invariant-violation"

    def test_without_bug_the_same_scenario_passes(self):
        verdict = check_scenario(self.FAULTY, determinism=False)
        assert verdict.status == "pass"


class TestOracleVerdict:
    def test_as_dict_round_trips_key_fields(self):
        verdict = OracleVerdict(status="wedge", error_type="WedgeError",
                                message="m", run_digest="d",
                                traceback_tail=["t"])
        data = verdict.as_dict()
        assert data["status"] == "wedge"
        assert data["traceback_tail"] == ["t"]

    def test_classify(self):
        from repro.chaos import classify_exception
        assert classify_exception(
            InvariantViolation("i", "c", "m")) == "invariant-violation"
        assert classify_exception(WedgeError(1, 0.0, 1.0)) == "wedge"
        assert classify_exception(ValueError("x")) == "exception"
