"""Shrinker behaviour against synthetic oracles (no simulator runs)."""

from repro.chaos import OracleVerdict, Scenario, shrink
from repro.chaos.shrinker import _candidates
from repro.faults import FaultPlan


def _verdict(status):
    return OracleVerdict(status=status)


def _fails_if(predicate, kind="invariant-violation"):
    """Synthetic oracle: fail with `kind` iff predicate(scenario)."""
    def check(scenario):
        return _verdict(kind if predicate(scenario) else "pass")
    return check


def _has_kind(scenario, fault_kind):
    if not scenario.faults:
        return False
    return any(e.kind == fault_kind
               for e in FaultPlan.parse(scenario.faults).events)


FIVE_EVENTS = ("blackout@2:1.5:drop,burstloss@4:0.2:20,handover@6:1.5,"
               "proxyrestart@8,rst@10:3")


class TestShrink:
    def test_shrinks_to_single_culprit_event(self):
        scenario = Scenario(
            seed=3, faults=FIVE_EVENTS,
            config={"protocol": "spdy", "network": "lte",
                    "site_ids": [1, 2, 3], "think_time": 6.0},
            tcp={"min_rto": 0.05})
        check = _fails_if(lambda s: _has_kind(s, "rst"))
        result = shrink(scenario, _verdict("invariant-violation"), check,
                        budget=200)
        assert result.verdict.status == "invariant-violation"
        assert result.final_events <= 2
        plan = FaultPlan.parse(result.scenario.faults)
        assert all(e.kind == "rst" for e in plan.events)
        # config noise snapped back to baseline, tcp knob dropped
        assert result.scenario.config["protocol"] == "http"
        assert result.scenario.config["site_ids"] == [1]
        assert result.scenario.tcp == {}
        assert not result.budget_exhausted

    def test_config_only_bug_drops_all_events(self):
        scenario = Scenario(seed=1, faults=FIVE_EVENTS,
                            tcp={"min_rto": 0.05})
        check = _fails_if(lambda s: s.tcp.get("min_rto", 0.2) < 0.1,
                          kind="wedge")
        result = shrink(scenario, _verdict("wedge"), check, budget=200)
        assert result.scenario.faults is None
        assert result.final_events == 0
        assert result.scenario.tcp == {"min_rto": 0.05}

    def test_failure_kind_must_match_to_accept(self):
        # A candidate that fails with a *different* kind is not the same
        # bug; the shrinker must not chase it.
        scenario = Scenario(seed=1, faults="rst@5:3,handover@7")

        def check(s):
            if _has_kind(s, "rst") and _has_kind(s, "handover"):
                return _verdict("invariant-violation")
            if _has_kind(s, "rst"):
                return _verdict("exception")
            return _verdict("pass")

        result = shrink(scenario, _verdict("invariant-violation"), check,
                        budget=100)
        assert _has_kind(result.scenario, "rst")
        assert _has_kind(result.scenario, "handover")
        assert result.verdict.status == "invariant-violation"

    def test_budget_bounds_oracle_invocations(self):
        scenario = Scenario(seed=1, faults=FIVE_EVENTS,
                            config={"site_ids": [1, 2, 3]})
        calls = []

        def check(s):
            calls.append(1)
            # no candidate reproduces: the shrinker would sweep every
            # candidate move (far more than 7) without the budget
            return _verdict("pass")

        result = shrink(scenario, _verdict("exception"), check, budget=7)
        assert len(calls) == 7
        assert result.attempts == 7
        assert result.budget_exhausted

    def test_already_minimal_is_stable(self):
        scenario = Scenario(seed=1, faults="rst@0:1")
        check = _fails_if(lambda s: _has_kind(s, "rst"))
        result = shrink(scenario, _verdict("invariant-violation"), check,
                        budget=50)
        assert result.scenario.faults == "rst@0:1"  # untouched
        assert result.final_events == 1

    def test_event_parameters_get_simplified(self):
        scenario = Scenario(seed=1, faults="blackout@200:64:drop")
        check = _fails_if(lambda s: _has_kind(s, "blackout"))
        result = shrink(scenario, _verdict("invariant-violation"), check,
                        budget=100)
        event = FaultPlan.parse(result.scenario.faults).events[0]
        assert event.time == 0.0
        assert event.duration < 1.0
        assert event.policy == "queue"


class TestCandidates:
    def test_candidates_are_all_valid(self):
        scenario = Scenario(
            seed=2, faults=FIVE_EVENTS,
            config={"protocol": "spdy", "site_ids": [5, 9]},
            tcp={"min_rto": 1.0, "slow_start_after_idle": False})
        for candidate in _candidates(scenario):
            candidate.experiment_config()  # must not raise
            if candidate.faults is not None:
                FaultPlan.parse(candidate.faults)

    def test_no_candidates_for_fully_minimal_scenario(self):
        scenario = Scenario(seed=0, faults=None)
        assert list(_candidates(scenario)) == []
