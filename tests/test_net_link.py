"""Unit tests for links, hosts and taps."""

import pytest
from hypothesis import given, strategies as st

from repro.net import DuplexLink, Host, Link, LinkTap, Packet, RoutingError
from repro.sim import Simulator


class Sink(Host):
    """Host that records every packet it receives."""

    def __init__(self, sim, address):
        super().__init__(sim, address)
        self.received = []

    def receive(self, packet):
        self.received.append((self.sim.now, packet))


def make_pair(sim, **link_kwargs):
    a = Sink(sim, "a")
    b = Sink(sim, "b")
    link = Link(sim, "a->b", b, **link_kwargs)
    a.add_route("b", link)
    return a, b, link


class TestLinkDelivery:
    def test_latency_only_delivery_time(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, latency=0.05)
        a.send(Packet("a", "b", 1000))
        sim.run()
        assert len(b.received) == 1
        assert b.received[0][0] == pytest.approx(0.05)

    def test_serialization_delay(self):
        sim = Simulator()
        # 8000 bits at 8000 bps = 1 second of serialization.
        a, b, _ = make_pair(sim, bandwidth_bps=8000, latency=0.0)
        a.send(Packet("a", "b", 1000))
        sim.run()
        assert b.received[0][0] == pytest.approx(1.0)

    def test_back_to_back_packets_queue_behind_each_other(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, bandwidth_bps=8000, latency=0.0)
        a.send(Packet("a", "b", 1000))
        a.send(Packet("a", "b", 1000))
        sim.run()
        times = [t for t, _ in b.received]
        assert times == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_fifo_preserved_with_jitter(self):
        sim = Simulator()
        # Huge jitter would reorder without the FIFO clamp.
        a, b, _ = make_pair(sim, bandwidth_bps=1e6, latency=0.01,
                            jitter=lambda rng: rng.uniform(0, 0.5))
        sent = [Packet("a", "b", 100) for _ in range(20)]
        for p in sent:
            a.send(p)
        sim.run()
        got = [p.packet_id for _, p in b.received]
        assert got == [p.packet_id for p in sent]

    def test_delivered_at_stamped(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, latency=0.1)
        pkt = Packet("a", "b", 100)
        a.send(pkt)
        sim.run()
        assert pkt.delivered_at == pytest.approx(0.1)


class TestLoss:
    def test_zero_loss_delivers_everything(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, loss_rate=0.0)
        for _ in range(50):
            a.send(Packet("a", "b", 100))
        sim.run()
        assert len(b.received) == 50

    def test_full_queue_drops(self):
        sim = Simulator()
        a, b, link = make_pair(sim, bandwidth_bps=8000, queue_limit_bytes=2500)
        packets = [Packet("a", "b", 1000) for _ in range(5)]
        for p in packets:
            a.send(p)
        sim.run()
        assert len(b.received) == 2
        assert link.packets_dropped == 3
        assert sum(1 for p in packets if p.lost) == 3

    def test_loss_rate_statistics(self):
        sim = Simulator(seed=7)
        a, b, link = make_pair(sim, loss_rate=0.3, queue_limit_bytes=None)
        n = 2000
        for _ in range(n):
            a.send(Packet("a", "b", 100))
        sim.run()
        loss_frac = link.packets_dropped / n
        assert 0.25 < loss_frac < 0.35
        assert len(b.received) == n - link.packets_dropped

    def test_lost_flag_set_immediately_on_transmit(self):
        sim = Simulator(seed=1)
        a, b, _ = make_pair(sim, loss_rate=0.99, queue_limit_bytes=None)
        pkt = Packet("a", "b", 100)
        a.send(pkt)
        # Loss is decided synchronously at transmit() so the TCP sender
        # can classify retransmissions without waiting.
        assert pkt.lost

    def test_invalid_loss_rate_rejected(self):
        sim = Simulator()
        dst = Sink(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, "bad", dst, loss_rate=1.5)


class TestTap:
    def test_tap_sees_enqueue_and_deliver(self):
        sim = Simulator()
        a, b, link = make_pair(sim, latency=0.01)
        events = []
        link.add_tap(LinkTap(lambda kind, pkt, t: events.append((kind, t))))
        a.send(Packet("a", "b", 100))
        sim.run()
        kinds = [k for k, _ in events]
        assert kinds == ["enqueue", "deliver"]

    def test_tap_sees_queue_drop(self):
        sim = Simulator()
        a, b, link = make_pair(sim, bandwidth_bps=800, queue_limit_bytes=100)
        events = []
        link.add_tap(LinkTap(lambda kind, pkt, t: events.append(kind)))
        a.send(Packet("a", "b", 100))
        a.send(Packet("a", "b", 100))
        sim.run()
        assert "drop-queue" in events


class TestHostRouting:
    def test_no_route_raises(self):
        sim = Simulator()
        host = Host(sim, "lonely")
        with pytest.raises(RoutingError):
            host.send(Packet("lonely", "nowhere", 100))

    def test_default_route_used_when_no_specific_route(self):
        sim = Simulator()
        a = Sink(sim, "a")
        b = Sink(sim, "b")
        link = Link(sim, "default", b)
        a.set_default_route(link)
        a.send(Packet("a", "anything", 100))
        sim.run()
        # Sink.receive records regardless of address match.
        assert len(b.received) == 1

    def test_duplex_link_wires_both_directions(self):
        sim = Simulator()
        a = Sink(sim, "a")
        b = Sink(sim, "b")
        DuplexLink(sim, a, b, latency=0.01)
        a.send(Packet("a", "b", 100))
        b.send(Packet("b", "a", 100))
        sim.run()
        assert len(a.received) == 1
        assert len(b.received) == 1


@given(sizes=st.lists(st.integers(min_value=40, max_value=1500),
                      min_size=1, max_size=30))
def test_property_total_serialization_time_matches_byte_sum(sizes):
    sim = Simulator()
    a = Sink(sim, "a")
    b = Sink(sim, "b")
    bw = 1_000_000.0
    link = Link(sim, "a->b", b, bandwidth_bps=bw, latency=0.0,
                queue_limit_bytes=None)
    a.add_route("b", link)
    for s in sizes:
        a.send(Packet("a", "b", s))
    sim.run()
    expected_last = sum(s * 8 / bw for s in sizes)
    assert b.received[-1][0] == pytest.approx(expected_last)
    assert link.bytes_sent == sum(sizes)
