"""Tests for the page model and the Table 1 corpus."""

import pytest
from hypothesis import given, strategies as st

from repro.web import (BackgroundTransfer, TABLE1_SITES, WebObject, WebPage,
                       build_corpus, build_page, build_test_page,
                       corpus_statistics)
from repro.web.resources import KIND_HTML, KIND_IMAGE, KIND_JS


class TestWebObject:
    def test_blocking_kinds(self):
        js = WebObject("a", "d.example", "/a.js", 1000, "js")
        img = WebObject("b", "d.example", "/b.jpg", 1000, "image")
        assert js.blocking and not img.blocking

    def test_priorities_follow_figure_1d(self):
        html = WebObject("a", "d", "/", 100, "html")
        img = WebObject("b", "d", "/i", 100, "image")
        assert html.priority < img.priority

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            WebObject("a", "d", "/", 0, "html")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            WebObject("a", "d", "/", 100, "flash")


class TestWebPage:
    def _tiny_page(self):
        main = WebObject("m", "d0", "/", 5000, "html", children=["c1", "c2"])
        js = WebObject("c1", "d0", "/a.js", 2000, "js", children=["c3"])
        img = WebObject("c2", "d1", "/b.jpg", 3000, "image")
        img2 = WebObject("c3", "d1", "/c.jpg", 4000, "image")
        return WebPage(99, "tiny", "Test",
                       {o.object_id: o for o in (main, js, img, img2)}, "m")

    def test_totals(self):
        page = self._tiny_page()
        assert page.total_objects == 4
        assert page.total_bytes == 14000
        assert page.domains == ["d0", "d1"]

    def test_dependency_depth(self):
        page = self._tiny_page()
        assert page.max_dependency_depth() == 2  # m -> c1 -> c3

    def test_unknown_child_rejected(self):
        main = WebObject("m", "d", "/", 100, "html", children=["ghost"])
        with pytest.raises(ValueError):
            WebPage(1, "x", "Test", {"m": main}, "m")

    def test_orphan_rejected(self):
        main = WebObject("m", "d", "/", 100, "html")
        orphan = WebObject("o", "d", "/o", 100, "image")
        with pytest.raises(ValueError):
            WebPage(1, "x", "Test", {"m": main, "o": orphan}, "m")

    def test_bad_background_kind_rejected(self):
        with pytest.raises(ValueError):
            BackgroundTransfer(kind="push", start_offset=1.0)


class TestCorpus:
    def test_twenty_sites(self):
        pages = build_corpus()
        assert len(pages) == 20
        assert [p.site_id for p in pages] == list(range(1, 21))

    @pytest.mark.parametrize("spec", TABLE1_SITES,
                             ids=[f"site{s.site_id}" for s in TABLE1_SITES])
    def test_matches_table1_marginals(self, spec):
        page = build_page(spec)
        assert page.total_objects == max(1, round(spec.total_objects))
        # Total bytes within 1% of the published figure.
        assert page.total_bytes == pytest.approx(spec.total_kb * 1024,
                                                 rel=0.01)
        assert len(page.domains) == max(1, round(spec.domains))

    def test_deterministic_across_builds(self):
        a = build_page(TABLE1_SITES[6])
        b = build_page(TABLE1_SITES[6])
        assert [(o.object_id, o.size, o.domain) for o in a.objects.values()] \
            == [(o.object_id, o.size, o.domain) for o in b.objects.values()]

    def test_main_is_html_on_first_party_domain(self):
        for page in build_corpus():
            assert page.main.kind == KIND_HTML
            assert page.main.domain.endswith("-d0.example")

    def test_script_heavy_sites_have_deep_dependencies(self):
        # Site 14 (Baseball) has 94 JS/CSS objects: discovery must be stepped.
        page = build_page(TABLE1_SITES[13])
        assert page.max_dependency_depth() >= 2

    def test_news_sites_carry_background_activity(self):
        news = build_page(TABLE1_SITES[6])       # News
        assert any(b.kind == "poll" for b in news.background)
        assert sum(1 for b in news.background if b.kind == "beacon") >= 2

    def test_small_shopping_site_is_quiet(self):
        tiny = build_page(TABLE1_SITES[8])       # 5-object shopping site
        assert tiny.background == []

    def test_subset_selection(self):
        pages = build_corpus(site_ids=[3, 9])
        assert [p.site_id for p in pages] == [3, 9]

    def test_statistics_table_shape(self):
        rows = corpus_statistics(build_corpus())
        assert len(rows) == 20
        for row, spec in zip(rows, TABLE1_SITES):
            assert row["site_id"] == spec.site_id
            assert row["total_kb"] == pytest.approx(spec.total_kb, rel=0.01)


class TestTestPages:
    def test_same_domain_variant(self):
        page = build_test_page(same_domain=True)
        assert page.total_objects == 51
        assert len(page.domains) == 1

    def test_different_domain_variant(self):
        page = build_test_page(same_domain=False)
        assert len(page.domains) == 51  # 50 image domains + main

    def test_no_interdependencies(self):
        page = build_test_page(same_domain=True)
        assert page.max_dependency_depth() == 1
        for oid in page.main.children:
            assert page.objects[oid].kind == KIND_IMAGE
            assert page.objects[oid].children == []


@given(st.integers(min_value=1, max_value=20))
def test_property_every_site_page_is_connected_dag(site_id):
    page = build_page(TABLE1_SITES[site_id - 1])
    reachable = set(page.reachable_from(page.main_id))
    assert reachable == set(page.objects)
