"""Serial campaign interrupt discipline: SIGINT drain, kill -9 resume.

The parallel supervisor gets the same treatment in
``test_parallel_supervision.py``; these tests pin the *serial* loop's
contract, because ``--resume`` after a crash is only trustworthy if the
serial journal survives arbitrary interruption too.
"""

import os
import signal
import subprocess
import sys
import time

from repro.experiments.runner import ExperimentConfig
from repro.sanity import CampaignJournal, run_campaign, sweep_configs

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

RUNS = 12    # 24 trials: slow enough that signals land mid-campaign


def cli_configs():
    base = ExperimentConfig(network="3g", seed=0, site_ids=[1],
                            load_timeout=4.0, think_time=4.0)
    return sweep_configs(base, RUNS, protocols=["http", "spdy"])


def _campaign_cli(journal, extra=()):
    return [sys.executable, "-m", "repro", "campaign", "--sites", "1",
            "--runs", str(RUNS), "--timeout", "4", "--think-time", "4",
            "--journal", journal, *extra]


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return env


def _wait_for_records(journal, minimum, timeout=60.0):
    """Block until the journal holds ``minimum`` complete records.

    Signalling after a fixed sleep races the campaign's natural end on a
    fast box; waiting for journal growth instead guarantees the signal
    lands mid-campaign — a few trials done, ~20 still pending.
    """
    deadline = time.monotonic() + timeout  # repro-lint: disable=DET001 -- timing a real subprocess, not simulated time
    while time.monotonic() < deadline:  # repro-lint: disable=DET001 -- timing a real subprocess, not simulated time
        try:
            with open(journal) as handle:
                done = sum(1 for line in handle if line.endswith("\n"))
        except OSError:
            done = 0
        if done >= minimum:
            return
        time.sleep(0.02)
    raise AssertionError(f"journal never reached {minimum} records")


def test_serial_sigint_finishes_trial_then_stops(tmp_path):
    journal = str(tmp_path / "drained.jsonl")
    proc = subprocess.Popen(_campaign_cli(journal), env=_cli_env(),
                            cwd=REPO, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    _wait_for_records(journal, 3)
    proc.send_signal(signal.SIGINT)
    _, stderr = proc.communicate(timeout=120)
    assert proc.returncode == 130, stderr
    assert "finishing the current trial" in stderr
    assert "--resume" in stderr

    # Every journaled line is complete and well-formed: the drain never
    # kills a trial mid-record.
    records = CampaignJournal(journal).load()
    assert 0 < len(records) < 2 * RUNS
    assert all(r.get("status") in ("ok", "failed") for r in records)


def test_serial_kill9_then_resume_matches_uninterrupted(tmp_path):
    configs = cli_configs()
    reference_path = str(tmp_path / "reference.jsonl")
    reference = run_campaign(configs, journal_path=reference_path)

    journal = str(tmp_path / "killed.jsonl")
    proc = subprocess.Popen(_campaign_cli(journal), env=_cli_env(),
                            cwd=REPO, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    _wait_for_records(journal, 3)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()

    interrupted = CampaignJournal(journal).load()
    assert len(interrupted) < len(configs), "kill must land mid-campaign"

    resumed = run_campaign(configs, journal_path=journal, resume=True)
    assert len(resumed.records) == len(configs)
    assert resumed.resumed_count == len(interrupted)

    # Record-level equality is the right bar for the serial journal: the
    # file itself may keep a torn tail fragment plus the guard newline,
    # but every decodable record must match the uninterrupted run's.
    stripped = [{k: v for k, v in record.items() if k != "resumed"}
                for record in resumed.records]
    assert stripped == reference.records
    assert CampaignJournal(journal).load() == reference.records
