"""Integration tests: TCP connections over simulated links."""

import pytest

from repro.tcp import TcpConfig, TcpProbe

from helpers import ClientApp, EchoApp, Topology


def establish(topo, server_port=80, reply_bytes=0):
    server_app = EchoApp(reply_bytes=reply_bytes)
    topo.server_tcp.listen(server_port, server_app.on_accept)
    client_app = ClientApp()
    conn = topo.client_tcp.connect("server", server_port)
    client_app.attach(conn)
    return conn, client_app, server_app


class TestHandshake:
    def test_three_way_handshake_establishes_both_ends(self):
        topo = Topology(latency=0.05)
        conn, client_app, server_app = establish(topo)
        topo.sim.run()
        assert client_app.established
        assert conn.state == "ESTABLISHED"
        assert server_app.connections[0].state == "ESTABLISHED"
        # Client established exactly one RTT after SYN.
        assert conn.stats.established_at == pytest.approx(0.1, abs=0.01)

    def test_syn_retransmitted_on_loss(self):
        # 100% loss then heal: verify SYN rexmit machinery by checking the
        # retransmission counter under heavy loss.
        topo = Topology(latency=0.01, loss_rate=0.9, seed=3)
        conn, client_app, _ = establish(topo)
        topo.sim.run(until=30.0)
        assert conn.stats.retransmissions > 0

    def test_rtt_measured_from_handshake(self):
        topo = Topology(latency=0.05)
        conn, _, server_app = establish(topo)
        topo.sim.run()
        assert conn.srtt == pytest.approx(0.1, abs=0.02)


class TestDataTransfer:
    def test_single_small_message_delivered(self):
        topo = Topology()
        conn, _, server_app = establish(topo)
        conn.send_message("hello", 500)
        topo.sim.run()
        assert server_app.received == ["hello"]

    def test_send_before_establishment_is_queued(self):
        topo = Topology()
        server_app = EchoApp()
        topo.server_tcp.listen(80, server_app.on_accept)
        conn = topo.client_tcp.connect("server", 80)
        conn.send_message("early", 1000)  # handshake not yet done
        topo.sim.run()
        assert server_app.received == ["early"]

    def test_large_transfer_delivered_in_order(self):
        topo = Topology(bandwidth=2e6, latency=0.05)
        conn, _, server_app = establish(topo)
        for i in range(20):
            conn.send_message(i, 50_000)  # 1 MB total
        topo.sim.run()
        assert server_app.received == list(range(20))

    def test_bidirectional_request_response(self):
        topo = Topology(latency=0.02)
        conn, client_app, server_app = establish(topo, reply_bytes=30_000)
        conn.send_message("GET /", 400)
        topo.sim.run()
        assert server_app.received == ["GET /"]
        assert client_app.received == [("reply", "GET /")]

    def test_byte_counters(self):
        topo = Topology()
        conn, _, server_app = establish(topo)
        conn.send_message("x", 10_000)
        topo.sim.run()
        assert conn.stats.bytes_sent == 10_000
        assert conn.stats.bytes_acked == 10_000
        srv = server_app.connections[0]
        assert srv.stats.bytes_received == 10_000

    def test_multiple_messages_in_one_segment(self):
        topo = Topology()
        conn, _, server_app = establish(topo)
        for i in range(5):
            conn.send_message(i, 100)  # all five fit in one 1400B segment
        topo.sim.run()
        assert server_app.received == [0, 1, 2, 3, 4]

    def test_invalid_message_length_rejected(self):
        topo = Topology()
        conn, _, _ = establish(topo)
        with pytest.raises(ValueError):
            conn.send_message("bad", 0)


class TestLossRecovery:
    def test_transfer_completes_under_loss(self):
        topo = Topology(bandwidth=5e6, latency=0.03, loss_rate=0.02, seed=11)
        conn, _, server_app = establish(topo)
        for i in range(40):
            conn.send_message(i, 25_000)  # 1 MB
        topo.sim.run(until=120.0)
        assert server_app.received == list(range(40))
        assert conn.stats.retransmissions > 0

    def test_genuine_loss_not_classified_spurious(self):
        topo = Topology(bandwidth=5e6, latency=0.03, loss_rate=0.05, seed=5)
        conn, _, server_app = establish(topo)
        for i in range(40):
            conn.send_message(i, 25_000)
        topo.sim.run(until=120.0)
        assert conn.stats.retransmissions >= \
            conn.stats.spurious_retransmissions
        # With real loss present, at least some retransmissions are genuine.
        assert conn.stats.retransmissions > conn.stats.spurious_retransmissions

    def test_fast_retransmit_used_for_isolated_loss(self):
        topo = Topology(bandwidth=5e6, latency=0.03, loss_rate=0.01, seed=23)
        conn, _, server_app = establish(topo)
        for i in range(80):
            conn.send_message(i, 25_000)  # 2 MB: plenty of dupack fodder
        topo.sim.run(until=120.0)
        assert server_app.received == list(range(80))
        assert conn.stats.fast_retransmissions > 0

    def test_no_retransmissions_on_clean_unbounded_link(self):
        topo = Topology(bandwidth=10e6, latency=0.02, queue_limit_bytes=None)
        conn, _, server_app = establish(topo)
        for i in range(20):
            conn.send_message(i, 50_000)
        topo.sim.run()
        assert conn.stats.retransmissions == 0
        assert server_app.received == list(range(20))


class TestCongestionBehavior:
    def test_cwnd_grows_during_transfer(self):
        topo = Topology(bandwidth=10e6, latency=0.05)
        conn, _, _ = establish(topo)
        start_cwnd = conn.cwnd
        for i in range(40):
            conn.send_message(i, 25_000)
        topo.sim.run()
        assert conn.cc.max_cwnd_seen > start_cwnd

    def test_flow_limited_by_receive_window(self):
        cfg = TcpConfig(receive_window=14_000)  # 10 segments
        topo = Topology(bandwidth=10e6, latency=0.1,
                        client_config=cfg, server_config=cfg)
        conn, _, server_app = establish(topo)
        conn.send_message("big", 500_000)
        topo.sim.run(until=60.0)
        assert server_app.received == ["big"]
        # Throughput ceiling = rwnd / RTT = 14kB / 0.2s = 70 kB/s; the
        # transfer must take at least 500k/70k ~= 7 seconds.
        assert topo.sim.now > 6.0

    def test_throughput_respects_bandwidth(self):
        topo = Topology(bandwidth=1e6, latency=0.01)
        conn, _, server_app = establish(topo)
        conn.send_message("blob", 1_000_000)
        topo.sim.run()
        # 8 Mbit at 1 Mbps >= 8 seconds.
        assert topo.sim.now >= 8.0


class TestIdleBehavior:
    def _transfer_then_idle_then_transfer(self, cfg, idle=10.0):
        topo = Topology(bandwidth=10e6, latency=0.05, client_config=cfg,
                        server_config=cfg)
        conn, _, server_app = establish(topo)
        for i in range(30):
            conn.send_message(i, 25_000)
        topo.sim.run()
        t_idle_end = topo.sim.now + idle
        topo.sim.schedule_at(t_idle_end, conn.send_message, "after-idle", 25_000)
        topo.sim.run()
        return topo, conn, server_app

    def test_cwnd_reset_after_idle_by_default(self):
        cfg = TcpConfig(slow_start_after_idle=True)
        topo, conn, server_app = self._transfer_then_idle_then_transfer(cfg)
        assert conn.stats.idle_restarts >= 1
        assert "after-idle" in server_app.received

    def test_no_reset_when_disabled(self):
        cfg = TcpConfig(slow_start_after_idle=False, reset_rtt_after_idle=False)
        topo, conn, server_app = self._transfer_then_idle_then_transfer(cfg)
        assert conn.stats.idle_restarts == 0

    def test_rtt_reset_after_idle_raises_rto(self):
        cfg = TcpConfig(reset_rtt_after_idle=True, slow_start_after_idle=True,
                        idle_rto_reset_value=3.0)
        topo, conn, server_app = self._transfer_then_idle_then_transfer(cfg)
        # After the idle restart the estimator was reset; a new sample from
        # the post-idle segment rebuilds it.
        assert conn.rto_estimator.resets >= 1


class TestClose:
    def test_graceful_close_notifies_peer(self):
        topo = Topology()
        conn, client_app, server_app = establish(topo)
        conn.send_message("bye", 100)
        topo.sim.run()
        closed = []
        server_app.connections[0].on_close = lambda c: closed.append(True)
        conn.close()
        topo.sim.run()
        assert closed == [True]
        assert conn.state == "CLOSED"

    def test_close_flushes_pending_data(self):
        topo = Topology(bandwidth=2e6)
        conn, _, server_app = establish(topo)
        conn.send_message("big", 200_000)
        conn.close()
        topo.sim.run()
        assert server_app.received == ["big"]

    def test_send_after_close_rejected(self):
        topo = Topology()
        conn, _, _ = establish(topo)
        conn.close()
        with pytest.raises(RuntimeError):
            conn.send_message("late", 100)


class TestMetricsCacheIntegration:
    def test_second_connection_inherits_ssthresh(self):
        topo = Topology(bandwidth=5e6, latency=0.03, loss_rate=0.03, seed=9)
        conn, _, server_app = establish(topo, server_port=80)
        for i in range(40):
            conn.send_message(i, 25_000)
        topo.sim.run(until=60.0)
        conn.close()
        topo.sim.run(until=70.0)
        assert topo.client_tcp.metrics_cache.saves >= 1
        conn2 = topo.client_tcp.connect("server", 80)
        # ssthresh was reduced by loss on conn1 and inherited by conn2.
        assert conn2.cc.ssthresh < 1 << 29

    def test_cache_disabled_gives_fresh_connection(self):
        cfg = TcpConfig(use_metrics_cache=False)
        topo = Topology(bandwidth=5e6, latency=0.03, loss_rate=0.03, seed=9,
                        client_config=cfg, server_config=cfg)
        conn, _, _ = establish(topo)
        for i in range(40):
            conn.send_message(i, 25_000)
        topo.sim.run(until=60.0)
        conn.close()
        topo.sim.run(until=70.0)
        conn2 = topo.client_tcp.connect("server", 80)
        assert conn2.cc.ssthresh >= 1 << 29


class TestProbe:
    def test_probe_collects_samples_and_retransmissions(self):
        topo = Topology(bandwidth=5e6, latency=0.03, loss_rate=0.03, seed=2)
        probe = TcpProbe()
        topo.client_tcp.set_probe(probe)
        conn, _, _ = establish(topo)
        for i in range(40):
            conn.send_message(i, 25_000)
        topo.sim.run(until=60.0)
        assert len(probe.samples) > 0
        assert len(probe.retransmissions) > 0
        assert probe.samples_for(conn.conn_id)
        counts = probe.retransmissions_by_connection()
        assert counts.get(conn.conn_id, 0) == conn.stats.retransmissions
