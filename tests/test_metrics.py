"""Unit tests for the metrics/statistics toolkit."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (box_stats, bytes_in_flight_series, cdf_points,
                           mean, mean_confidence_interval, percentile,
                           throughput_bins)
from repro.metrics.packets import PacketRecord
from repro.tcp.trace import ProbeSample


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_p_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestBoxStats:
    def test_five_number_summary(self):
        stats = box_stats([1, 2, 3, 4, 5])
        assert stats.minimum == 1
        assert stats.median == 3
        assert stats.maximum == 5
        assert stats.mean == 3
        assert stats.n == 5

    def test_quartiles_ordered(self):
        stats = box_stats([7, 1, 4, 9, 2, 8])
        assert stats.minimum <= stats.p25 <= stats.median \
            <= stats.p75 <= stats.maximum


class TestCdf:
    def test_cdf_reaches_one(self):
        points = cdf_points([3, 1, 2])
        assert points[-1] == (3, 1.0)
        assert points[0] == (1, pytest.approx(1 / 3))

    def test_empty(self):
        assert cdf_points([]) == []


class TestConfidenceInterval:
    def test_single_value_degenerate(self):
        m, lo, hi = mean_confidence_interval([5.0])
        assert m == lo == hi == 5.0

    def test_interval_contains_mean(self):
        m, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert lo < m < hi

    def test_tighter_with_more_samples(self):
        few = mean_confidence_interval([1.0, 2.0, 3.0])
        many = mean_confidence_interval([1.0, 2.0, 3.0] * 10 + [2.0])
        assert (many[2] - many[1]) < (few[2] - few[1])


def _deliver(t, size, payload_len=None):
    return PacketRecord(time=t, kind="deliver", size=size, src="a", dst="b",
                        payload_len=size if payload_len is None
                        else payload_len)


class TestThroughputBins:
    def test_bins_align_from_zero(self):
        records = [_deliver(0.5, 100), _deliver(1.5, 200), _deliver(1.9, 50)]
        bins = throughput_bins(records, 1.0)
        assert bins[0] == (0.0, 100)
        assert bins[1] == (1.0, 250)

    def test_until_extends_bins(self):
        bins = throughput_bins([_deliver(0.5, 100)], 1.0, until=5.0)
        assert len(bins) == 6
        assert all(b == 0 for _, b in bins[1:])

    def test_non_delivered_ignored(self):
        records = [PacketRecord(time=0.1, kind="drop-loss", size=100,
                                src="a", dst="b", payload_len=100)]
        bins = throughput_bins(records, 1.0, until=1.0)
        assert bins[0][1] == 0

    def test_invalid_bin_rejected(self):
        with pytest.raises(ValueError):
            throughput_bins([], 0)


class TestBytesInFlight:
    def test_step_sum_across_connections(self):
        def sample(t, conn, inflight):
            return ProbeSample(time=t, conn_id=conn, cwnd=10, ssthresh=100,
                               inflight_bytes=inflight, inflight_segments=1,
                               event="ack")

        series = bytes_in_flight_series([
            sample(1.0, "a", 100),
            sample(2.0, "b", 200),
            sample(3.0, "a", 50),
        ])
        assert series == [(1.0, 100), (2.0, 300), (3.0, 250)]


@given(st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False,
                          allow_subnormal=False),
                min_size=1, max_size=200))
def test_property_box_stats_bounds(values):
    stats = box_stats(values)
    eps = 1e-9 * max(1.0, stats.maximum)
    assert stats.minimum - eps <= stats.mean <= stats.maximum + eps
    assert stats.minimum <= stats.median <= stats.maximum


@given(st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False),
                min_size=1, max_size=100))
def test_property_cdf_monotone(values):
    points = cdf_points(values)
    fracs = [f for _, f in points]
    vals = [v for v, _ in points]
    assert fracs == sorted(fracs)
    assert vals == sorted(vals)
    assert fracs[-1] == pytest.approx(1.0)
