"""Unit tests for the SPDY proxy's priority frame scheduler."""

import pytest

from repro.net import DuplexLink, Host
from repro.proxy.scheduler import PriorityScheduler, StreamOutput
from repro.sim import Simulator
from repro.tcp import TcpStack


class Frame:
    """Minimal frame stand-in."""

    def __init__(self, stream_id, size=1000):
        self.stream_id = stream_id
        self.size = size


def build(n_conns=1, late_binding=False, bandwidth=1e6):
    sim = Simulator()
    proxy = Host(sim, "proxy")
    client = Host(sim, "client")
    DuplexLink(sim, proxy, client, latency=0.01,
               bandwidth_down_bps=bandwidth, bandwidth_up_bps=bandwidth)
    proxy_tcp = TcpStack(sim, proxy)
    client_tcp = TcpStack(sim, client)
    received = []

    def accept(conn):
        conn.on_message = lambda c, msg: received.append(msg)

    client_tcp.listen(9000, accept)
    scheduler = PriorityScheduler(sim, late_binding=late_binding)
    conns = []
    for _ in range(n_conns):
        conn = proxy_tcp.connect("client", 9000)
        conn.on_established = lambda c: scheduler.add_connection(c)
        conns.append(conn)
    sim.run(until=1.0)  # establish
    return sim, scheduler, conns, received


class TestPriorityOrdering:
    def test_high_priority_overtakes_low(self):
        sim, scheduler, conns, received = build(bandwidth=200e3)
        low = StreamOutput(1, priority=3, conn=conns[0])
        high = StreamOutput(3, priority=0, conn=conns[0])
        scheduler.open_stream(low)
        scheduler.open_stream(high)
        # Enqueue a big low-priority backlog first, then high-priority.
        # (The first ~watermark+cwnd worth of lows is already committed
        # to the socket; the highs must overtake the *uncommitted* tail.)
        for _ in range(120):
            scheduler.enqueue(1, Frame(1), 1000)
        for _ in range(5):
            scheduler.enqueue(3, Frame(3), 1000)
        scheduler.finish_stream(1)
        scheduler.finish_stream(3)
        sim.run(until=30.0)
        order = [f.stream_id for f in received]
        last_high = max(i for i, s in enumerate(order) if s == 3)
        assert last_high < len(order) - 40

    def test_round_robin_within_priority(self):
        sim, scheduler, conns, received = build(bandwidth=500e3)
        a = StreamOutput(1, priority=1, conn=conns[0])
        b = StreamOutput(3, priority=1, conn=conns[0])
        scheduler.open_stream(a)
        scheduler.open_stream(b)
        for _ in range(10):
            scheduler.enqueue(1, Frame(1), 1000)
            scheduler.enqueue(3, Frame(3), 1000)
        scheduler.finish_stream(1)
        scheduler.finish_stream(3)
        sim.run(until=10.0)
        order = [f.stream_id for f in received]
        # Interleaved, not strictly one stream then the other.
        first_half = order[:10]
        assert 1 in [s for s in first_half] and 3 in [s for s in first_half]

    def test_callbacks_fire_once(self):
        sim, scheduler, conns, received = build()
        events = []
        stream = StreamOutput(1, priority=0, conn=conns[0],
                              on_first_write=lambda: events.append("first"),
                              on_last_write=lambda c: events.append("last"))
        scheduler.open_stream(stream)
        scheduler.enqueue(1, Frame(1), 1000)
        scheduler.enqueue(1, Frame(1), 1000)
        scheduler.finish_stream(1)
        sim.run(until=5.0)
        assert events == ["first", "last"]

    def test_finish_after_drain_still_fires_last_write(self):
        sim, scheduler, conns, received = build()
        events = []
        stream = StreamOutput(1, priority=0, conn=conns[0],
                              on_last_write=lambda c: events.append("last"))
        scheduler.open_stream(stream)
        scheduler.enqueue(1, Frame(1), 500)
        sim.run(until=2.0)      # frame fully sent before finish_stream
        scheduler.finish_stream(1)
        sim.run(until=3.0)
        assert events == ["last"]


class TestLateBinding:
    def test_static_binding_sticks_to_home_conn(self):
        sim, scheduler, conns, received = build(n_conns=2,
                                                late_binding=False)
        stream = StreamOutput(1, priority=0, conn=conns[0])
        scheduler.open_stream(stream)
        for _ in range(10):
            scheduler.enqueue(1, Frame(1), 1000)
        scheduler.finish_stream(1)
        sim.run(until=5.0)
        assert conns[0].stats.bytes_sent > 0
        assert conns[1].stats.bytes_sent == 0

    def test_late_binding_spreads_across_conns(self):
        sim, scheduler, conns, received = build(n_conns=2, late_binding=True,
                                                bandwidth=200e3)
        stream = StreamOutput(1, priority=0, conn=conns[0])
        scheduler.open_stream(stream)
        for _ in range(60):
            scheduler.enqueue(1, Frame(1), 1000)
        scheduler.finish_stream(1)
        sim.run(until=10.0)
        assert conns[0].stats.bytes_sent > 0
        assert conns[1].stats.bytes_sent > 0

    def test_backlog_accounting(self):
        sim, scheduler, conns, received = build(bandwidth=50e3)
        stream = StreamOutput(1, priority=0, conn=conns[0])
        scheduler.open_stream(stream)
        for _ in range(100):
            scheduler.enqueue(1, Frame(1), 1000)
        assert scheduler.backlog_frames > 0
        sim.run(until=60.0)
        assert scheduler.backlog_frames == 0
