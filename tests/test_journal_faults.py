"""CampaignJournal under injected disk faults: retry, repair, degrade.

The contract under test: a journal append never raises for I/O trouble.
Transient faults are retried with capped backoff; torn partial writes
are truncated back to the last record boundary before any retry; and a
persistent fault degrades the journal into its bounded ring, which
flushes *in order* the moment the disk comes back — so a campaign that
survived ENOSPC resumes to a byte-identical journal.
"""

import hashlib
import json
import os

from repro.experiments.population import SectorConfig, run_sector_campaign
from repro.guard import JournalFaults
from repro.reporting import render_campaign_health
from repro.sanity import CampaignJournal


def sha256(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def record(seed, status="ok"):
    return {"kind": "trial", "digest": "d", "seed": seed, "status": status}


# ----------------------------------------------------------------------
# retry ladder
# ----------------------------------------------------------------------
def test_transient_fault_is_retried_with_backoff(tmp_path):
    sleeps = []
    journal = CampaignJournal(str(tmp_path / "j.jsonl"),
                              faults=JournalFaults("enospc@1"),
                              retry_sleep=sleeps.append)
    written = journal.append(record(0))
    journal.close()
    assert written > 0
    assert sleeps == [0.05]
    stats = journal.stats()
    assert stats["io_errors"] == 1
    assert stats["io_retries"] == 1
    assert not stats["degraded"]
    assert journal.load() == [record(0)]


def test_backoff_doubles_and_caps(tmp_path):
    sleeps = []
    journal = CampaignJournal(str(tmp_path / "j.jsonl"),
                              faults=JournalFaults("eio@1-6"),
                              max_append_retries=6,
                              retry_sleep=sleeps.append)
    journal.append(record(0))
    journal.close()
    assert sleeps == [0.05, 0.1, 0.2, 0.4, 0.5, 0.5]
    assert journal.load() == [record(0)]


def test_partial_write_is_truncated_before_retry(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = CampaignJournal(path, faults=JournalFaults("partial@2"),
                              retry_sleep=lambda _: None)
    journal.append(record(0))
    journal.append(record(1))  # torn half-line lands, then repair + retry
    journal.close()
    assert journal.stats()["torn_repairs"] >= 1
    assert journal.load() == [record(0), record(1)]
    with open(path, "rb") as handle:
        assert handle.read().endswith(b"\n")


# ----------------------------------------------------------------------
# degradation into the ring, recovery back out
# ----------------------------------------------------------------------
def test_persistent_fault_degrades_then_recovers_in_order(tmp_path):
    # Two physical attempts per exhausted ladder (max_append_retries=1):
    # append #1 burns attempts 1-2 and degrades; appends #2-#5 probe once
    # each (attempts 3-6, all faulted); append #6's probe (attempt 7) is
    # past the fault window, so the backlog flushes oldest-first and the
    # append itself lands normally.
    journal = CampaignJournal(str(tmp_path / "j.jsonl"),
                              faults=JournalFaults("enospc@1-6"),
                              max_append_retries=1,
                              retry_sleep=lambda _: None)
    for seed in range(6):
        journal.append(record(seed))
    stats = journal.stats()
    assert not stats["degraded"]
    assert stats["ring_buffered"] == 0
    assert stats["degraded_appends"] == 5
    assert stats["ring_flushed"] == 5
    assert stats["ring_dropped"] == 0
    journal.close()
    assert journal.load() == [record(seed) for seed in range(6)]


def test_degraded_append_returns_zero_and_never_raises(tmp_path):
    journal = CampaignJournal(str(tmp_path / "j.jsonl"),
                              faults=JournalFaults("enospc@1-1000"),
                              max_append_retries=1,
                              retry_sleep=lambda _: None)
    assert journal.append(record(0)) == 0
    assert journal.append(record(1)) == 0
    stats = journal.stats()
    assert stats["degraded"]
    assert stats["ring_buffered"] == 2
    journal.close()


def test_ring_eviction_is_counted_not_unbounded(tmp_path):
    journal = CampaignJournal(str(tmp_path / "j.jsonl"),
                              faults=JournalFaults("enospc@1-1000"),
                              max_append_retries=0, ring_capacity=3,
                              retry_sleep=lambda _: None)
    for seed in range(8):
        journal.append(record(seed))
    stats = journal.stats()
    assert stats["ring_buffered"] == 3
    assert stats["ring_dropped"] == 5
    journal.close()


def test_close_flushes_recovered_backlog(tmp_path):
    # The fault clears right before close(): the final recovery probe
    # inside close() must land the buffered records.
    journal = CampaignJournal(str(tmp_path / "j.jsonl"),
                              faults=JournalFaults("enospc@1-2"),
                              max_append_retries=0,
                              retry_sleep=lambda _: None)
    journal.append(record(0))  # attempt 1: degrade
    journal.append(record(1))  # probe attempt 2: still down
    journal.close()            # probe attempt 3: disk is back
    assert journal.load() == [record(0), record(1)]
    assert journal.stats()["ring_buffered"] == 0


# ----------------------------------------------------------------------
# load-time salvage accounting
# ----------------------------------------------------------------------
def test_load_reports_torn_tail_and_interior_corruption(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(record(0), sort_keys=True) + "\n")
        handle.write("{not json}\n")
        handle.write(json.dumps(record(1), sort_keys=True) + "\n")
        handle.write('{"kind": "trial", "tru')  # crash-truncated tail
    journal = CampaignJournal(path)
    records = journal.load()
    assert [r["seed"] for r in records] == [0, 1]
    assert journal.last_load_stats == {"records": 2, "torn_tail": 1,
                                       "corrupt_lines": 1}


def test_reopen_after_torn_tail_does_not_glue_records(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"kind": "trial", "tru')  # no newline
    journal = CampaignJournal(path)
    journal.append(record(5))
    journal.close()
    assert journal.load() == [record(5)]


# ----------------------------------------------------------------------
# health report surfacing
# ----------------------------------------------------------------------
def test_health_report_names_journal_trouble(tmp_path):
    journal = CampaignJournal(str(tmp_path / "j.jsonl"),
                              faults=JournalFaults("enospc@1-1000"),
                              max_append_retries=1,
                              retry_sleep=lambda _: None)
    journal.append(record(0))
    report = render_campaign_health([], journal_stats=journal.stats())
    assert "journal:" in report
    assert "io_errors=" in report
    assert "DEGRADED" in report
    journal.close()


def test_health_report_quiet_on_healthy_journal(tmp_path):
    journal = CampaignJournal(str(tmp_path / "j.jsonl"))
    journal.append(record(0))
    journal.close()
    report = render_campaign_health([], journal_stats=journal.stats())
    assert "journal:" not in report
    assert render_campaign_health([], journal_stats=None) is not None


# ----------------------------------------------------------------------
# end to end: a campaign that hit ENOSPC resumes byte-identical
# ----------------------------------------------------------------------
def test_enospc_campaign_resumes_byte_identical(tmp_path, monkeypatch):
    config = SectorConfig(users=200, shard_size=50, seed=3)

    clean = str(tmp_path / "clean.jsonl")
    monkeypatch.delenv("REPRO_JOURNAL_FAULTS", raising=False)
    run_sector_campaign(config, journal_path=clean)

    # Disk "fills" after the first shard record and never recovers in
    # this process: shards 2-4 land in the ring and are lost with the
    # process (counted, not crashed).
    faulted = str(tmp_path / "faulted.jsonl")
    monkeypatch.setenv("REPRO_JOURNAL_FAULTS", "enospc@2-1000")
    result = run_sector_campaign(config, journal_path=faulted)
    assert result.journal_stats["degraded"]
    assert result.journal_stats["degraded_appends"] == 3
    assert len(result.records) == 4  # the campaign itself degraded, not died

    # Disk back, resume: only the journaled shard is skipped; the rest
    # re-run and append in plan order, converging to the clean bytes.
    monkeypatch.delenv("REPRO_JOURNAL_FAULTS", raising=False)
    resumed = run_sector_campaign(config, journal_path=faulted, resume=True)
    assert sum(1 for r in resumed.records if r.get("resumed")) == 1
    assert sha256(faulted) == sha256(clean)
