"""Tests for the experiment runner, study orchestration and analysis layer."""

import pytest

from repro import (ExperimentConfig, MeasurementStudy, run_experiment,
                   run_many, summarize_run)
from repro.core import correlate_idle_retransmissions, evaluate_remedies
from repro.experiments.runner import visit_order

SMALL = [9, 12]   # tiny sites keep these tests quick


class TestVisitOrder:
    def test_fixed_across_calls(self):
        assert visit_order(list(range(1, 21))) == visit_order(list(range(1, 21)))

    def test_shuffle_disabled_preserves_order(self):
        assert visit_order([3, 1, 2], shuffle=False) == [3, 1, 2]

    def test_all_sites_present(self):
        order = visit_order(list(range(1, 21)))
        assert sorted(order) == list(range(1, 21))


class TestRunExperiment:
    def test_all_pages_visited_in_order(self):
        config = ExperimentConfig(protocol="http", network="wifi",
                                  site_ids=SMALL, think_time=20.0)
        run = run_experiment(config)
        assert len(run.pages) == len(SMALL)
        assert [p.site_id for p in run.pages] == run.visit_order

    def test_pages_spaced_by_think_time(self):
        config = ExperimentConfig(protocol="http", network="wifi",
                                  site_ids=SMALL, think_time=20.0)
        run = run_experiment(config)
        starts = [p.started_at for p in run.pages]
        assert starts[1] - starts[0] == pytest.approx(20.0)

    def test_run_many_varies_seed(self):
        config = ExperimentConfig(protocol="http", network="wifi",
                                  site_ids=[9], think_time=15.0)
        runs = run_many(config, 2)
        assert runs[0].config.seed != runs[1].config.seed
        assert len(runs) == 2

    def test_run_many_rejects_zero(self):
        with pytest.raises(ValueError):
            run_many(ExperimentConfig(), 0)

    def test_same_seed_is_deterministic(self):
        config = ExperimentConfig(protocol="spdy", network="3g",
                                  site_ids=SMALL, think_time=20.0, seed=7)
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.plts_by_site() == b.plts_by_site()
        assert a.total_retransmissions() == b.total_retransmissions()

    def test_keepalive_ping_holds_radio(self):
        config = ExperimentConfig(protocol="http", network="3g",
                                  site_ids=[9], think_time=30.0,
                                  keepalive_ping=True)
        run = run_experiment(config)
        machine = run.testbed.radio
        dch = machine.time_in_states(run.duration).get("CELL_DCH", 0.0)
        assert dch > 0.8 * run.duration

    def test_warm_cache_seeds_proxy(self):
        config = ExperimentConfig(protocol="http", network="3g",
                                  site_ids=[9], think_time=15.0)
        run = run_experiment(config)
        entry = run.testbed.proxy_stack.metrics_cache.lookup("client")
        assert entry is not None

    def test_warm_cache_skipped_on_wifi(self):
        config = ExperimentConfig(protocol="http", network="wifi",
                                  site_ids=[9], think_time=15.0)
        run = run_experiment(config)
        # No seeding; the cache may still hold organically saved entries,
        # but at t=0 it was empty: check saves count started from real
        # connection closes only (>=0 either way, so assert no crash).
        assert run.pages

    def test_energy_accounting_positive_on_cellular(self):
        config = ExperimentConfig(protocol="http", network="3g",
                                  site_ids=[9], think_time=15.0)
        run = run_experiment(config)
        assert run.radio_energy_mj() > 0

    def test_energy_zero_on_wifi(self):
        config = ExperimentConfig(protocol="http", network="wifi",
                                  site_ids=[9], think_time=15.0)
        run = run_experiment(config)
        assert run.radio_energy_mj() == 0.0


class TestMeasurementStudy:
    def test_study_runs_both_protocols(self):
        study = MeasurementStudy(network="wifi", n_runs=1, site_ids=SMALL)
        result = study.run()
        assert set(result.runs) == {"http", "spdy"}
        assert result.verdict() in ("spdy-clearly-better",
                                    "http-clearly-better",
                                    "no-clear-winner")
        assert set(result.site_boxes("http")) == set(SMALL)
        assert result.median_plt("http") > 0

    def test_summaries_cover_all_runs(self):
        study = MeasurementStudy(network="wifi", n_runs=1, site_ids=[9])
        result = study.run()
        summaries = result.summaries()
        assert len(summaries) == 2
        protocols = {s["protocol"] for s in summaries}
        assert protocols == {"http", "spdy"}


class TestCrossLayerAnalysis:
    def test_report_fields_consistent(self):
        config = ExperimentConfig(protocol="spdy", network="3g",
                                  site_ids=[7, 11], think_time=60.0)
        run = run_experiment(config)
        report = correlate_idle_retransmissions(run.testbed.proxy_probe,
                                                run.testbed.radio)
        assert report.total_spurious <= report.total_retransmissions
        assert 0.0 <= report.spurious_fraction <= 1.0
        assert 0.0 <= report.idle_attribution_fraction <= 1.0
        assert report.promotions > 0

    def test_summarize_run_keys(self):
        config = ExperimentConfig(protocol="http", network="3g",
                                  site_ids=[9], think_time=15.0)
        run = run_experiment(config)
        summary = summarize_run(run)
        for key in ("protocol", "network", "median_plt", "retransmissions",
                    "spurious_fraction", "radio_promotions",
                    "radio_energy_mj"):
            assert key in summary


class TestRemedies:
    def test_evaluate_remedies_shapes(self):
        results = evaluate_remedies(protocol="spdy", network="3g", n_runs=1,
                                    site_ids=[9, 12])
        assert "baseline" in results
        assert "reset-rtt-after-idle" in results
        assert "late-binding" in results
        assert "frto-off" in results
        for stats in results.values():
            assert stats["median_plt"] > 0
