"""Tests for HTTP/1.1 and SPDY message objects and header compression."""

import pytest

from repro.web import (HttpRequest, HttpResponseBody, HttpResponseHead,
                       SpdyDataFrame, SpdyHeaderCodec, SpdyStreamIds,
                       SpdySynReply, SpdySynStream, TlsHandshakeMessage,
                       build_request_headers, build_response_headers)


class TestHeaderGeneration:
    def test_request_headers_realistic_size(self):
        raw = build_request_headers("GET", "news.example", "/index.html")
        # Chrome-era request heads with cookies run 500-900 bytes.
        assert 400 < len(raw) < 1200

    def test_proxy_form_uses_absolute_uri(self):
        absolute = build_request_headers("GET", "a.example", "/x",
                                         via_proxy=True)
        origin = build_request_headers("GET", "a.example", "/x",
                                       via_proxy=False)
        assert len(absolute) > len(origin)

    def test_response_headers_realistic_size(self):
        raw = build_response_headers(200, "text/html", 5000, "a.example")
        assert 250 < len(raw) < 700

    def test_deterministic(self):
        a = build_request_headers("GET", "a.example", "/x")
        b = build_request_headers("GET", "a.example", "/x")
        assert a == b


class TestSpdyHeaderCompression:
    def test_compression_beats_plaintext(self):
        codec = SpdyHeaderCodec()
        raw = build_request_headers("GET", "news.example", "/")
        assert codec.compressed_size(raw) < len(raw)

    def test_later_blocks_compress_better(self):
        """The session context adapts: repeat headers shrink dramatically."""
        codec = SpdyHeaderCodec()
        sizes = []
        for i in range(10):
            raw = build_request_headers("GET", "news.example", f"/obj/{i}")
            sizes.append(codec.compressed_size(raw))
        assert sizes[-1] < sizes[0] * 0.5
        assert sizes[-1] < 120

    def test_ratio_tracked(self):
        codec = SpdyHeaderCodec()
        for i in range(5):
            codec.compressed_size(
                build_request_headers("GET", "x.example", f"/{i}"))
        assert 0 < codec.overall_ratio < 1.0


class TestHttpMessages:
    def test_request_wire_size_is_header_size(self):
        req = HttpRequest("a.example", "/obj")
        assert req.wire_size == req.header_bytes

    def test_response_split_head_body(self):
        req = HttpRequest("a.example", "/obj")
        head = HttpResponseHead(req, content_length=50_000)
        body = HttpResponseBody(req, length=50_000)
        assert head.wire_size < 1000
        assert body.wire_size == 50_000
        assert head.request is req and body.request is req

    def test_request_ids_unique(self):
        a = HttpRequest("a.example", "/1")
        b = HttpRequest("a.example", "/2")
        assert a.request_id != b.request_id


class TestSpdyMessages:
    def test_stream_ids_odd_and_increasing(self):
        ids = SpdyStreamIds()
        first = [ids.next_id() for _ in range(5)]
        assert first == [1, 3, 5, 7, 9]

    def test_syn_stream_smaller_than_http_request(self):
        codec = SpdyHeaderCodec()
        http_req = HttpRequest("news.example", "/big/page")
        # Burn one block so the context is warm (a session mid-page).
        codec.compressed_size(
            build_request_headers("GET", "news.example", "/"))
        syn = SpdySynStream(3, codec, "news.example", "/big/page")
        assert syn.wire_size < http_req.wire_size

    def test_data_frame_overhead(self):
        frame = SpdyDataFrame(1, 2800, last=True)
        assert frame.wire_size == 8 + 2800 + 29

    def test_data_frame_rejects_empty(self):
        with pytest.raises(ValueError):
            SpdyDataFrame(1, 0)

    def test_syn_reply_compressed(self):
        codec = SpdyHeaderCodec()
        reply = SpdySynReply(1, codec, "a.example", 5000, "text/html")
        raw = build_response_headers(200, "text/html", 5000, "a.example")
        assert reply.header_bytes < len(raw)

    def test_tls_handshake_stages(self):
        assert TlsHandshakeMessage("client_hello").wire_size == 300
        assert TlsHandshakeMessage("server_hello_cert").wire_size == 3500
        with pytest.raises(ValueError):
            TlsHandshakeMessage("quantum_hello")
