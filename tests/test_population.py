"""Sector campaigns: determinism, constant memory, budget degradation.

The 10^5-user path's acceptance bar: any chunking, sharding, worker
count, or retry computes the same user draws and therefore the same
journal bytes; peak RSS stays bounded no matter the population; and a
budget trip ends in a *classified*, resumable exhaustion record — the
campaign degrades, it never dies.
"""

import hashlib
import json

import pytest

from repro.experiments.population import (SectorConfig, aggregate_sector,
                                          is_sector_exhaustion,
                                          run_sector_campaign,
                                          run_sector_trial, run_shard,
                                          sector_digest,
                                          sector_exhaustion_record,
                                          simulate_user)
from repro.guard import ResourceBudget, ResourceExhausted, rss_bytes
from repro.parallel import run_parallel_sector
from repro.sanity import CampaignJournal


def sha256(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


SMALL = SectorConfig(users=400, shard_size=100, seed=7)


# ----------------------------------------------------------------------
# config + digest
# ----------------------------------------------------------------------
def test_config_validates_regime_and_shape():
    with pytest.raises(ValueError, match="users"):
        SectorConfig(users=0)
    with pytest.raises(ValueError, match="regime"):
        SectorConfig(protocol="gopher")
    with pytest.raises(ValueError, match="alpha"):
        SectorConfig(alpha=1.5)


def test_shard_arithmetic_covers_every_user_once():
    config = SectorConfig(users=1050, shard_size=500)
    assert config.n_shards == 3
    ranges = [config.shard_range(i) for i in range(config.n_shards)]
    assert ranges == [(0, 500), (500, 1000), (1000, 1050)]
    with pytest.raises(ValueError):
        config.shard_range(3)


def test_sector_digest_is_seed_sensitive():
    assert sector_digest(SMALL) == sector_digest(
        SectorConfig(users=400, shard_size=100, seed=7))
    assert sector_digest(SMALL) != sector_digest(
        SectorConfig(users=400, shard_size=100, seed=8))


# ----------------------------------------------------------------------
# the per-user model
# ----------------------------------------------------------------------
def test_simulate_user_is_a_pure_function_of_seed_and_uid():
    assert simulate_user(SMALL, 123) == simulate_user(SMALL, 123)
    assert simulate_user(SMALL, 123) != simulate_user(SMALL, 124)
    plt, energy = simulate_user(SMALL, 123)
    assert 0 < plt <= 55.0
    assert energy > 0


def test_spdy_shifts_the_sector_distribution_down():
    http = SectorConfig(users=2000, shard_size=2000, protocol="http")
    spdy = SectorConfig(users=2000, shard_size=2000, protocol="spdy")
    http_plt = run_shard(http, 0)["plt"].summary()
    spdy_plt = run_shard(spdy, 0)["plt"].summary()
    assert spdy_plt["mean"] < http_plt["mean"]
    assert spdy_plt["p95"] <= http_plt["p95"]


# ----------------------------------------------------------------------
# shards
# ----------------------------------------------------------------------
def test_run_shard_chunking_cannot_change_the_sketches():
    reference = run_shard(SMALL, 1)
    for chunk in (1, 7, 100, 10_000):
        sketches = run_shard(SMALL, 1, chunk=chunk)
        for metric in ("plt", "energy"):
            assert sketches[metric].to_dict() == reference[metric].to_dict()
    assert reference["plt"].count == 100


def test_run_shard_budget_trips_as_classified_exhaustion():
    budget = ResourceBudget(max_events=150)
    with pytest.raises(ResourceExhausted) as excinfo:
        run_shard(SectorConfig(users=1000, shard_size=1000), 0,
                  budget=budget, chunk=100)
    assert excinfo.value.resource == "events"


def test_run_sector_trial_record_shape_and_classification():
    record = run_sector_trial(SMALL, 2)
    assert record["kind"] == "trial"
    assert record["status"] == "ok"
    assert record["seed"] == 2
    assert record["digest"] == sector_digest(SMALL)
    assert record["summary"]["users"] == 100
    assert not is_sector_exhaustion(record)

    budget = ResourceBudget(max_events=10)
    exhausted = run_sector_trial(SMALL, 2, budget=budget, chunk=50)
    assert exhausted["status"] == "failed"
    assert exhausted["failure"]["kind"] == "resource-exhaustion"
    assert is_sector_exhaustion(exhausted)


def test_exhaustion_records_are_not_in_the_resume_done_set(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = CampaignJournal(path)
    journal.append(run_sector_trial(SMALL, 0))
    journal.append(sector_exhaustion_record(
        SMALL, 1, ResourceExhausted("rss", "over ceiling")))
    journal.close()
    done = journal.completed()
    assert (sector_digest(SMALL), 0) in done
    assert (sector_digest(SMALL), 1) not in done


# ----------------------------------------------------------------------
# campaigns: serial, parallel, resumed — one set of bytes
# ----------------------------------------------------------------------
def test_serial_and_parallel_sector_journals_are_byte_identical(tmp_path):
    serial = str(tmp_path / "serial.jsonl")
    result = run_sector_campaign(SMALL, journal_path=serial)
    assert not result.exhausted
    assert len(result.records) == 4

    parallel = str(tmp_path / "parallel.jsonl")
    presult = run_parallel_sector(SMALL, journal_path=parallel, workers=2)
    assert sha256(parallel) == sha256(serial)

    aggregate = aggregate_sector(result.records)
    assert aggregate == aggregate_sector(presult.records)
    assert aggregate["users"] == 400
    assert aggregate["shards_ok"] == 4
    assert aggregate["plt"]["p50"] is not None


def test_budget_stop_classifies_and_resume_completes(tmp_path):
    path = str(tmp_path / "j.jsonl")
    # Event budget covers exactly one shard: the second shard's check
    # trips before it starts, is journaled as provisional exhaustion,
    # and the campaign stops instead of crashing.
    budget = ResourceBudget(max_events=100)
    result = run_sector_campaign(SMALL, journal_path=path, budget=budget)
    assert result.exhausted
    assert len(result.records) == 2
    assert is_sector_exhaustion(result.records[-1])

    aggregate = aggregate_sector(result.records)
    assert aggregate["shards_ok"] == 1
    assert aggregate["shards_exhausted"] == 1

    resumed = run_sector_campaign(SMALL, journal_path=path, resume=True)
    assert not resumed.exhausted
    assert sum(1 for r in resumed.records if r.get("resumed")) == 1
    final = aggregate_sector(resumed.records)
    assert final["users"] == 400 and final["shards_exhausted"] == 0


def test_resume_requires_journal(tmp_path):
    with pytest.raises(ValueError):
        run_sector_campaign(SMALL, resume=True)
    with pytest.raises(FileNotFoundError):
        run_sector_campaign(SMALL, resume=True,
                            journal_path=str(tmp_path / "missing.jsonl"))


def test_graceful_stop_between_shards(tmp_path):
    calls = []

    def should_stop():
        calls.append(1)
        return len(calls) > 2
    result = run_sector_campaign(SMALL, should_stop=should_stop)
    assert result.stopped_early
    assert len(result.records) == 2


def test_shard_records_merge_to_population_quantiles():
    # Aggregating shard sketches must equal sketching the whole
    # population in one pass — the associativity contract end to end.
    config = SectorConfig(users=3000, shard_size=700, seed=1)
    result = run_sector_campaign(config)
    aggregate = aggregate_sector(result.records)

    whole = run_shard(SectorConfig(users=3000, shard_size=3000, seed=1), 0)
    assert aggregate["plt"] == whole["plt"].summary()
    assert aggregate["energy"] == whole["energy"].summary()


# ----------------------------------------------------------------------
# the headline: 10^5 users in bounded memory
# ----------------------------------------------------------------------
def test_100k_users_complete_under_a_constant_rss_ceiling(tmp_path):
    # A generous-but-real ceiling: current RSS + 256 MiB.  Streaming
    # through sketches keeps per-shard memory O(chunk); holding the
    # per-user values instead would blow through this by an order of
    # magnitude.  The budget force-samples RSS between shards, so a
    # regression fails as a classified exhaustion, not an OOM kill.
    start_rss = rss_bytes()
    assert start_rss is not None
    budget = ResourceBudget(max_rss_bytes=start_rss + (256 << 20))
    config = SectorConfig(users=100_000, shard_size=25_000, seed=0)
    path = str(tmp_path / "sector.jsonl")
    result = run_sector_campaign(config, journal_path=path, budget=budget)
    assert not result.exhausted

    aggregate = aggregate_sector(result.records)
    assert aggregate["users"] == 100_000
    assert aggregate["shards_ok"] == 4
    # Sketch state on disk is KiB per shard, not MiB of raw samples.
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            assert len(line) < 64 * 1024
            record = json.loads(line)
            assert record["summary"]["plt"]["kind"] == "metric-sketch"
