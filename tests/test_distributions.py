"""Tests for the random-variate helpers."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.distributions import (bounded_lognormal, bounded_normal,
                                     exponential, weighted_choice,
                                     zipf_weights)


class TestBoundedVariates:
    def test_normal_clamped(self):
        rng = random.Random(1)
        for _ in range(200):
            v = bounded_normal(rng, mean=0.0, std=10.0, lo=-1.0, hi=1.0)
            assert -1.0 <= v <= 1.0

    def test_lognormal_clamped_and_positive(self):
        rng = random.Random(2)
        for _ in range(200):
            v = bounded_lognormal(rng, median=0.1, sigma=1.0, lo=0.0, hi=0.5)
            assert 0.0 <= v <= 0.5

    def test_lognormal_median_roughly_respected(self):
        rng = random.Random(3)
        values = sorted(bounded_lognormal(rng, 0.1, 0.5, 0, 10)
                        for _ in range(2000))
        assert 0.08 < values[len(values) // 2] < 0.12

    def test_lognormal_invalid_median(self):
        with pytest.raises(ValueError):
            bounded_lognormal(random.Random(), 0, 1, 0, 1)

    def test_exponential_mean(self):
        rng = random.Random(4)
        values = [exponential(rng, 2.0) for _ in range(5000)]
        assert 1.8 < sum(values) / len(values) < 2.2

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            exponential(random.Random(), 0)


class TestZipf:
    def test_weights_normalised_and_decreasing(self):
        weights = zipf_weights(10)
        assert sum(weights) == pytest.approx(1.0)
        assert list(weights) == sorted(weights, reverse=True)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(5)
        picks = [weighted_choice(rng, ["a", "b"], [0.9, 0.1])
                 for _ in range(1000)]
        assert picks.count("a") > 800

    def test_validation(self):
        rng = random.Random()
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.0])


@given(st.integers(min_value=1, max_value=50),
       st.floats(min_value=0.1, max_value=2.0, allow_nan=False))
def test_property_zipf_valid_distribution(n, alpha):
    weights = zipf_weights(n, alpha)
    assert len(weights) == n
    assert all(w > 0 for w in weights)
    assert sum(weights) == pytest.approx(1.0)
