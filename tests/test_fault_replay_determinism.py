"""Fault-plan replay determinism.

A --faults spec plus a seed must be a complete description of a trial:
two fresh processes given the same pair must produce a byte-identical
fault log and summary digest.  This is what makes a journaled failure
reproducible and a resumed campaign equal to an uninterrupted one.
"""

import hashlib
import json
import subprocess
import sys
from pathlib import Path

from repro.core.analysis import summarize_run
from repro.experiments.runner import ExperimentConfig, run_experiment

FAULTS = "rst@5:2,handover@9,blackout@12:1:drop"
SRC = str(Path(__file__).resolve().parent.parent / "src")

_SCRIPT = """
import hashlib, json
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.core.analysis import summarize_run
cfg = ExperimentConfig(protocol="spdy", site_ids=[1, 2], think_time=6.0,
                       tail_time=6.0, seed=3, fault_plan={faults!r})
run = run_experiment(cfg)
print("\\n".join(run.fault_report["log"]))
blob = json.dumps(summarize_run(run), sort_keys=True, default=str)
print("summary-digest:", hashlib.sha256(blob.encode()).hexdigest())
""".format(faults=FAULTS)


def _fresh_process_output() -> str:
    # No PYTHONHASHSEED pinning: determinism must not depend on it.
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})
    return result.stdout


def test_two_fresh_processes_agree_byte_for_byte():
    assert _fresh_process_output() == _fresh_process_output()


def test_in_process_replay_is_identical():
    cfg = ExperimentConfig(site_ids=[1, 2], think_time=6.0, tail_time=6.0,
                           seed=3, fault_plan=FAULTS)
    first, second = run_experiment(cfg), run_experiment(cfg)
    assert first.fault_report["log"] == second.fault_report["log"]
    digests = [hashlib.sha256(json.dumps(summarize_run(r), sort_keys=True,
                                         default=str).encode()).hexdigest()
               for r in (first, second)]
    assert digests[0] == digests[1]


def test_replay_identical_under_strict_checks():
    # The sanitizer must be purely passive: a strict run and a checks-off
    # run of the same (spec, seed) measure the same thing.
    cfg = ExperimentConfig(site_ids=[1, 2], think_time=6.0, tail_time=6.0,
                           seed=3, fault_plan=FAULTS)
    plain = run_experiment(cfg)
    strict = run_experiment(cfg.with_overrides(checks="strict"))
    assert plain.fault_report["log"] == strict.fault_report["log"]
    assert plain.plts_by_site() == strict.plts_by_site()
