"""Unit tests for the RFC 6298 RTO estimator."""

import pytest
from hypothesis import given, strategies as st

from repro.tcp import RtoEstimator


class TestFirstSample:
    def test_initial_rto_before_any_sample(self):
        est = RtoEstimator(initial_rto=1.0)
        assert est.rto == 1.0
        assert est.srtt is None

    def test_first_sample_sets_srtt_and_var(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.2)
        assert est.srtt == pytest.approx(0.2)
        assert est.rttvar == pytest.approx(0.1)
        # RTO = SRTT + 4*RTTVAR = 0.2 + 0.4 = 0.6
        assert est.rto == pytest.approx(0.6)

    def test_min_rto_floors_the_variance_term(self):
        """Linux __tcp_set_rto: rto = srtt + max(min_rto, 4*rttvar)."""
        est = RtoEstimator(min_rto=0.2)
        est.on_rtt_sample(0.01)
        assert est.rto == pytest.approx(0.01 + 0.2)


class TestSmoothing:
    def test_steady_samples_converge(self):
        est = RtoEstimator()
        for _ in range(100):
            est.on_rtt_sample(0.25)
        assert est.srtt == pytest.approx(0.25, rel=1e-3)
        # Variance decays toward zero with constant samples ->
        # RTO -> srtt + floored variance term (Linux behaviour).
        assert est.rto == pytest.approx(0.25 + 0.2, abs=0.01)

    def test_variance_increases_rto(self):
        stable = RtoEstimator()
        jittery = RtoEstimator()
        for i in range(50):
            stable.on_rtt_sample(0.2)
            jittery.on_rtt_sample(0.1 if i % 2 else 0.4)
        assert jittery.rto > stable.rto

    def test_negative_sample_rejected(self):
        est = RtoEstimator()
        with pytest.raises(ValueError):
            est.on_rtt_sample(-0.1)


class TestBackoff:
    def test_timeout_doubles_rto(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.2)
        base = est.rto
        est.on_timeout()
        assert est.rto == pytest.approx(2 * base)
        est.on_timeout()
        assert est.rto == pytest.approx(4 * base)

    def test_backoff_capped_at_max_rto(self):
        est = RtoEstimator(max_rto=10.0)
        est.on_rtt_sample(1.0)
        for _ in range(20):
            est.on_timeout()
        assert est.rto == 10.0

    def test_fresh_sample_clears_backoff(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.2)
        est.on_timeout()
        est.on_timeout()
        est.on_rtt_sample(0.2)
        assert est.rto < 1.0


class TestIdleReset:
    """The paper's §6.2.1 remedy."""

    def test_reset_discards_estimate(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.1)
        est.reset_after_idle(3.0)
        assert est.srtt is None
        assert est.rto == 3.0
        assert est.resets == 1

    def test_reset_rto_exceeds_3g_promotion_delay(self):
        # The whole point: conservative RTO > ~2s promotion delay.
        est = RtoEstimator()
        for _ in range(20):
            est.on_rtt_sample(0.15)
        assert est.rto < 2.0          # the flaw: RTO under the promotion delay
        est.reset_after_idle(3.0)
        assert est.rto > 2.0          # the fix: RTO above it

    def test_estimate_rebuilt_after_reset(self):
        est = RtoEstimator()
        est.on_rtt_sample(0.1)
        est.reset_after_idle()
        est.on_rtt_sample(0.3)
        assert est.srtt == pytest.approx(0.3)


class TestMetricsLoad:
    def test_load_seeds_estimate(self):
        est = RtoEstimator()
        est.load(srtt=0.25, rttvar=0.05)
        assert est.srtt == pytest.approx(0.25)
        assert est.rto == pytest.approx(0.45)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RtoEstimator(initial_rto=-1)
        with pytest.raises(ValueError):
            RtoEstimator(min_rto=0.5, max_rto=0.1)


@given(samples=st.lists(st.floats(min_value=0.001, max_value=5.0,
                                  allow_nan=False), min_size=1, max_size=100))
def test_property_rto_bounded(samples):
    est = RtoEstimator(min_rto=0.2, max_rto=60.0)
    for s in samples:
        est.on_rtt_sample(s)
    assert 0.2 <= est.rto <= 60.0


@given(samples=st.lists(st.floats(min_value=0.001, max_value=5.0,
                                  allow_nan=False), min_size=2, max_size=50))
def test_property_srtt_within_sample_range(samples):
    est = RtoEstimator()
    for s in samples:
        est.on_rtt_sample(s)
    assert min(samples) <= est.srtt <= max(samples)
