"""The guard layer's primitives: budgets, the bounded ring, fault specs.

Everything here runs on injected clocks and samplers — no real time, no
real memory pressure — because the budget logic must be testable at the
exact boundary values, not "roughly when the machine gets slow".
"""

import errno
import io
import os

import pytest

from repro.guard import (BoundedRing, JournalFaultSpecError, JournalFaults,
                         ResourceBudget, ResourceExhausted,
                         journal_faults_from_env, rss_bytes)
from repro.guard.budget import DEFAULT_RSS_SAMPLE_EVERY


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# ResourceBudget
# ----------------------------------------------------------------------
def test_budget_all_none_never_trips():
    budget = ResourceBudget(clock=FakeClock(), rss_sampler=lambda: 10 ** 12)
    for _ in range(1000):
        budget.check(events=10 ** 6, journal_bytes=10 ** 9)


def test_budget_wall_clock_trips_past_ceiling():
    clock = FakeClock()
    budget = ResourceBudget(max_wall_seconds=5.0, clock=clock)
    clock.advance(5.0)
    budget.check()  # exactly at the ceiling is still within budget
    clock.advance(0.1)
    with pytest.raises(ResourceExhausted) as excinfo:
        budget.check()
    assert excinfo.value.resource == "wall-clock"
    assert "5.0s ceiling" in str(excinfo.value)


def test_budget_restart_reanchors_wall_clock():
    clock = FakeClock()
    budget = ResourceBudget(max_wall_seconds=5.0, clock=clock)
    clock.advance(10.0)
    budget.restart()
    budget.check()
    assert budget.elapsed() == 0.0


def test_budget_event_ceiling():
    budget = ResourceBudget(max_events=100, clock=FakeClock())
    budget.note_events(60)
    budget.check(events=40)  # exactly 100: not over
    with pytest.raises(ResourceExhausted) as excinfo:
        budget.check(events=1)
    assert excinfo.value.resource == "events"
    assert budget.events == 101


def test_budget_journal_bytes_ceiling():
    budget = ResourceBudget(max_journal_bytes=1024, clock=FakeClock())
    budget.note_journal_bytes(1024)
    budget.check()
    with pytest.raises(ResourceExhausted) as excinfo:
        budget.check(journal_bytes=1)
    assert excinfo.value.resource == "journal-bytes"


def test_budget_rss_sampled_first_then_every_nth():
    samples = []

    def sampler():
        samples.append(1)
        return 10  # far below ceiling

    budget = ResourceBudget(max_rss_bytes=1 << 30, clock=FakeClock(),
                            rss_sampler=sampler, rss_sample_every=4)
    for _ in range(12):
        budget.check()
    # checks 1 (first), 4, 8, 12
    assert len(samples) == 4


def test_budget_force_rss_samples_immediately():
    budget = ResourceBudget(max_rss_bytes=100, clock=FakeClock(),
                            rss_sampler=lambda: 101,
                            rss_sample_every=10 ** 6)
    with pytest.raises(ResourceExhausted) as excinfo:
        budget.check(force_rss=True)
    assert excinfo.value.resource == "rss"
    assert budget.last_rss == 101


def test_budget_unmeasurable_rss_never_trips():
    budget = ResourceBudget(max_rss_bytes=1, clock=FakeClock(),
                            rss_sampler=lambda: None)
    budget.check(force_rss=True)
    assert budget.last_rss is None


def test_budget_rejects_bad_sample_cadence():
    with pytest.raises(ValueError):
        ResourceBudget(rss_sample_every=0)


def test_from_limits_none_when_unbounded():
    assert ResourceBudget.from_limits() is None


def test_from_limits_converts_mib():
    budget = ResourceBudget.from_limits(max_rss_mb=2.5, max_journal_mb=1,
                                        max_events=7)
    assert budget.max_rss_bytes == int(2.5 * (1 << 20))
    assert budget.max_journal_bytes == 1 << 20
    assert budget.max_events == 7
    assert budget.max_wall_seconds is None
    assert ResourceBudget.from_limits(
        max_wall_seconds=3.0).max_wall_seconds == 3.0


def test_default_sample_cadence_is_sane():
    assert DEFAULT_RSS_SAMPLE_EVERY >= 1


# ----------------------------------------------------------------------
# rss_bytes
# ----------------------------------------------------------------------
def test_rss_bytes_self_is_positive():
    rss = rss_bytes()
    assert rss is not None and rss > 0


def test_rss_bytes_bogus_pid_is_none():
    pid = 4_000_000
    while os.path.exists(f"/proc/{pid}"):  # pragma: no cover - unlucky
        pid += 1
    assert rss_bytes(pid) is None


# ----------------------------------------------------------------------
# BoundedRing
# ----------------------------------------------------------------------
def test_ring_fifo_and_eviction_accounting():
    ring = BoundedRing(3)
    for item in range(5):
        ring.push(item)
    assert len(ring) == 3
    assert ring.dropped == 2
    assert ring.total_pushed == 5
    assert list(ring) == [2, 3, 4]
    assert ring.drain() == [2, 3, 4]
    assert len(ring) == 0 and not ring


def test_ring_peek_and_pop_oldest():
    ring = BoundedRing(4)
    ring.push("a")
    ring.push("b")
    assert ring.peek_oldest() == "a"
    assert ring.pop_oldest() == "a"
    assert ring.peek_oldest() == "b"
    assert bool(ring)


def test_ring_rejects_zero_capacity():
    with pytest.raises(ValueError):
        BoundedRing(0)


# ----------------------------------------------------------------------
# JournalFaults
# ----------------------------------------------------------------------
def test_fault_spec_parses_ranges_and_kinds():
    faults = JournalFaults("enospc@3-6, partial@9 ,eio@12")
    assert faults.kind_for(2) == ""
    assert faults.kind_for(3) == "enospc"
    assert faults.kind_for(6) == "enospc"
    assert faults.kind_for(7) == ""
    assert faults.kind_for(9) == "partial"
    assert faults.kind_for(12) == "eio"


@pytest.mark.parametrize("spec", [
    "", "   ", "enospc", "enospc@", "enospc@0", "enospc@5-3",
    "enospc@x", "badkind@3",
])
def test_fault_spec_parse_is_strict(spec):
    with pytest.raises(JournalFaultSpecError):
        JournalFaults(spec)


def test_fault_on_append_raises_named_errno():
    faults = JournalFaults("enospc@2,eio@3")
    faults.on_append(1, None, "line\n")  # unarmed: no-op
    with pytest.raises(OSError) as excinfo:
        faults.on_append(2, None, "line\n")
    assert excinfo.value.errno == errno.ENOSPC
    with pytest.raises(OSError) as excinfo:
        faults.on_append(3, None, "line\n")
    assert excinfo.value.errno == errno.EIO


def test_fault_partial_tears_half_the_line_through_the_handle():
    faults = JournalFaults("partial@1")
    handle = io.StringIO()
    line = '{"kind": "trial", "seed": 1}\n'
    with pytest.raises(OSError) as excinfo:
        faults.on_append(1, handle, line)
    assert excinfo.value.errno == errno.ENOSPC
    torn = handle.getvalue()
    assert torn == line[:len(line) // 2]
    assert 0 < len(torn) < len(line)


def test_fault_partial_without_handle_still_raises():
    with pytest.raises(OSError):
        JournalFaults("partial@1").on_append(1, None, "x\n")


def test_faults_from_env():
    assert journal_faults_from_env(environ={}) is None
    assert journal_faults_from_env(
        environ={"REPRO_JOURNAL_FAULTS": "  "}) is None
    faults = journal_faults_from_env(
        environ={"REPRO_JOURNAL_FAULTS": "eio@2"})
    assert faults.kind_for(2) == "eio"
    with pytest.raises(JournalFaultSpecError):
        journal_faults_from_env(environ={"REPRO_JOURNAL_FAULTS": "nope"})
