"""Must NOT trigger DET002: seeded random.Random instances only."""
import random


def jitter(rng):
    return rng.uniform(0.0, 0.1)


def make_stream(seed):
    return random.Random(f"{seed}/jitter")
