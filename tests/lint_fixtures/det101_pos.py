"""Must trigger DET101: wall-clock entropy laundered through helpers
into a simulator scheduling sink (only --deep can see the full chain)."""
import time


class Simulator:
    def run(self):
        pass

    def schedule(self, delay, callback, *args):
        pass


def _raw_entropy():
    return time.time()


def _jitter():
    return _raw_entropy() % 1.0


def arm(sim, fire):
    sim.schedule(_jitter(), fire)
