"""Must NOT trigger PERF001: hoisted locals, mutated chains, single reads."""


class Pump:
    def drain(self, packets):
        # Hoisted to a local: the loop reads the chain zero times.
        now = self.sim.now
        for packet in packets:
            packet.stamp = now
            self.log.append((now, packet))

    def track(self, packets):
        for packet in packets:
            # Single read per loop body: nothing to hoist.
            self.log.append((self.sim.now, packet))

    def retune(self, packets):
        for packet in packets:
            # A link of the chain is reassigned in the loop, so the
            # repeated read may legitimately see a fresh value.
            if packet.urgent:
                self.sim = packet.owner_sim
            packet.stamp = self.sim.now
            self.log.append((self.sim.now, packet))

    def shallow(self, packets):
        for packet in packets:
            # Depth-1 reads (`self.count`) are one lookup; not flagged.
            self.count = self.count + packet.size
