"""Must NOT trigger UNIT002: conversions erase the unit."""


def budget(window_bytes, sent_bits):
    return window_bytes - sent_bits // 8


def throughput(total_bytes, other_bytes):
    return total_bytes + other_bytes
