"""Must NOT trigger DET006: ids derived from the run seed."""
import zlib


def conn_id(seed, n):
    return zlib.crc32(f"{seed}/{n}".encode())
