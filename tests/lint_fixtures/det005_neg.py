"""Must NOT trigger DET005: the None-default idiom."""


def visit(page, seen=None):
    if seen is None:
        seen = []
    seen.append(page)
    return seen


def label(kind, suffix=""):
    return kind + suffix
