"""Must trigger UNIT002: bytes vs bits and kbps vs mbps mixed raw."""


def budget(window_bytes, sent_bits):
    return window_bytes - sent_bits


def saturated(rate_kbps, capacity_mbps):
    return rate_kbps >= capacity_mbps
