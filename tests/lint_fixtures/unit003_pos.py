"""Must trigger UNIT003: exact == on a float-computed time."""


def check(t_end, t_start, rtt_s):
    assert t_end == t_start + 3 * rtt_s
