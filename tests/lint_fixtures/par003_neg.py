"""Must not trigger PAR003: the payload is truncated before send(), so
the write stays below PIPE_BUF and remains atomic."""


def report(status, kind, extra):
    status.send((kind, extra[:400]))
