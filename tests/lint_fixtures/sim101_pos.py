"""Must trigger SIM101: a scheduled callback reaches blocking I/O two
call hops down — invisible to the per-file SIM001 scope check."""
import time


class Simulator:
    def run(self):
        pass

    def schedule(self, delay, callback, *args):
        pass


def _flush():
    time.sleep(0.1)


def on_fire():
    _flush()


def arm(sim):
    sim.schedule(1.0, on_fire)
