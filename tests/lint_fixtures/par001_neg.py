"""Must not trigger PAR001: the scratch dict is worker-only — the
supervisor side never touches it, so there is no shared-state race."""

_LOCAL_SCRATCH = {}


def worker_main(tasks):
    _LOCAL_SCRATCH["last"] = tasks


class ShadowSupervisor:
    def drain(self):
        return None
