"""Must trigger DET003: builtin hash() on a string."""


def bucket(domain):
    return hash(domain) % 97
