"""Must trigger DET004: iterating sets and .keys() views."""


def close_all(active):
    for conn in set(active):
        conn.close()


def digest(d):
    return [k for k in d.keys()]
