"""Must not trigger UNIT101: multiplication is the explicit-conversion
idiom and erases the unit before the call edge."""


def wait(delay_ms):
    return delay_ms


def arm(rto_s):
    wait(rto_s * 1000.0)
