"""Must NOT trigger UNIT001: explicit conversion or matching units."""


def deadline(promotion_delay_ms, rtt_s):
    return promotion_delay_ms / 1000.0 + rtt_s


def total(first_s, second_s):
    return first_s + second_s
