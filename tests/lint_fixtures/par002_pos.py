"""Must trigger PAR002: worker-side mutation of a fork-inherited module
global — invisible to the supervisor and to sibling workers."""

_SEEN = set()


def worker_main(tasks):
    for task in tasks:
        _SEEN.add(task)
