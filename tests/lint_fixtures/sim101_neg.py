"""Must not trigger SIM101: the blocking call lives in a helper that is
never reachable from Simulator.run dispatch."""
import time


class Simulator:
    def run(self):
        pass

    def schedule(self, delay, callback, *args):
        pass


def on_fire():
    pass


def _offline_tool():
    time.sleep(0.1)


def arm(sim):
    sim.schedule(1.0, on_fire)
