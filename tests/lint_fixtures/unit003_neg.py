"""Must NOT trigger UNIT003: approx comparison / assignment-exact =="""
import pytest


def check(t_end, t_start, rtt_s):
    assert t_end == pytest.approx(t_start + 3 * rtt_s)


def exact(sim):
    return sim.now == 5.5
