"""Must not trigger DET101: a deterministic delay through the same
helper shape carries no entropy into the sink."""


class Simulator:
    def run(self):
        pass

    def schedule(self, delay, callback, *args):
        pass


def _base_delay():
    return 0.25


def _jitter():
    return _base_delay() * 2.0


def arm(sim, fire):
    sim.schedule(_jitter(), fire)
