"""Must trigger DET006: ambient entropy for identifiers."""
import os
import uuid


def conn_id():
    return uuid.uuid4().hex


def nonce():
    return os.urandom(8)
