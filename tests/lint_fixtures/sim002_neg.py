"""Must NOT trigger SIM002: zero and variable delays are legal."""


def kick(sim, cb, delay):
    sim.schedule(0.0, cb)
    sim.schedule(delay, cb)
