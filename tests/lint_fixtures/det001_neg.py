"""Must NOT trigger DET001: only the simulated clock is read."""


def stamp(sim, events):
    events.append(sim.now)


def format_time(t_s):
    return f"{t_s:.3f}s"
