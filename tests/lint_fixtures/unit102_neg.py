"""Must not trigger UNIT102: the explicit *8 conversion erases the unit
before the value crosses the call edge."""


def enqueue(size_bits):
    return size_bits


def push(payload_bytes):
    enqueue(payload_bytes * 8)
