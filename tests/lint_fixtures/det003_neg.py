"""Must NOT trigger DET003: stable digests and dunder definitions."""
import zlib


def bucket(domain):
    return zlib.crc32(domain.encode()) % 97


class Key:
    def __hash__(self):
        return 7
