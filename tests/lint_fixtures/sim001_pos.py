"""Must trigger SIM001: real-world blocking inside sim code."""
import time


def on_timeout(conn):
    time.sleep(conn.rto)
    conn.retransmit()
