"""Must trigger SIM002: negative literal delay."""


def kick(sim, cb):
    sim.schedule(-0.1, cb)
