"""Must trigger MEM001: per-trial accumulation inside a loop reachable
from a campaign entry point holds the whole population in memory."""


def run_trial(config):
    return {"config": config}


def collect(configs):
    records = []
    for config in configs:
        records.append(run_trial(config))
    return records


def run_campaign(configs):
    return collect(configs)
