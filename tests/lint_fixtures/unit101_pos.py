"""Must trigger UNIT101: a seconds value crosses a call edge into a
milliseconds parameter — the interprocedural version of UNIT001."""


def wait(delay_ms):
    return delay_ms


def arm(rto_s):
    wait(rto_s)
