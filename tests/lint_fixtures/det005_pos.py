"""Must trigger DET005: mutable defaults shared across calls."""


def visit(page, seen=[]):
    seen.append(page)
    return seen


def tally(name, counts={}):
    counts[name] = counts.get(name, 0) + 1
    return counts
