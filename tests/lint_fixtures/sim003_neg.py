"""Must NOT trigger SIM003: reads are fine; writes go via the API."""


def throttle(conn):
    conn.controller.on_loss()


def read_only(conn):
    return conn.cwnd
