"""Must NOT trigger DET004: sorted() pins the order."""


def close_all(active):
    for conn in sorted(set(active)):
        conn.close()


def pairs(d):
    return list(d.items())
