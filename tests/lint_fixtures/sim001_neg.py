"""Must NOT trigger SIM001: delay modelled on the simulated clock."""


def on_timeout(sim, conn):
    sim.schedule(conn.rto, conn.retransmit)
