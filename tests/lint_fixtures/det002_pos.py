"""Must trigger DET002: module-level random.* draws."""
import random


def jitter():
    return random.uniform(0.0, 0.1)
