"""Must trigger PERF001: repeated attribute-chain reads in hot loops."""


class Pump:
    def drain(self, packets):
        for packet in packets:
            # self.sim.now read twice per iteration, never rebound.
            packet.stamp = self.sim.now
            self.log.append((self.sim.now, packet))

    def flush(self, queue):
        while queue:
            item = queue.pop()
            self.link.dst.receive(item)
            self.link.dst.flush()
