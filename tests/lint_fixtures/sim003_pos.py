"""Must trigger SIM003: congestion state mutated outside tcp/."""


def throttle(conn):
    conn.cwnd = 1.0
    conn.ssthresh = 2.0
