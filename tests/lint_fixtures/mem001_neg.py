"""Must not trigger MEM001: the campaign loop streams through a
constructor-typed receiver (bounded by design), and the list-growing
helper is never reachable from a campaign entry point."""


class MetricSketch:
    def add(self, value):
        pass


def run_campaign(configs):
    trials = MetricSketch()
    for config in configs:
        trials.add(config)
    return trials


def offline_tool(items):
    records = []
    for item in items:
        records.append(item)
    return records
