"""Must not trigger PAR002: the worker mutates only its own local set."""


def worker_main(tasks):
    seen = set()
    for task in tasks:
        seen.add(task)
    return seen
