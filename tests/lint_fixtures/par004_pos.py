"""Must trigger PAR004: a handle opened at module level (pre-fork) is
written by worker-side code — parent and child share one file offset."""

_LOG = open("campaign.log", "a")


def worker_main(tasks):
    _LOG.write("worker started\n")
