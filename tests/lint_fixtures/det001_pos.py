"""Must trigger DET001: wall-clock reads in simulator code."""
import time
from datetime import datetime


def stamp(events):
    start = time.time()
    events.append((start, datetime.now()))
