"""Must trigger UNIT102: bytes passed into a bits parameter — a silent
8x in the byte accounting, one stack frame away from UNIT002."""


def enqueue(size_bits):
    return size_bits


def push(payload_bytes):
    enqueue(payload_bytes)
