"""Must not trigger PAR004: the worker opens its own handle after the
fork, so no file offset is shared with the parent."""


def worker_main(tasks):
    with open("campaign.log", "a") as log:
        log.write("worker started\n")
