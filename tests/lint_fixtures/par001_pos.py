"""Must trigger PAR001: module-level mutable state reachable from both
worker_main and a Supervisor method, with a worker-side mutation."""

_SHARED_CACHE = {}


def worker_main(tasks):
    _SHARED_CACHE["last"] = tasks


class ShadowSupervisor:
    def drain(self):
        return _SHARED_CACHE.get("last")
