"""Must trigger UNIT001: seconds and milliseconds mixed raw."""


def deadline(promotion_delay_ms, rtt_s):
    return promotion_delay_ms + rtt_s


def overdue(elapsed_s, budget_ms):
    return elapsed_s > budget_ms
