"""Must trigger PAR003: an untruncated f-string payload on a status
pipe can exceed PIPE_BUF and lose write atomicity."""


def report(status, kind, exc):
    status.send((kind, f"worker failed: {exc}"))
