"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, _parse_sites, main


class TestParseSites:
    def test_single(self):
        assert _parse_sites("5") == [5]

    def test_list(self):
        assert _parse_sites("5,9,12") == [5, 9, 12]

    def test_range(self):
        assert _parse_sites("3-6") == [3, 4, 5, 6]

    def test_mixed(self):
        assert _parse_sites("1,3-5,9") == [1, 3, 4, 5, 9]

    def test_empty(self):
        assert _parse_sites(None) is None
        assert _parse_sites("") is None


class TestCommands:
    def test_run_command(self, capsys):
        rc = main(["run", "--protocol", "http", "--network", "wifi",
                   "--sites", "9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "http over wifi" in out
        assert "median_plt" in out

    def test_study_command(self, capsys):
        rc = main(["study", "--network", "wifi", "--sites", "9",
                   "--runs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict" in out

    def test_unknown_figure(self, capsys):
        rc = main(["figure", "fig99"])
        assert rc == 2

    def test_figure_table1(self, capsys):
        rc = main(["figure", "table1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1" in out

    def test_all_figures_registered(self):
        for name in ("fig03", "fig14", "fig17", "table2", "sec621"):
            assert name in FIGURES


class TestChaosCommand:
    def test_chaos_smoke(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        rc = main(["chaos", "--trials", "3", "--master-seed", "7",
                   "--no-determinism", "--journal", str(journal)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos campaign: trials=3" in out
        assert journal.exists()

    def test_chaos_resume(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        main(["chaos", "--trials", "3", "--master-seed", "7",
              "--no-determinism", "--journal", str(journal)])
        rc = main(["chaos", "--trials", "3", "--master-seed", "7",
                   "--no-determinism", "--resume", str(journal)])
        assert rc == 0
        assert "resumed=3" in capsys.readouterr().out

    def test_chaos_replay_corpus_entry(self, capsys):
        import glob
        entry = sorted(glob.glob("tests/chaos_corpus/pass-*.json"))[0]
        rc = main(["chaos", "--replay", entry])
        assert rc == 0
        out = capsys.readouterr().out
        assert "expected pass, got pass" in out

    def test_chaos_replay_journal_line(self, tmp_path, capsys):
        # A journaled failure record replays from its JSON line alone.
        import json

        from repro.chaos import ScenarioGenerator
        scenario = ScenarioGenerator(master_seed=7).scenario(0)
        record = {"kind": "chaos-trial", "status": "failed",
                  "master_seed": 7, "seed": scenario.seed,
                  "faults": scenario.faults,
                  "scenario": scenario.to_dict(),
                  "failure": {"status": "exception"}}
        rc = main(["chaos", "--replay", json.dumps(record),
                   "--no-determinism"])
        # scenario actually passes, so the replay reports a mismatch
        assert rc == 1
        assert "DID NOT MATCH" in capsys.readouterr().out

    def test_chaos_replay_missing_file(self, capsys):
        rc = main(["chaos", "--replay", "does/not/exist.json"])
        assert rc == 2

    def test_chaos_replay_unknown_corpus_field_exits_2(self, tmp_path,
                                                       capsys):
        import json
        entry = {"schema": 1, "expected_failure": "pass",
                 "error_type": None, "message": "",
                 "scenario": {"seed": 1, "faults": None,
                              "config": {}, "tcp": {}},
                 "master_seed": 0, "trial_index": 0, "shrink": {},
                 "note": "", "quantum_field": True}
        path = tmp_path / "entry.json"
        path.write_text(json.dumps(entry))
        rc = main(["chaos", "--replay", str(path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "quantum_field" in err and str(path) in err

    def test_chaos_replay_unknown_fault_kind_exits_2(self, tmp_path,
                                                     capsys):
        import json
        entry = {"schema": 1, "expected_failure": "pass",
                 "error_type": None, "message": "",
                 "scenario": {"seed": 1, "faults": "wormhole@2:1",
                              "config": {}, "tcp": {}},
                 "master_seed": 0, "trial_index": 0, "shrink": {},
                 "note": ""}
        path = tmp_path / "entry.json"
        path.write_text(json.dumps(entry))
        rc = main(["chaos", "--replay", str(path)])
        assert rc == 2
        assert "wormhole" in capsys.readouterr().err

    def test_chaos_differential_smoke(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        rc = main(["chaos", "--differential", "--trials", "2",
                   "--master-seed", "7", "--journal", str(journal)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos campaign: trials=2" in out
        assert journal.exists()


class TestDiffCommand:
    def test_diff_relation_holds(self, capsys):
        rc = main(["diff", "cc-bytes", "--seed", "5",
                   "--faults", "arq@1:0.2:0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "relation holds" in out
        assert "cc-bytes" in out

    def test_diff_unknown_relation_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["diff", "teleport"])

    def test_diff_scenario_file(self, tmp_path, capsys):
        import json
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(
            {"seed": 3, "faults": "delayspike@2:1",
             "config": {}, "tcp": {}}))
        rc = main(["diff", "frto", "--scenario", str(path)])
        assert rc == 0
        assert "relation holds" in capsys.readouterr().out

    def test_diff_bad_scenario_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        rc = main(["diff", "cc-bytes", "--scenario", str(path)])
        assert rc == 2
