"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, _parse_sites, main


class TestParseSites:
    def test_single(self):
        assert _parse_sites("5") == [5]

    def test_list(self):
        assert _parse_sites("5,9,12") == [5, 9, 12]

    def test_range(self):
        assert _parse_sites("3-6") == [3, 4, 5, 6]

    def test_mixed(self):
        assert _parse_sites("1,3-5,9") == [1, 3, 4, 5, 9]

    def test_empty(self):
        assert _parse_sites(None) is None
        assert _parse_sites("") is None


class TestCommands:
    def test_run_command(self, capsys):
        rc = main(["run", "--protocol", "http", "--network", "wifi",
                   "--sites", "9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "http over wifi" in out
        assert "median_plt" in out

    def test_study_command(self, capsys):
        rc = main(["study", "--network", "wifi", "--sites", "9",
                   "--runs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict" in out

    def test_unknown_figure(self, capsys):
        rc = main(["figure", "fig99"])
        assert rc == 2

    def test_figure_table1(self, capsys):
        rc = main(["figure", "table1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1" in out

    def test_all_figures_registered(self):
        for name in ("fig03", "fig14", "fig17", "table2", "sec621"):
            assert name in FIGURES
