"""RSS supervision: balloon kills, reduced retries, exhaustion, exit 4.

Real-memory end-to-end coverage uses the ``REPRO_PARALLEL_BALLOON``
self-chaos hook (a worker genuinely inflates its RSS and holds it with
its heartbeat alive, so only the RSS watchdog — not the hang detector —
can object); the watchdog's decision logic itself is driven directly on
injected clocks and samplers, with no real processes or memory.
"""

import hashlib
import heapq
import os

import pytest

from repro.experiments.population import SectorConfig
from repro.parallel import (CampaignSpec, Supervisor, TrialTask,
                            run_parallel_sector)
from repro.parallel.cli import (EXIT_INCOMPLETE, EXIT_INTERRUPTED,
                                EXIT_RESOURCE, supervision_exit_code)
from repro.parallel.supervisor import _RSS_POLL
from repro.parallel.worker import _balloon_env
from repro.experiments.population import run_sector_campaign


def sha256(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


SECTOR = SectorConfig(users=300, shard_size=100, seed=5)


# ----------------------------------------------------------------------
# the balloon hook
# ----------------------------------------------------------------------
def test_balloon_env_parses_positions_sizes_and_bangs(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_BALLOON",
                       "3:64, 7!, 9:256!, junk, 12:xx, :5")
    assert _balloon_env() == {3: (64, False), 7: (128, True),
                              9: (256, True), 12: (128, False)}
    monkeypatch.delenv("REPRO_PARALLEL_BALLOON")
    assert _balloon_env() == {}


# ----------------------------------------------------------------------
# watchdog decision logic (injected clock + sampler, no processes)
# ----------------------------------------------------------------------
class FakeProc:
    def __init__(self, pid):
        self.pid = pid
        self.exitcode = None
        self.killed = False

    def kill(self):
        self.killed = True


class FakeHandle:
    """Duck-typed _WorkerHandle: just the attrs the watchdog reads."""

    def __init__(self, wid, pid, position):
        self.wid = wid
        self.proc = FakeProc(pid)
        self.current = TrialTask(position=position, key=("trial", "d",
                                                         position))
        self.rss_killed = False
        self.timed_out = False


def make_supervisor(tmp_path, notify, rss):
    spec = CampaignSpec(mode="sector", sector=SECTOR)
    return Supervisor(spec, str(tmp_path), workers=1, max_rss_mb=64,
                      notify=notify, rss_sampler=lambda pid: rss(pid),
                      exhaust_record=lambda position, message: {
                          "kind": "trial", "seed": position,
                          "status": "failed",
                          "failure": {"kind": "resource-exhaustion",
                                      "message": message}},
                      clock=lambda: 0.0, sleep=lambda seconds: None)


def test_check_rss_kills_only_over_ceiling_and_throttles(tmp_path):
    messages = []
    rss_by_pid = {101: 65 << 20, 102: 10 << 20}
    samples = []

    def sampler(pid):
        samples.append(pid)
        return rss_by_pid[pid]

    supervisor = make_supervisor(tmp_path, messages.append, sampler)
    fat, thin = FakeHandle(0, 101, 0), FakeHandle(1, 102, 1)
    supervisor._handles = {0: fat, 1: thin}

    supervisor._check_rss(now=10.0)
    assert fat.rss_killed and fat.proc.killed
    assert not thin.rss_killed and not thin.proc.killed
    assert supervisor.stats.rss_kills == 1
    assert any("over RSS ceiling" in m for m in messages)

    # Within the poll interval nothing is sampled again.
    before = len(samples)
    supervisor._check_rss(now=10.0 + _RSS_POLL / 2)
    assert len(samples) == before
    supervisor._check_rss(now=10.0 + _RSS_POLL * 1.5)
    assert len(samples) > before


def test_check_rss_skips_idle_dead_and_unmeasurable_workers(tmp_path):
    supervisor = make_supervisor(tmp_path, lambda m: None,
                                 lambda pid: None)
    idle = FakeHandle(0, 101, 0)
    idle.current = None
    dead = FakeHandle(1, 102, 1)
    dead.proc.exitcode = -9
    unmeasurable = FakeHandle(2, 103, 2)
    supervisor._handles = {0: idle, 1: dead, 2: unmeasurable}
    supervisor._check_rss(now=10.0)
    assert supervisor.stats.rss_kills == 0
    assert not any(h.proc.killed for h in supervisor._handles.values())


def test_first_rss_kill_requeues_reduced_without_burning_a_retry(tmp_path):
    supervisor = make_supervisor(tmp_path, lambda m: None,
                                 lambda pid: None)
    supervisor._draining = True  # keep _check_liveness from respawning
    handle = FakeHandle(0, 101, 0)
    handle.rss_killed = True
    handle.proc.exitcode = -9
    supervisor._handles = {0: handle}
    pending, outstanding = [], {0}
    supervisor._check_liveness(5.0, pending, outstanding)
    assert len(pending) == 1
    _, _, task = heapq.heappop(pending)
    assert task.reduced and task.attempt == 0
    assert task.not_before == 5.0
    assert 0 in outstanding
    assert supervisor.stats.exhausted == 0


def test_second_rss_kill_journals_provisional_exhaustion(tmp_path):
    supervisor = make_supervisor(tmp_path, lambda m: None,
                                 lambda pid: None)
    handle = FakeHandle(0, 101, 0)
    handle.rss_killed = True
    handle.proc.exitcode = -9
    handle.current.reduced = True  # already had its reduced retry
    supervisor._handles = {0: handle}
    pending, outstanding = [], {0}
    supervisor._check_liveness(5.0, pending, outstanding)
    assert pending == []
    assert outstanding == set()
    assert supervisor.stats.exhausted == 1
    supervisor._own_journal.close()
    records = supervisor._own_journal.load()
    assert len(records) == 1
    assert records[0]["failure"]["kind"] == "resource-exhaustion"
    # The record landed in a worker-glob journal so merge/resume see it.
    assert os.path.basename(supervisor._own_journal.path).startswith(
        "worker-")


def test_double_kill_without_record_builder_counts_lost(tmp_path):
    supervisor = make_supervisor(tmp_path, lambda m: None,
                                 lambda pid: None)
    supervisor.exhaust_record = None
    task = TrialTask(position=3, key=("trial", "d", 3), reduced=True)
    outstanding = {3}
    supervisor._exhaust(task, outstanding)
    assert supervisor.stats.lost == 1
    assert supervisor.lost_tasks == [task]


# ----------------------------------------------------------------------
# exit-code contract
# ----------------------------------------------------------------------
class StubResult:
    def __init__(self, parallel=None, stopped_early=False, exhausted=False,
                 failed_count=0, exhausted_count=0):
        self.parallel = parallel or {}
        self.stopped_early = stopped_early
        self.exhausted = exhausted
        self.failed_count = failed_count
        self.exhausted_count = exhausted_count


def test_supervision_exit_code_precedence():
    assert supervision_exit_code(StubResult(), 0) == 0
    assert supervision_exit_code(StubResult(), 2) == 1
    assert supervision_exit_code(
        StubResult(stopped_early=True), 0) == EXIT_INCOMPLETE
    assert supervision_exit_code(
        StubResult(parallel={"lost": 1}), 0) == EXIT_INCOMPLETE
    assert supervision_exit_code(
        StubResult(parallel={"exhausted": 1, "lost": 1}),
        3) == EXIT_RESOURCE
    assert supervision_exit_code(
        StubResult(exhausted=True, stopped_early=True), 0) == EXIT_RESOURCE
    assert supervision_exit_code(
        StubResult(parallel={"drained": True, "exhausted": 1}),
        5) == EXIT_INTERRUPTED


def test_serial_exit_code_precedence(capsys):
    from repro.cli import _serial_exit_code
    assert _serial_exit_code(StubResult(), None) == 0
    assert _serial_exit_code(StubResult(failed_count=2), None) == 1
    assert _serial_exit_code(
        StubResult(exhausted=True, failed_count=2), "j.jsonl") == 4
    assert _serial_exit_code(StubResult(exhausted_count=1), None) == 4
    assert _serial_exit_code(
        StubResult(stopped_early=True, exhausted=True), "j.jsonl") == 130
    err = capsys.readouterr().err
    assert "resume with --resume j.jsonl" in err


# ----------------------------------------------------------------------
# end to end with real memory pressure
# ----------------------------------------------------------------------
def test_rss_kill_then_reduced_retry_succeeds_byte_identical(
        tmp_path, monkeypatch):
    serial = str(tmp_path / "serial.jsonl")
    monkeypatch.delenv("REPRO_PARALLEL_BALLOON", raising=False)
    run_sector_campaign(SECTOR, journal_path=serial)

    # Shard 0's first attempt balloons to 256 MiB (full scale only):
    # the watchdog kills it, the reduced retry runs clean, and the
    # journal still converges to the serial bytes.
    monkeypatch.setenv("REPRO_PARALLEL_BALLOON", "0:256")
    parallel = str(tmp_path / "parallel.jsonl")
    messages = []
    result = run_parallel_sector(SECTOR, journal_path=parallel, workers=2,
                                 max_rss_mb=128, notify=messages.append)
    assert result.parallel["rss_kills"] >= 1
    assert result.parallel["exhausted"] == 0
    assert not result.exhausted
    assert any("reduced scale" in m for m in messages)
    assert sha256(parallel) == sha256(serial)
    assert supervision_exit_code(result, 0) == 0


def test_double_rss_kill_classifies_exit_4_then_resumes(
        tmp_path, monkeypatch):
    serial = str(tmp_path / "serial.jsonl")
    monkeypatch.delenv("REPRO_PARALLEL_BALLOON", raising=False)
    run_sector_campaign(SECTOR, journal_path=serial)

    # The "!" balloon inflates on the reduced retry too: two kills,
    # provisional exhaustion record, exit 4 — never an unclassified
    # crash.
    monkeypatch.setenv("REPRO_PARALLEL_BALLOON", "0:256!")
    journal = str(tmp_path / "parallel.jsonl")
    result = run_parallel_sector(SECTOR, journal_path=journal, workers=2,
                                 max_rss_mb=128)
    assert result.parallel["rss_kills"] == 2
    assert result.parallel["exhausted"] == 1
    assert result.exhausted
    failures = [r for r in result.records
                if r.get("status") == "failed"]
    assert len(failures) == 1
    assert failures[0]["failure"]["kind"] == "resource-exhaustion"
    assert supervision_exit_code(result, len(failures)) == EXIT_RESOURCE

    # On a "bigger box" (no balloon) resume re-runs only the exhausted
    # shard; the real record supersedes the provisional one and the
    # journal converges to the healthy campaign's bytes.
    monkeypatch.delenv("REPRO_PARALLEL_BALLOON")
    resumed = run_parallel_sector(SECTOR, journal_path=journal,
                                  resume=True, workers=2, max_rss_mb=128)
    assert not resumed.exhausted
    assert sum(1 for r in resumed.records if r.get("resumed")) == 2
    assert sha256(journal) == sha256(serial)
    assert supervision_exit_code(resumed, 0) == 0


def test_rss_watchdog_disarmed_without_ceiling(tmp_path, monkeypatch):
    # No --max-rss-mb: the balloon inflates and nothing objects.
    monkeypatch.setenv("REPRO_PARALLEL_BALLOON", "0:64")
    result = run_parallel_sector(SECTOR,
                                 journal_path=str(tmp_path / "j.jsonl"),
                                 workers=2)
    assert result.parallel["rss_kills"] == 0
    assert len(result.records) == 3
