"""Unit tests for the browser page-load engine (with a fake fetcher)."""

import pytest

from repro.browser import Browser, BrowserConfig
from repro.sim import Simulator
from repro.web import WebObject, WebPage
from repro.web.resources import BackgroundTransfer


class FakeFetcher:
    """Instant (or scripted-delay) fetcher; records every task."""

    name = "fake"

    def __init__(self, sim, delay=0.1, per_task_delay=None):
        self.sim = sim
        self.delay = delay
        self.per_task_delay = per_task_delay or {}
        self.tasks = []

    def fetch(self, task):
        self.tasks.append(task)
        delay = self.per_task_delay.get(task.key, self.delay)
        task._fire("on_write_start", self.sim.now)
        self.sim.schedule(0.001, task._fire, "on_sent", self.sim.now + 0.001)
        self.sim.schedule(delay / 2,
                          task._fire, "on_first_byte", self.sim.now + delay / 2)
        self.sim.schedule(delay, task._fire, "on_complete",
                          self.sim.now + delay)


def simple_page(background=None):
    main = WebObject("m", "d0", "/", 5000, "html", children=["js1", "img1"],
                     processing_delay=0.05)
    js = WebObject("js1", "d0", "/a.js", 2000, "js", children=["img2"],
                   processing_delay=0.02)
    img1 = WebObject("img1", "d1", "/1.jpg", 3000, "image")
    img2 = WebObject("img2", "d1", "/2.jpg", 4000, "image")
    return WebPage(1, "simple", "Test",
                   {o.object_id: o for o in (main, js, img1, img2)}, "m",
                   background=background)


class TestPageLoad:
    def test_loads_all_objects_and_fires_onload(self):
        sim = Simulator()
        fetcher = FakeFetcher(sim)
        browser = Browser(sim, fetcher)
        loaded = []
        record = browser.load_page(simple_page(), on_load=loaded.append)
        sim.run()
        assert loaded == [record]
        assert record.plt is not None
        assert len(record.objects) == 4
        assert all(t.complete for t in record.objects)

    def test_dependency_gating(self):
        """img2 is only discovered after js1 downloads AND processes."""
        sim = Simulator()
        fetcher = FakeFetcher(sim, delay=0.1)
        browser = Browser(sim, fetcher)
        record = browser.load_page(simple_page())
        sim.run()
        timings = {t.key: t for t in record.objects}
        js_processed = timings["js1"].processed_at
        assert timings["img2"].discovered_at >= js_processed

    def test_plt_includes_processing(self):
        sim = Simulator()
        fetcher = FakeFetcher(sim, delay=0.1)
        browser = Browser(sim, fetcher)
        record = browser.load_page(simple_page())
        sim.run()
        # main: 0.1 dl + 0.05 parse; js: 0.1 + 0.02; img2: 0.1
        assert record.plt >= 0.1 + 0.05 + 0.1 + 0.02 + 0.1 - 1e-6

    def test_sequential_processing_of_blocking_objects(self):
        """Two scripts discovered together process one after the other."""
        sim = Simulator()
        main = WebObject("m", "d", "/", 1000, "html",
                         children=["a", "b"], processing_delay=0.01)
        a = WebObject("a", "d", "/a.js", 100, "js", processing_delay=0.5)
        b = WebObject("b", "d", "/b.js", 100, "js", processing_delay=0.5)
        page = WebPage(2, "two-scripts", "Test",
                       {o.object_id: o for o in (main, a, b)}, "m")
        browser = Browser(sim, FakeFetcher(sim, delay=0.01))
        record = browser.load_page(page)
        sim.run()
        timings = {t.key: t for t in record.objects}
        # processing is serialized: 0.5 + 0.5, not parallel
        done = sorted([timings["a"].processed_at, timings["b"].processed_at])
        assert done[1] - done[0] >= 0.5 - 1e-9

    def test_timeout_marks_record(self):
        sim = Simulator()
        fetcher = FakeFetcher(sim, delay=999.0)  # never completes in time
        browser = Browser(sim, fetcher, BrowserConfig(load_timeout=5.0))
        fired = []
        record = browser.load_page(simple_page(), on_load=fired.append)
        sim.run(until=20.0)
        assert record.timed_out
        assert record.plt is None
        assert record.plt_or(55.0) == 55.0
        assert fired  # on_load still fires so the harness can continue

    def test_discovery_stagger_spreads_requests(self):
        sim = Simulator()
        main = WebObject("m", "d", "/", 1000, "html",
                         children=[f"i{k}" for k in range(10)],
                         processing_delay=0.01)
        objs = {"m": main}
        for k in range(10):
            objs[f"i{k}"] = WebObject(f"i{k}", "d", f"/{k}.jpg", 100, "image")
        page = WebPage(3, "imgs", "Test", objs, "m")
        browser = Browser(sim, FakeFetcher(sim, delay=0.01),
                          BrowserConfig(discovery_stagger=0.02))
        record = browser.load_page(page)
        sim.run()
        times = record.request_times()
        assert times[-1] - times[1] >= 0.02 * 8 - 1e-9


class TestBackgroundActivity:
    def test_background_scheduled_after_onload(self):
        sim = Simulator()
        background = [BackgroundTransfer(kind="beacon", start_offset=5.0)]
        fetcher = FakeFetcher(sim)
        browser = Browser(sim, fetcher)
        record = browser.load_page(simple_page(background))
        sim.run(until=30.0)
        assert len(record.background) == 1
        bg = record.background[0]
        assert bg.discovered_at >= record.onload_at + 5.0 - 1e-9
        assert not any(t.key.startswith("bg/") for t in record.objects)

    def test_background_cancelled_on_next_navigation(self):
        sim = Simulator()
        background = [BackgroundTransfer(kind="beacon", start_offset=50.0)]
        fetcher = FakeFetcher(sim)
        browser = Browser(sim, fetcher)
        first = browser.load_page(simple_page(background))
        sim.run(until=10.0)   # loaded; beacon pending at ~50s
        browser.load_page(simple_page())  # navigate away
        sim.run(until=120.0)
        assert first.background == []

    def test_background_disabled_by_config(self):
        sim = Simulator()
        background = [BackgroundTransfer(kind="beacon", start_offset=1.0)]
        browser = Browser(sim, FakeFetcher(sim),
                          BrowserConfig(background_enabled=False))
        record = browser.load_page(simple_page(background))
        sim.run(until=30.0)
        assert record.background == []

    def test_poll_carries_server_delay(self):
        sim = Simulator()
        background = [BackgroundTransfer(kind="poll", start_offset=1.0,
                                         server_delay=20.0)]
        fetcher = FakeFetcher(sim)
        browser = Browser(sim, fetcher)
        browser.load_page(simple_page(background))
        sim.run(until=30.0)
        polls = [t for t in fetcher.tasks if t.key.startswith("bg/")]
        assert polls and polls[0].server_delay == 20.0


class TestTimingRecords:
    def test_component_arithmetic(self):
        sim = Simulator()
        browser = Browser(sim, FakeFetcher(sim, delay=0.2))
        record = browser.load_page(simple_page())
        sim.run()
        for t in record.objects:
            assert t.init >= 0
            assert t.send == pytest.approx(0.001, abs=1e-6)
            assert t.wait == pytest.approx(0.099, abs=0.01)
            assert t.receive == pytest.approx(0.1, abs=0.01)
            assert t.total == pytest.approx(
                t.init + t.send + t.wait + t.receive, abs=1e-6)

    def test_mean_component(self):
        sim = Simulator()
        browser = Browser(sim, FakeFetcher(sim, delay=0.2))
        record = browser.load_page(simple_page())
        sim.run()
        assert record.mean_component("receive") == pytest.approx(0.1, abs=0.01)

    def test_request_times_sorted_relative(self):
        sim = Simulator()
        browser = Browser(sim, FakeFetcher(sim))
        record = browser.load_page(simple_page())
        sim.run()
        times = record.request_times()
        assert times == sorted(times)
        assert times[0] >= 0


class StallFetcher(FakeFetcher):
    """Black-holes the first attempt of chosen keys; completes retries."""

    def __init__(self, sim, stall_keys=(), stall_always=(), delay=0.1):
        super().__init__(sim, delay)
        self.stall_keys = set(stall_keys)
        self.stall_always = set(stall_always)
        self.cancelled = []
        self.attempts = {}

    def fetch(self, task):
        n = self.attempts.get(task.key, 0) + 1
        self.attempts[task.key] = n
        if task.key in self.stall_always or \
                (task.key in self.stall_keys and n == 1):
            self.tasks.append(task)
            return
        super().fetch(task)

    def cancel(self, key):
        self.cancelled.append(key)

    def abandon_all(self):
        self.cancelled.append("*")


class TestStallWatchdog:
    def test_watchdog_retries_stalled_object(self):
        sim = Simulator()
        fetcher = StallFetcher(sim, stall_keys=["img1"])
        browser = Browser(sim, fetcher, BrowserConfig(stall_timeout=1.0))
        record = browser.load_page(simple_page())
        sim.run(until=30.0)
        assert record.plt is not None
        assert not record.timed_out
        assert record.retries == 1
        timings = {t.key: t for t in record.objects}
        assert timings["img1"].attempts == 2
        assert "img1" in fetcher.cancelled

    def test_no_watchdog_by_default(self):
        sim = Simulator()
        fetcher = StallFetcher(sim, stall_always=["img1"])
        browser = Browser(sim, fetcher, BrowserConfig(load_timeout=5.0))
        record = browser.load_page(simple_page())
        sim.run(until=30.0)
        assert record.timed_out          # nobody retried
        assert record.retries == 0
        assert fetcher.attempts["img1"] == 1

    def test_watchdog_gives_up_after_max_retries(self):
        sim = Simulator()
        fetcher = StallFetcher(sim, stall_always=["img1"])
        browser = Browser(sim, fetcher,
                          BrowserConfig(stall_timeout=0.5, max_retries=2,
                                        load_timeout=20.0))
        record = browser.load_page(simple_page())
        sim.run(until=60.0)
        assert record.timed_out
        assert record.retries == 2
        assert fetcher.attempts["img1"] == 3  # original + 2 retries

    def test_retry_backoff_is_capped_exponential(self):
        sim = Simulator()
        fetcher = StallFetcher(sim, stall_always=["img1"])
        config = BrowserConfig(stall_timeout=1.0, max_retries=3,
                               retry_backoff_base=0.5, retry_backoff_cap=1.0,
                               load_timeout=30.0)
        browser = Browser(sim, fetcher, config)
        browser.load_page(simple_page())
        sim.run(until=60.0)
        issued = [t for t in fetcher.tasks if t.key == "img1"]
        assert len(issued) == 4
        # gaps: stall_timeout + backoff of 0.5, then 1.0 (capped), then 1.0


class TestLoadTimeoutCleanup:
    def test_timeout_abandons_outstanding_fetches(self):
        sim = Simulator()
        fetcher = StallFetcher(sim, stall_always=["img1"], delay=0.05)
        browser = Browser(sim, fetcher, BrowserConfig(load_timeout=5.0))
        record = browser.load_page(simple_page())
        sim.run(until=10.0)
        assert record.timed_out
        assert "*" in fetcher.cancelled  # abandon_all() was invoked

    def test_next_page_loads_after_timeout(self):
        sim = Simulator()
        fetcher = StallFetcher(sim, stall_always=["img1"], delay=0.05)
        browser = Browser(sim, fetcher,
                          BrowserConfig(load_timeout=5.0, stall_timeout=1.0))
        first = browser.load_page(simple_page())
        sim.run(until=10.0)
        assert first.timed_out
        assert not browser._watchdogs  # all stall timers stopped
        fetcher.stall_always.clear()
        second = browser.load_page(simple_page())
        sim.run(until=20.0)
        assert second.plt is not None
        assert not second.timed_out
