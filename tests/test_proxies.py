"""Unit tests for the HTTP proxy, SPDY proxy, upstream pool and origins."""

import pytest

from repro.net import DuplexLink, Host
from repro.proxy import HttpProxy, ProxyTrace, SpdyProxy, UpstreamPool
from repro.server import OriginFarm
from repro.sim import Simulator
from repro.tcp import TcpStack
from repro.web import (HttpRequest, HttpResponseBody, HttpResponseHead,
                       SpdyHeaderCodec, SpdyDataFrame, SpdySynReply,
                       SpdySynStream, TlsHandshakeMessage)


def build_proxy_world():
    sim = Simulator()
    client = Host(sim, "client")
    proxy = Host(sim, "proxy")
    DuplexLink(sim, client, proxy, latency=0.02,
               bandwidth_down_bps=10e6, bandwidth_up_bps=10e6)
    client_tcp = TcpStack(sim, client)
    proxy_tcp = TcpStack(sim, proxy)
    farm = OriginFarm(sim, proxy)
    upstream = UpstreamPool(sim, proxy_tcp, farm)
    trace = ProxyTrace()
    http_proxy = HttpProxy(sim, proxy_tcp, upstream, trace=trace)
    spdy_proxy = SpdyProxy(sim, proxy_tcp, upstream, trace=trace)
    return sim, client_tcp, http_proxy, spdy_proxy, upstream, farm, trace


class TestUpstreamPool:
    def test_fetch_relays_head_and_body(self):
        sim, client_tcp, _, _, upstream, farm, _ = build_proxy_world()
        got = []
        request = HttpRequest("origin-a.example", "/x", response_bytes=5000)
        upstream.fetch(request, got.append, got.append)
        sim.run(until=5.0)
        assert len(got) == 2
        assert isinstance(got[0], HttpResponseHead)
        assert isinstance(got[1], HttpResponseBody)
        assert got[1].length == 5000

    def test_connections_reused_across_fetches(self):
        sim, _, _, _, upstream, farm, _ = build_proxy_world()
        done = []
        for i in range(4):
            request = HttpRequest("origin-a.example", f"/{i}",
                                  response_bytes=1000)
            upstream.fetch(request, lambda h: None, done.append)
        sim.run(until=10.0)
        assert len(done) == 4
        assert upstream.open_connection_count() <= 4
        assert upstream.fetches_completed == 4

    def test_per_domain_cap_queues(self):
        sim, _, _, _, upstream, farm, _ = build_proxy_world()
        upstream.max_per_domain = 2
        done = []
        for i in range(6):
            request = HttpRequest("origin-b.example", f"/{i}",
                                  response_bytes=100)
            upstream.fetch(request, lambda h: None, done.append)
        sim.run(until=10.0)
        assert len(done) == 6
        assert upstream.open_connection_count() <= 2

    def test_origin_long_poll_hold(self):
        sim, _, _, _, upstream, farm, _ = build_proxy_world()
        done_at = []
        request = HttpRequest("origin-c.example", "/poll",
                              response_bytes=500, server_delay=3.0)
        upstream.fetch(request, lambda h: None,
                       lambda b: done_at.append(sim.now))
        sim.run(until=10.0)
        assert done_at and done_at[0] >= 3.0


class TestHttpProxyRelay:
    def test_end_to_end_relay(self):
        sim, client_tcp, http_proxy, _, _, _, trace = build_proxy_world()
        got = []
        conn = client_tcp.connect("proxy", 8080)
        conn.on_message = lambda c, m: got.append(m)
        request = HttpRequest("origin-a.example", "/obj",
                              response_bytes=20_000)
        conn.send_message(request, request.wire_size)
        sim.run(until=10.0)
        kinds = [type(m).__name__ for m in got]
        assert kinds == ["HttpResponseHead", "HttpResponseBody"]
        record = trace.records[0]
        assert record.complete
        assert record.origin_wait < 0.1
        assert record.response_bytes == 20_000

    def test_serial_service_per_connection(self):
        """Two requests on one connection produce ordered responses."""
        sim, client_tcp, http_proxy, _, _, _, _ = build_proxy_world()
        got = []
        conn = client_tcp.connect("proxy", 8080)
        conn.on_message = lambda c, m: got.append(m)
        for i, size in ((1, 30_000), (2, 100)):
            req = HttpRequest("origin-a.example", f"/{i}",
                              response_bytes=size)
            conn.send_message(req, req.wire_size)
        sim.run(until=10.0)
        bodies = [m for m in got if isinstance(m, HttpResponseBody)]
        assert [b.request.path for b in bodies] == ["/1", "/2"]


class TestSpdyProxy:
    def _open_session(self, sim, client_tcp):
        conn = client_tcp.connect("proxy", 8443)
        inbox = []

        def on_message(c, m):
            inbox.append(m)
            if isinstance(m, TlsHandshakeMessage) and \
                    m.stage == "server_hello_cert":
                fin = TlsHandshakeMessage("client_finished")
                c.send_message(fin, fin.wire_size)

        conn.on_message = on_message
        conn.on_established = lambda c: c.send_message(
            TlsHandshakeMessage("client_hello"),
            TlsHandshakeMessage("client_hello").wire_size)
        return conn, inbox

    def test_tls_then_stream_fetch(self):
        sim, client_tcp, _, spdy_proxy, _, _, trace = build_proxy_world()
        conn, inbox = self._open_session(sim, client_tcp)
        sim.run(until=2.0)
        stages = [m.stage for m in inbox
                  if isinstance(m, TlsHandshakeMessage)]
        assert stages == ["server_hello_cert", "server_finished"]

        codec = SpdyHeaderCodec()
        syn = SpdySynStream(1, codec, "origin-a.example", "/img",
                            priority=2, response_bytes=30_000,
                            content_type="image/jpeg")
        conn.send_message(syn, syn.wire_size)
        sim.run(until=10.0)
        replies = [m for m in inbox if isinstance(m, SpdySynReply)]
        frames = [m for m in inbox if isinstance(m, SpdyDataFrame)]
        assert len(replies) == 1
        assert sum(f.length for f in frames) == 30_000
        assert frames[-1].last
        record = [r for r in trace.records if r.protocol == "spdy"][0]
        assert record.complete

    def test_stream_before_tls_ignored(self):
        sim, client_tcp, _, spdy_proxy, _, _, _ = build_proxy_world()
        conn = client_tcp.connect("proxy", 8443)
        inbox = []
        conn.on_message = lambda c, m: inbox.append(m)
        codec = SpdyHeaderCodec()
        syn = SpdySynStream(1, codec, "origin-a.example", "/x",
                            response_bytes=100)
        conn.on_established = lambda c: c.send_message(syn, syn.wire_size)
        sim.run(until=5.0)
        assert not any(isinstance(m, SpdyDataFrame) for m in inbox)

    def test_priorities_order_responses(self):
        sim, client_tcp, _, spdy_proxy, _, _, _ = build_proxy_world()
        conn, inbox = self._open_session(sim, client_tcp)
        sim.run(until=2.0)
        codec = SpdyHeaderCodec()
        # Big low-priority stream first, then a small high-priority one.
        low = SpdySynStream(1, codec, "origin-a.example", "/big",
                            priority=3, response_bytes=500_000)
        high = SpdySynStream(3, codec, "origin-a.example", "/small",
                             priority=0, response_bytes=2_000)
        conn.send_message(low, low.wire_size)
        conn.send_message(high, high.wire_size)
        sim.run(until=20.0)
        last_frames = [m for m in inbox if isinstance(m, SpdyDataFrame)
                       and m.last]
        done_order = [f.stream_id for f in last_frames]
        assert done_order[0] == 3  # the high-priority stream finishes first
