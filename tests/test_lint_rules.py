"""Every lint rule: one must-flag and one must-not-flag fixture.

Fixtures live in tests/lint_fixtures/ as `<code>_pos.py` / `<code>_neg.py`
pairs and are discovered by filename, so a new rule without fixtures (or
fixtures without a rule) fails here rather than rotting silently.
"""

import os

import pytest

from repro.lint import lint_source, rules_by_code
from repro.lint.graph import graph_rules_by_code

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")

# Lint every fixture as if it lived in sim code so sim-scoped rules apply.
SIM_PATH = "src/repro/_lint_fixture.py"


def _codes(source: str, path: str = SIM_PATH):
    return {f.code for f in lint_source(source, path=path)}


def _read(name: str) -> str:
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as handle:
        return handle.read()


def _fixture_codes():
    codes = set()
    for name in os.listdir(FIXTURES):
        if name.endswith("_pos.py") or name.endswith("_neg.py"):
            codes.add(name.rsplit("_", 1)[0].upper())
    return codes


def test_every_rule_has_a_fixture_pair():
    # Per-file rules AND whole-program (--deep) rules: both layers need a
    # must-flag/must-not-flag pair, discovered by filename.
    expected = set(rules_by_code()) | set(graph_rules_by_code())
    assert _fixture_codes() == expected


def test_at_least_ten_rules_registered():
    assert len(rules_by_code()) >= 10


@pytest.mark.parametrize("code", sorted(rules_by_code()))
class TestRuleFixtures:
    def test_positive_fixture_is_flagged(self, code):
        findings = _codes(_read(f"{code.lower()}_pos.py"))
        assert code in findings

    def test_negative_fixture_is_clean(self, code):
        findings = _codes(_read(f"{code.lower()}_neg.py"))
        assert code not in findings


class TestRuleScoping:
    def test_sim_rules_skip_test_files(self):
        # SIM001 (blocking calls) only applies to simulator code.
        source = _read("sim001_pos.py")
        assert "SIM001" in _codes(source, path=SIM_PATH)
        assert "SIM001" not in _codes(source, path="tests/test_thing.py")
        assert "SIM001" not in _codes(source, path="benchmarks/test_fig.py")

    def test_lint_package_is_not_sim_code(self):
        source = _read("det006_pos.py")
        assert "DET006" not in _codes(source, path="src/repro/lint/rules.py")

    def test_cwnd_mutation_allowed_in_tcp_paths(self):
        source = _read("sim003_pos.py")
        assert "SIM003" in _codes(source, path="src/repro/web/spdy.py")
        assert "SIM003" not in _codes(source, path="src/repro/tcp/stack.py")
        assert "SIM003" not in _codes(source, path="tests/test_tcp_congestion.py")


class TestRuleDetails:
    """Edge cases beyond the fixture pairs."""

    def test_aliased_import_still_resolves(self):
        assert "DET001" in _codes("import time as t\nx = t.time()\n")

    def test_from_import_resolves(self):
        assert "DET001" in _codes("from time import monotonic\nx = monotonic()\n")
        assert "DET002" in _codes("from random import randint\nx = randint(1, 6)\n")

    def test_datetime_now_via_from_import(self):
        src = "from datetime import datetime\nstamp = datetime.now()\n"
        assert "DET001" in _codes(src)

    def test_method_named_time_on_object_is_not_flagged(self):
        assert "DET001" not in _codes("x = event.time()\n")

    def test_set_union_iteration_flagged(self):
        src = "for x in set(a) | set(b):\n    use(x)\n"
        assert "DET004" in _codes(src)

    def test_time_unit_mix_inside_nested_sum(self):
        src = "total = (setup_s + promo_s) + wait_ms\n"
        assert "UNIT001" in _codes(src)

    def test_multiplication_erases_units(self):
        assert "UNIT001" not in _codes("x = rate * interval_ms + budget_s\n")

    def test_jitter_and_spike_suffixes_infer_seconds(self):
        # The 3G fault knobs carry implicit seconds: arq jitter bounds
        # and delay-spike durations mix safely with _s but not _ms.
        assert "UNIT001" in _codes("t = arq_jitter + backoff_ms\n")
        assert "UNIT001" in _codes("t = delay_spike + wait_ms\n")
        assert "UNIT001" not in _codes("t = arq_jitter + delay_spike + tail_s\n")

    def test_schedule_at_negative_literal_flagged(self):
        assert "SIM002" in _codes("sim.schedule_at(-1.0, cb)\n")

    def test_rto_equality_after_arithmetic_flagged(self):
        assert "UNIT003" in _codes("assert est.rto == srtt + 4 * rttvar\n")
