"""Unit tests for Reno and CUBIC congestion control."""

import pytest
from hypothesis import given, strategies as st

from repro.tcp.congestion import (Cubic, Reno, INITIAL_SSTHRESH,
                                  make_congestion_control)


class TestFactory:
    def test_known_variants(self):
        assert isinstance(make_congestion_control("reno"), Reno)
        assert isinstance(make_congestion_control("cubic"), Cubic)
        assert isinstance(make_congestion_control("CUBIC"), Cubic)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            make_congestion_control("vegas")

    def test_initial_cwnd_applied(self):
        cc = make_congestion_control("reno", initial_cwnd=4)
        assert cc.cwnd == 4


class TestRenoSlowStart:
    def test_doubles_per_window(self):
        cc = Reno(initial_cwnd=10)
        cc.on_ack(10, now=1.0, rtt=0.1)
        assert cc.cwnd == pytest.approx(20)

    def test_growth_caps_into_congestion_avoidance(self):
        cc = Reno(initial_cwnd=10)
        cc.ssthresh = 12
        cc.on_ack(10, now=1.0, rtt=0.1)
        # 2 acks in slow start (10->12), then 8 CA increments of ~1/cwnd.
        assert 12 < cc.cwnd < 13.1


class TestRenoCongestionAvoidance:
    def test_linear_growth_one_segment_per_rtt(self):
        cc = Reno(initial_cwnd=10)
        cc.ssthresh = 5  # force CA
        start = cc.cwnd
        cc.on_ack(10, now=1.0, rtt=0.1)  # one full window of acks
        assert cc.cwnd == pytest.approx(start + 1, abs=0.1)


class TestLossReactions:
    @pytest.mark.parametrize("cls", [Reno, Cubic])
    def test_timeout_collapses_to_one(self, cls):
        cc = cls(initial_cwnd=10)
        cc.cwnd = 40
        cc.on_timeout(inflight_segments=40, now=1.0)
        assert cc.cwnd == 1.0
        assert cc.timeouts == 1

    def test_reno_timeout_halves_ssthresh(self):
        cc = Reno()
        cc.cwnd = 40
        cc.on_timeout(inflight_segments=40, now=1.0)
        assert cc.ssthresh == pytest.approx(20)

    def test_cubic_timeout_uses_beta(self):
        cc = Cubic()
        cc.cwnd = 40
        cc.on_timeout(inflight_segments=40, now=1.0)
        assert cc.ssthresh == pytest.approx(40 * Cubic.BETA)

    @pytest.mark.parametrize("cls", [Reno, Cubic])
    def test_ssthresh_floor_of_two(self, cls):
        cc = cls()
        cc.cwnd = 1
        cc.on_timeout(inflight_segments=1, now=1.0)
        assert cc.ssthresh == 2.0

    def test_fast_retransmit_sets_cwnd_to_ssthresh(self):
        cc = Reno()
        cc.cwnd = 30
        cc.on_fast_retransmit(inflight_segments=30, now=1.0)
        assert cc.ssthresh == pytest.approx(15)
        assert cc.cwnd == pytest.approx(15)
        assert cc.fast_retransmits == 1


class TestIdleRestart:
    """RFC 2861: cwnd falls back to the initial window, ssthresh untouched."""

    @pytest.mark.parametrize("cls", [Reno, Cubic])
    def test_cwnd_reset_to_initial(self, cls):
        cc = cls(initial_cwnd=10)
        cc.cwnd = 80
        cc.ssthresh = 60
        cc.on_idle_restart(now=100.0)
        assert cc.cwnd == 10
        assert cc.ssthresh == 60  # the asymmetry the paper highlights

    @pytest.mark.parametrize("cls", [Reno, Cubic])
    def test_small_cwnd_not_raised_by_restart(self, cls):
        cc = cls(initial_cwnd=10)
        cc.cwnd = 2
        cc.on_idle_restart(now=100.0)
        assert cc.cwnd == 2


class TestCubicShape:
    def _run_ca(self, cc, rtt=0.1, acks_per_rtt=None, rtts=100):
        """Simulate steady ACK clocking in congestion avoidance."""
        t = 0.0
        trajectory = []
        for _ in range(rtts):
            n = acks_per_rtt or max(1, int(cc.cwnd))
            cc.on_ack(n, now=t, rtt=rtt)
            trajectory.append(cc.cwnd)
            t += rtt
        return trajectory

    def test_concave_then_convex_after_loss(self):
        cc = Cubic(initial_cwnd=10)
        cc.cwnd = 100
        cc.ssthresh = 2  # stay in CA
        cc.on_fast_retransmit(inflight_segments=100, now=0.0)
        after_loss = cc.cwnd
        traj = self._run_ca(cc, rtt=0.05, rtts=400)
        # Recovers toward the old W_max plateau, then grows past it.
        assert traj[-1] > 100
        assert min(traj) >= after_loss * 0.9

    def test_growth_resumes_above_wmax(self):
        cc = Cubic(initial_cwnd=10)
        cc.cwnd = 50
        cc.ssthresh = 2
        cc.on_fast_retransmit(inflight_segments=50, now=0.0)
        traj = self._run_ca(cc, rtt=0.05, rtts=600)
        assert traj[-1] > 60

    def test_slow_start_identical_to_reno(self):
        cubic = Cubic(initial_cwnd=10)
        reno = Reno(initial_cwnd=10)
        cubic.on_ack(10, now=0.0, rtt=0.1)
        reno.on_ack(10, now=0.0, rtt=0.1)
        assert cubic.cwnd == reno.cwnd

    def test_fast_convergence_reduces_wmax(self):
        cc = Cubic()
        cc.cwnd = 100
        cc.ssthresh = 2
        cc.on_fast_retransmit(100, now=0.0)       # W_max = 100
        cc.cwnd = 50                               # loss again below W_max
        cc.on_fast_retransmit(50, now=1.0)
        # fast convergence: W_max < 50 (scaled by (2-beta)/2)
        assert cc._w_max == pytest.approx(50 * (2 - Cubic.BETA) / 2)


class TestCounters:
    def test_max_cwnd_tracked(self):
        cc = Reno(initial_cwnd=10)
        cc.on_ack(30, now=0.0, rtt=0.1)
        assert cc.max_cwnd_seen >= 40


@given(acks=st.lists(st.integers(min_value=1, max_value=20),
                     min_size=1, max_size=60),
       variant=st.sampled_from(["reno", "cubic"]))
def test_property_cwnd_stays_positive_and_finite(acks, variant):
    cc = make_congestion_control(variant)
    t = 0.0
    for i, n in enumerate(acks):
        cc.on_ack(n, now=t, rtt=0.1)
        if i % 7 == 3:
            cc.on_timeout(cc.cwnd, now=t)
        if i % 11 == 5:
            cc.on_fast_retransmit(cc.cwnd, now=t)
        if i % 13 == 7:
            cc.on_idle_restart(now=t)
        t += 0.1
        assert cc.cwnd >= 1.0
        assert cc.cwnd < 1e9
        assert cc.ssthresh >= 2.0
