"""Chaos campaign driver: journaling, determinism, resume, time budget,
corpus emission.  Synthetic oracles keep most of these fast; one
end-to-end test runs the real pipeline against an injected bug."""

import json

import pytest

from repro.chaos import (OracleVerdict, SearchSpace, load_corpus,
                         replay_entry, run_chaos_campaign)
from repro.faults import FaultInjector, FaultPlan
from repro.reporting import render_chaos_summary

#: One-site scenarios only: keeps the single real-simulator test cheap.
TINY_SPACE = SearchSpace(site_pools=((1,),), think_times=(3.0,),
                         tail_times=(4.0,), load_timeouts=(5.0,),
                         networks=("3g",), max_fault_events=3)


def _pass_all(scenario):
    return OracleVerdict(status="pass", run_digest="d" + str(scenario.seed))


def _fail_on_rst(scenario):
    has_rst = scenario.faults and any(
        e.kind == "rst" for e in FaultPlan.parse(scenario.faults).events)
    if has_rst:
        return OracleVerdict(status="invariant-violation",
                             error_type="InvariantViolation",
                             message="synthetic")
    return OracleVerdict(status="pass", run_digest="x")


class TestCampaignMechanics:
    def test_journals_are_deterministic(self, tmp_path):
        for name in ("a.jsonl", "b.jsonl"):
            run_chaos_campaign(trials=8, master_seed=7,
                               journal_path=str(tmp_path / name),
                               check=_pass_all)
        assert (tmp_path / "a.jsonl").read_bytes() == \
            (tmp_path / "b.jsonl").read_bytes()

    def test_records_carry_replay_context(self, tmp_path):
        result = run_chaos_campaign(trials=4, master_seed=3,
                                    journal_path=str(tmp_path / "j.jsonl"),
                                    check=_fail_on_rst)
        for record in result.records:
            assert record["kind"] == "chaos-trial"
            assert record["master_seed"] == 3
            assert record["faults"]
            assert "scenario" in record
        for record in result.failures:
            assert record["shrunk"]["faults"] is None or \
                FaultPlan.parse(record["shrunk"]["faults"])

    def test_resume_skips_completed_trials(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        first = run_chaos_campaign(trials=6, master_seed=1,
                                   journal_path=journal, check=_pass_all)
        calls = []

        def counting(scenario):
            calls.append(scenario)
            return _pass_all(scenario)

        second = run_chaos_campaign(trials=6, master_seed=1,
                                    journal_path=journal, resume=True,
                                    check=counting)
        assert calls == []
        assert second.resumed_count == 6
        assert [r["digest"] for r in second.records] == \
            [r["digest"] for r in first.records]

    def test_resume_requires_existing_journal(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_chaos_campaign(trials=2, journal_path=str(tmp_path / "no"),
                               resume=True, check=_pass_all)
        with pytest.raises(ValueError):
            run_chaos_campaign(trials=2, resume=True, check=_pass_all)

    def test_time_budget_stops_between_trials(self):
        ticks = [0.0]

        def clock():
            ticks[0] += 10.0
            return ticks[0]

        result = run_chaos_campaign(trials=50, master_seed=2,
                                    time_budget=25.0, clock=clock,
                                    check=_pass_all)
        assert result.stopped_early
        assert result.trial_count < 50

    def test_failed_trials_write_corpus_entries(self, tmp_path):
        corpus = tmp_path / "corpus"
        result = run_chaos_campaign(trials=6, master_seed=3,
                                    corpus_dir=str(corpus),
                                    check=_fail_on_rst)
        assert result.failure_count >= 1
        assert len(result.corpus_paths) == result.failure_count
        entries = load_corpus(str(corpus))
        assert len(entries) == result.failure_count
        for _, entry in entries:
            assert entry["expected_failure"] == "invariant-violation"
            assert entry["master_seed"] == 3
            assert "scenario" in entry

    def test_render_chaos_summary(self):
        result = run_chaos_campaign(trials=6, master_seed=3,
                                    check=_fail_on_rst)
        text = render_chaos_summary(result.records, ["/tmp/x.json"])
        assert "chaos campaign:" in text
        assert f"failed={result.failure_count}" in text
        if result.failure_count:
            assert "invariant-violation" in text
            assert "shrink:" in text
        assert "repro written: /tmp/x.json" in text

    def test_rejects_nonpositive_trials(self):
        with pytest.raises(ValueError):
            run_chaos_campaign(trials=0, check=_pass_all)


class TestEndToEndWithInjectedBug:
    def test_full_pipeline_catches_shrinks_and_archives(self, tmp_path,
                                                        monkeypatch):
        # Same intentional bug as test_chaos_oracles: rst corrupts a
        # link counter, tripping link.byte-conservation under strict
        # checks.  Drive the *real* campaign loop over a tiny space
        # until the generator draws an rst somewhere (master seed 6
        # draws one in four of the six trials under the 7-kind fault
        # vocabulary).
        original = FaultInjector._apply_rst

        def buggy(self, event):
            original(self, event)
            self.testbed.access.downlink.packets_accepted += 1
        monkeypatch.setattr(FaultInjector, "_apply_rst", buggy)

        corpus = tmp_path / "corpus"
        result = run_chaos_campaign(
            trials=6, master_seed=6, space=TINY_SPACE,
            determinism=False, shrink_budget=20,
            journal_path=str(tmp_path / "j.jsonl"),
            corpus_dir=str(corpus))
        assert result.failure_count >= 1
        failure = result.failures[0]
        assert failure["failure"]["status"] == "invariant-violation"
        assert failure["shrunk"]["final_events"] <= 2

        # journaled record replays from the journal line alone
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        journaled = [json.loads(line) for line in lines
                     if json.loads(line).get("status") == "failed"]
        assert journaled[0]["scenario"] == failure["scenario"]

        # with the bug fixed (monkeypatch undone), the corpus replays
        # green — the corpus contract for a fixed bug
        monkeypatch.setattr(FaultInjector, "_apply_rst", original)
        entries = load_corpus(str(corpus))
        assert entries
        verdict = replay_entry(entries[0][1], determinism=False)
        assert verdict.status == "pass"
