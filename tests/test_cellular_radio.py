"""Integration tests: radio links + TCP = the paper's core pathology."""

import pytest

from repro.cellular import AccessNetwork, three_g_profile, lte_profile, wifi_profile
from repro.cellular.rrc import UMTS_DCH, UMTS_IDLE
from repro.net import Host
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpStack


def build_access(profile, seed=0, client_cfg=None, proxy_cfg=None):
    sim = Simulator(seed=seed)
    client = Host(sim, "client")
    proxy = Host(sim, "proxy")
    access = AccessNetwork(sim, client, proxy, profile)
    client_tcp = TcpStack(sim, client, client_cfg or TcpConfig())
    proxy_tcp = TcpStack(sim, proxy, proxy_cfg or TcpConfig())
    return sim, client, proxy, access, client_tcp, proxy_tcp


class Responder:
    """Minimal server: replies with ``reply_bytes`` per request."""

    def __init__(self, reply_bytes):
        self.reply_bytes = reply_bytes
        self.conn = None

    def on_accept(self, conn):
        self.conn = conn
        conn.on_message = lambda c, obj: c.send_message(("resp", obj),
                                                        self.reply_bytes)


class TestRadioGating:
    def test_first_packet_pays_promotion_delay(self):
        profile = three_g_profile(loss_rate=0.0)
        profile = profile.with_overrides(jitter=None)
        sim, client, proxy, access, ctcp, ptcp = build_access(profile)
        responder = Responder(1000)
        ptcp.listen(80, responder.on_accept)
        conn = ctcp.connect("proxy", 80)
        established = []
        conn.on_established = lambda c: established.append(sim.now)
        sim.run(until=10.0)
        # SYN waits ~2 s for promotion, then RTT ~0.17s; the client-side
        # initial RTO (1s) fires twice meanwhile (spurious SYN rexmits).
        assert established and established[0] > 2.0
        assert access.machine.promotions >= 1

    def test_radio_stays_active_during_transfer(self):
        profile = three_g_profile(loss_rate=0.0)
        sim, client, proxy, access, ctcp, ptcp = build_access(profile)
        responder = Responder(200_000)
        ptcp.listen(80, responder.on_accept)
        conn = ctcp.connect("proxy", 80)
        got = []
        conn.on_message = lambda c, obj: got.append(obj)
        conn.on_established = lambda c: c.send_message("GET", 400)
        sim.run(until=30.0)
        assert got
        # The transfer held the radio in DCH; after it finished the
        # inactivity timers demoted DCH -> FACH -> IDLE again.
        states_seen = [s for _, s in access.machine.state_log]
        assert UMTS_DCH in states_seen
        assert access.machine.state == UMTS_IDLE
        assert access.machine.demotions >= 2

    def test_wifi_has_no_promotion(self):
        profile = wifi_profile(loss_rate=0.0)
        sim, client, proxy, access, ctcp, ptcp = build_access(profile)
        responder = Responder(1000)
        ptcp.listen(80, responder.on_accept)
        conn = ctcp.connect("proxy", 80)
        established = []
        conn.on_established = lambda c: established.append(sim.now)
        sim.run(until=5.0)
        assert access.machine is None
        assert established and established[0] < 0.2


class TestSpuriousRetransmissionMechanism:
    """The paper's §5.5: idle -> promotion delay -> spurious RTO."""

    def _run_idle_scenario(self, proxy_cfg, idle_gap=30.0, seed=0):
        """Transfer, idle past demotion, transfer again; return proxy conn."""
        profile = three_g_profile(loss_rate=0.0)
        sim, client, proxy, access, ctcp, ptcp = build_access(
            profile, seed=seed, proxy_cfg=proxy_cfg)
        responder = Responder(100_000)
        ptcp.listen(80, responder.on_accept)
        conn = ctcp.connect("proxy", 80)
        conn.on_message = lambda c, obj: None
        conn.on_established = lambda c: c.send_message("GET 1", 400)
        sim.run(until=idle_gap)
        # Radio is now IDLE (5s + 12s demotions passed); the *proxy* pushes
        # data after the idle period (periodic site beacon, Fig. 12).
        assert access.machine.state == UMTS_IDLE
        responder.conn.send_message("beacon", 20_000)
        sim.run(until=idle_gap + 20.0)
        return responder.conn, access

    def test_default_tcp_suffers_spurious_retransmissions(self):
        conn, access = self._run_idle_scenario(TcpConfig())
        assert conn.stats.spurious_retransmissions > 0
        assert conn.stats.timeout_retransmissions > 0

    def test_rtt_reset_remedy_eliminates_spurious_rto(self):
        cfg = TcpConfig(reset_rtt_after_idle=True)
        conn, access = self._run_idle_scenario(cfg)
        assert conn.stats.spurious_retransmissions == 0

    def test_spurious_rto_collapses_ssthresh(self):
        conn, _ = self._run_idle_scenario(TcpConfig())
        # ssthresh fell from "infinite" to a small value purely due to
        # the spurious timeout: the paper's key cross-layer flaw.
        assert conn.cc.ssthresh < 100

    def test_lte_reduces_but_does_not_eliminate_problem(self):
        """Figures 16-17: fewer retransmissions on LTE, not zero."""
        profile = lte_profile(loss_rate=0.0)
        sim, client, proxy, access, ctcp, ptcp = build_access(profile)
        responder = Responder(100_000)
        ptcp.listen(80, responder.on_accept)
        conn = ctcp.connect("proxy", 80)
        conn.on_message = lambda c, obj: None
        conn.on_established = lambda c: c.send_message("GET 1", 400)
        sim.run(until=30.0)
        responder.conn.send_message("beacon", 20_000)
        sim.run(until=50.0)
        lte_spurious = responder.conn.stats.spurious_retransmissions

        conn3g, _ = self._run_idle_scenario(TcpConfig())
        assert lte_spurious <= conn3g.stats.spurious_retransmissions


class TestKeepalivePreventsIdle:
    """Figure 14: continual pings keep the radio in DCH."""

    def test_ping_keeps_radio_active(self):
        profile = three_g_profile(loss_rate=0.0)
        sim, client, proxy, access, ctcp, ptcp = build_access(profile)
        responder = Responder(100_000)
        ptcp.listen(80, responder.on_accept)
        conn = ctcp.connect("proxy", 80)
        conn.on_established = lambda c: c.send_message("GET 1", 400)
        conn.on_message = lambda c, obj: None

        # Out-of-band keepalive: touch the radio every 3 seconds with a
        # payload big enough to keep it out of FACH-only service.
        def ping():
            access.machine.request_channel(1400)

        for t in range(3, 40, 3):
            sim.schedule_at(float(t), ping)
        sim.run(until=40.0)
        assert access.machine.state == UMTS_DCH

        # Proxy push after "think time" now sees an active radio.
        responder.conn.send_message("beacon", 20_000)
        before = responder.conn.stats.spurious_retransmissions
        sim.run(until=60.0)
        assert responder.conn.stats.spurious_retransmissions == before
