"""Second static pass: mypy over src/repro with the pyproject baseline.

The container used for day-to-day development may not ship mypy (it is
not a runtime dependency), so this test skips when it is absent; the CI
lint job installs mypy and runs both passes unconditionally.
"""

import os
import subprocess
import sys

import pytest

mypy = pytest.importorskip("mypy", reason="mypy not installed; CI runs it")

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))


def test_mypy_clean_on_src_repro():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro"],
        cwd=ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, (
        f"mypy found errors:\n{proc.stdout}\n{proc.stderr}")
