"""Tests for the fault-injection subsystem (repro.faults) and the
graceful-degradation paths it exercises across the stack."""

import random

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.faults import (FAULT_KINDS, FaultEvent, FaultPlan, FaultSpecError,
                          FaultInjector)
from repro.net import BernoulliLoss, GilbertElliottLoss, Host, Link, Packet
from repro.net.link import DROP_OUTAGE, LinkTap
from repro.sim import Simulator

from helpers import ClientApp, EchoApp, Topology


# ----------------------------------------------------------------------
# plan parsing
# ----------------------------------------------------------------------
class TestFaultPlanParsing:
    def test_parse_each_kind(self):
        plan = FaultPlan.parse("blackout@120:5,burstloss:0.02,handover@200,"
                               "proxyrestart@30,rst@10:2,arq@40:0.1:0.5,"
                               "delayspike@60:2")
        kinds = [e.kind for e in plan]
        assert sorted(kinds) == sorted(FAULT_KINDS)

    def test_events_sorted_by_time(self):
        plan = FaultPlan.parse("rst@30,blackout@10:5,handover@20")
        assert [e.time for e in plan] == [10.0, 20.0, 30.0]

    def test_defaults(self):
        plan = FaultPlan.parse("burstloss:0.02")
        event = plan.events[0]
        assert event.time == 0.0
        assert event.rate == 0.02
        assert event.mean_burst == 8.0
        handover = FaultPlan.parse("handover@5").events[0]
        assert handover.duration == 0.5
        rst = FaultPlan.parse("rst@5").events[0]
        assert rst.count == 1
        arq = FaultPlan.parse("arq:0.1").events[0]
        assert arq.time == 0.0
        assert arq.rate == 0.1
        assert arq.jitter == 0.2

    def test_parse_arq_and_delayspike_args(self):
        arq = FaultPlan.parse("arq@7:0.25:1.5").events[0]
        assert (arq.time, arq.rate, arq.jitter) == (7.0, 0.25, 1.5)
        spike = FaultPlan.parse("delayspike@9:3.5").events[0]
        assert (spike.time, spike.duration) == (9.0, 3.5)

    def test_blackout_policy(self):
        assert FaultPlan.parse("blackout@1:2").events[0].policy == "queue"
        assert FaultPlan.parse("blackout@1:2:drop").events[0].policy == "drop"

    def test_describe_round_trips(self):
        spec = "blackout@120:5,burstloss:0.02,handover@200"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_parse_idempotent_on_plan(self):
        plan = FaultPlan.parse("rst@3")
        assert FaultPlan.parse(plan) is plan

    @pytest.mark.parametrize("spec", [
        "bogus@1",              # unknown kind
        "blackout@5",           # missing duration
        "blackout@5:0",         # zero duration
        "blackout@5:2:park",    # unknown policy
        "burstloss:1.5",        # rate out of (0, 1)
        "burstloss:0.02:0.5",   # mean burst < 1
        "rst@5:0",              # count < 1
        "blackout@-3:5",        # negative time
        "proxyrestart@5:1",     # extra argument
        "blackout@x:5",         # non-numeric time
        "",                     # empty spec
        "@@",                   # garbage
        "arq@5",                # missing rate
        "arq:0",                # rate out of (0, 1)
        "arq:1.0",              # rate out of (0, 1)
        "arq:0.5:0",            # zero jitter
        "arq:0.5:-1",           # negative jitter
        "delayspike@3",         # missing duration
        "delayspike@3:0",       # zero duration
        "delayspike@3:-2",      # negative duration
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_event_validate_direct(self):
        with pytest.raises(FaultSpecError):
            FaultEvent("nope").validate()
        FaultEvent("rst", time=1.0).validate()  # does not raise

    @pytest.mark.parametrize("field,value", [
        ("time", float("nan")), ("time", float("inf")),
        ("duration", float("nan")), ("duration", float("inf")),
        ("rate", float("nan")), ("mean_burst", float("nan")),
        ("mean_burst", float("-inf")), ("jitter", float("nan")),
        ("jitter", float("inf")),
    ])
    def test_non_finite_fields_rejected(self, field, value):
        # NaN slides past ordered comparisons (nan < 0 is False), so
        # these used to validate; each must now fail loudly.
        base = {"kind": "blackout", "time": 1.0, "duration": 2.0,
                "rate": 0.5, "mean_burst": 8.0}
        base[field] = value
        with pytest.raises(FaultSpecError, match="finite"):
            FaultEvent(**base).validate()

    @pytest.mark.parametrize("value", [
        float("nan"), float("inf"), float("-inf"), -0.5,
    ])
    def test_arq_jitter_rejected(self, value):
        # The same NaN gap PR 5 closed for rate/mean_burst, now for the
        # RLC recovery bound: a NaN jitter would poison every arrival
        # time downstream without ever tripping an ordered comparison.
        with pytest.raises(FaultSpecError, match="finite|jitter"):
            FaultEvent("arq", rate=0.1, jitter=value).validate()

    @pytest.mark.parametrize("value", [
        float("nan"), float("inf"), float("-inf"), -1.0, 0.0,
    ])
    def test_delayspike_duration_rejected(self, value):
        with pytest.raises(FaultSpecError, match="finite|duration"):
            FaultEvent("delayspike", time=1.0, duration=value).validate()

    @pytest.mark.parametrize("spec", [
        "blackout@nan:5", "blackout@5:inf", "burstloss:nan",
        "handover@inf", "rst@nan", "arq:nan", "arq:0.5:inf",
        "delayspike@3:nan",
    ])
    def test_non_finite_specs_rejected(self, spec):
        # Non-finite times are stopped by the entry grammar (no letters
        # after '@'); non-finite args reach validate() and must be
        # rejected there.
        with pytest.raises(FaultSpecError,
                           match="finite|rate|malformed|duration"):
            FaultPlan.parse(spec)


# ----------------------------------------------------------------------
# to_spec: the exact plan -> spec -> plan round-trip the shrinker and
# chaos corpus serialization depend on
# ----------------------------------------------------------------------
class TestToSpecRoundTrip:
    def test_to_spec_round_trips_each_kind(self):
        spec = ("blackout@120:5:drop,burstloss@7:0.02:3,handover@200:1.5,"
                "proxyrestart@30,rst@10:2,arq@40:0.123:0.456,"
                "delayspike@60:2.5")
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_to_spec_is_exact_where_describe_rounds(self):
        # %g keeps 6 significant digits; to_spec must keep all of them.
        event = FaultEvent("blackout", time=1.2345678901234, duration=0.5)
        plan = FaultPlan([event])
        assert FaultPlan.parse(plan.to_spec()) == plan
        assert FaultPlan.parse(plan.to_spec()).events[0].time == event.time

    def test_empty_faults_handled_by_constructor(self):
        assert FaultPlan([]).to_spec() == ""


def _finite_time():
    from hypothesis import strategies as st
    return st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                     allow_infinity=False)


def _random_events():
    from hypothesis import strategies as st
    blackout = st.builds(
        FaultEvent, kind=st.just("blackout"), time=_finite_time(),
        duration=st.floats(min_value=1e-6, max_value=1e4,
                           allow_nan=False, allow_infinity=False),
        policy=st.sampled_from(["queue", "drop"]))
    burstloss = st.builds(
        FaultEvent, kind=st.just("burstloss"), time=_finite_time(),
        rate=st.floats(min_value=1e-9, max_value=0.999999,
                       allow_nan=False, allow_infinity=False),
        mean_burst=st.floats(min_value=1.0, max_value=1e3,
                             allow_nan=False, allow_infinity=False))
    handover = st.builds(
        FaultEvent, kind=st.just("handover"), time=_finite_time(),
        duration=st.floats(min_value=0.0, max_value=1e3,
                           allow_nan=False, allow_infinity=False))
    proxyrestart = st.builds(FaultEvent, kind=st.just("proxyrestart"),
                             time=_finite_time())
    rst = st.builds(FaultEvent, kind=st.just("rst"), time=_finite_time(),
                    count=st.integers(min_value=1, max_value=50))
    arq = st.builds(
        FaultEvent, kind=st.just("arq"), time=_finite_time(),
        rate=st.floats(min_value=1e-9, max_value=0.999999,
                       allow_nan=False, allow_infinity=False),
        jitter=st.floats(min_value=1e-6, max_value=1e3,
                         allow_nan=False, allow_infinity=False))
    delayspike = st.builds(
        FaultEvent, kind=st.just("delayspike"), time=_finite_time(),
        duration=st.floats(min_value=1e-6, max_value=1e4,
                           allow_nan=False, allow_infinity=False))
    return st.one_of(blackout, burstloss, handover, proxyrestart, rst,
                     arq, delayspike)


class TestToSpecProperty:
    def test_random_plans_round_trip(self):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=200, deadline=None)
        @given(st.lists(_random_events(), min_size=1, max_size=6))
        def check(events):
            plan = FaultPlan(events)
            assert FaultPlan.parse(plan.to_spec()) == plan

        check()


# ----------------------------------------------------------------------
# loss models
# ----------------------------------------------------------------------
class TestLossModels:
    def test_bernoulli_extremes(self):
        rng = random.Random(1)
        assert not any(BernoulliLoss(0.0).should_drop(rng)
                       for _ in range(100))
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)
        drops = sum(BernoulliLoss(0.99).should_drop(rng)
                    for _ in range(1000))
        assert drops > 950

    def test_gilbert_elliott_average_rate(self):
        model = GilbertElliottLoss.from_average(0.05, mean_burst=8.0)
        rng = random.Random(7)
        drops = sum(model.should_drop(rng) for _ in range(200_000))
        assert drops / 200_000 == pytest.approx(0.05, rel=0.15)

    def test_gilbert_elliott_is_bursty(self):
        # Mean run length of consecutive drops should be near mean_burst,
        # far above the ~1/(1-p) of a Bernoulli process at the same rate.
        model = GilbertElliottLoss.from_average(0.05, mean_burst=8.0)
        rng = random.Random(11)
        runs, current = [], 0
        for _ in range(200_000):
            if model.should_drop(rng):
                current += 1
            elif current:
                runs.append(current)
                current = 0
        mean_run = sum(runs) / len(runs)
        assert mean_run > 3.0

    def test_gilbert_elliott_deterministic_in_rng(self):
        draws = []
        for _ in range(2):
            model = GilbertElliottLoss.from_average(0.1, mean_burst=4.0)
            rng = random.Random(42)
            draws.append([model.should_drop(rng) for _ in range(1000)])
        assert draws[0] == draws[1]


# ----------------------------------------------------------------------
# link outages
# ----------------------------------------------------------------------
class _Sink(Host):
    def __init__(self, sim, address):
        super().__init__(sim, address)
        self.received = []

    def receive(self, packet):
        self.received.append((self.sim.now, packet))


def _outage_pair(sim, **kwargs):
    a = _Sink(sim, "a")
    b = _Sink(sim, "b")
    link = Link(sim, "a->b", b, **kwargs)
    a.add_route("b", link)
    return a, b, link


class TestLinkOutage:
    def test_queue_policy_parks_packets_until_outage_ends(self):
        sim = Simulator()
        a, b, link = _outage_pair(sim, latency=0.01, bandwidth_bps=1e6)
        link.start_outage(2.0)
        a.send(Packet("a", "b", 100))
        sim.run()
        assert len(b.received) == 1
        assert b.received[0][0] >= 2.0

    def test_drop_policy_discards_packets(self):
        sim = Simulator()
        a, b, link = _outage_pair(sim, latency=0.01)
        taps = []
        link.add_tap(LinkTap(lambda kind, pkt, t: taps.append(kind)))
        link.start_outage(2.0, policy="drop")
        a.send(Packet("a", "b", 100))
        sim.run()
        assert b.received == []
        assert link.outage_drops == 1
        assert DROP_OUTAGE in taps

    def test_in_flight_packets_survive_outage(self):
        sim = Simulator()
        a, b, link = _outage_pair(sim, latency=1.0)
        a.send(Packet("a", "b", 100))
        sim.schedule(0.5, link.start_outage, 5.0, "drop")
        sim.run()
        assert len(b.received) == 1  # already past the bottleneck

    def test_outage_extends_not_shrinks(self):
        sim = Simulator()
        _, _, link = _outage_pair(sim)
        end1 = link.start_outage(10.0)
        end2 = link.start_outage(1.0)
        assert end2 == end1
        assert link.outages == 2

    def test_outage_validation(self):
        sim = Simulator()
        _, _, link = _outage_pair(sim)
        with pytest.raises(ValueError):
            link.start_outage(-1.0)
        with pytest.raises(ValueError):
            link.start_outage(1.0, policy="park")

    def test_in_outage_property(self):
        sim = Simulator()
        _, _, link = _outage_pair(sim)
        assert not link.in_outage
        link.start_outage(3.0)
        assert link.in_outage


# ----------------------------------------------------------------------
# RLC ARQ recovery delay and cell-reselection delay spikes
# (arXiv:0903.4959: the radio layer recovers losses itself; TCP just
# sees extra delay — so both faults must delay, never drop.)
# ----------------------------------------------------------------------
class TestArqAndDelaySpike:
    def _conserved(self, link):
        assert link.packets_in_flight == 0 and link.bytes_in_flight == 0
        assert link.packets_accepted == link.packets_delivered + \
            link.packets_lost
        assert link.bytes_accepted == link.bytes_delivered + link.bytes_lost

    def test_arq_delays_but_never_drops(self):
        slow, fast = [], []
        for rate in (0.9, None):
            sim = Simulator()
            a, b, link = _outage_pair(sim, latency=0.01, bandwidth_bps=1e6)
            if rate is not None:
                link.enable_arq(rate, 2.0)
            for _ in range(50):
                a.send(Packet("a", "b", 500))
            sim.run()
            assert len(b.received) == 50
            assert link.packets_lost == 0
            self._conserved(link)
            (slow if rate is not None else fast).append(b.received[-1][0])
        assert slow[0] > fast[0]

    def test_arq_counts_recoveries(self):
        sim = Simulator()
        a, b, link = _outage_pair(sim, latency=0.01)
        link.enable_arq(0.999999, 1.0)
        for _ in range(10):
            a.send(Packet("a", "b", 100))
        sim.run()
        assert link.arq_recoveries == 10

    def test_arq_validation(self):
        sim = Simulator()
        _, _, link = _outage_pair(sim)
        for rate, delay in ((0.0, 1.0), (1.0, 1.0), (0.5, 0.0),
                            (0.5, -1.0)):
            with pytest.raises(ValueError):
                link.enable_arq(rate, delay)

    def test_delayspike_parks_new_packets_until_spike_ends(self):
        sim = Simulator()
        a, b, link = _outage_pair(sim, latency=0.01, bandwidth_bps=1e6)
        link.start_delay_spike(3.0)
        a.send(Packet("a", "b", 100))
        sim.run()
        assert len(b.received) == 1
        assert b.received[0][0] >= 3.0
        assert link.packets_lost == 0
        self._conserved(link)

    def test_delayspike_holds_in_flight_packets(self):
        # Unlike an outage (in-flight packets already past the
        # bottleneck still arrive), a reselection stall freezes the
        # radio path: packets mid-flight are held until the spike ends.
        sim = Simulator()
        a, b, link = _outage_pair(sim, latency=1.0)
        a.send(Packet("a", "b", 100))
        sim.schedule(0.5, link.start_delay_spike, 5.0)
        sim.run()
        assert len(b.received) == 1
        assert b.received[0][0] >= 5.5
        self._conserved(link)

    def test_delayspike_preserves_fifo_order(self):
        sim = Simulator()
        a, b, link = _outage_pair(sim, latency=0.01, bandwidth_bps=1e6)
        packets = [Packet("a", "b", 200) for _ in range(5)]
        for packet in packets:
            a.send(packet)
        sim.schedule(0.001, link.start_delay_spike, 2.0)
        sim.run()
        assert [p for _, p in b.received] == packets

    def test_delayspike_extends_not_shrinks(self):
        sim = Simulator()
        _, _, link = _outage_pair(sim)
        end1 = link.start_delay_spike(10.0)
        end2 = link.start_delay_spike(1.0)
        assert end2 == end1
        assert link.delay_spikes == 2

    def test_delayspike_validation_and_property(self):
        sim = Simulator()
        _, _, link = _outage_pair(sim)
        with pytest.raises(ValueError):
            link.start_delay_spike(0.0)
        assert not link.in_delay_spike
        link.start_delay_spike(3.0)
        assert link.in_delay_spike


# ----------------------------------------------------------------------
# TCP reset
# ----------------------------------------------------------------------
class TestConnectionReset:
    def _establish(self, topo):
        server_app = EchoApp()
        topo.server_tcp.listen(80, server_app.on_accept)
        client_app = ClientApp()
        conn = topo.client_tcp.connect("server", 80)
        client_app.attach(conn)
        topo.sim.run()
        return conn, client_app, server_app

    def test_reset_propagates_rst_to_peer(self):
        topo = Topology()
        conn, _, server_app = self._establish(topo)
        peer = server_app.connections[0]
        resets = []
        peer.on_reset = resets.append
        conn.reset(send_rst=True)
        assert conn.state == "RESET"
        topo.sim.run()
        assert peer.state == "RESET"
        assert resets == [peer]

    def test_on_close_fires_once_on_reset(self):
        topo = Topology()
        conn, client_app, _ = self._establish(topo)
        closes = []
        conn.on_close = closes.append
        conn.reset(send_rst=True)
        conn.reset(send_rst=True)  # idempotent
        topo.sim.run()
        assert closes == [conn]

    def test_send_after_reset_raises(self):
        topo = Topology()
        conn, _, _ = self._establish(topo)
        conn.reset(send_rst=True)
        with pytest.raises(Exception):
            conn.send_message("x", 100)

    def test_segments_after_reset_ignored(self):
        topo = Topology()
        conn, client_app, server_app = self._establish(topo)
        peer = server_app.connections[0]
        conn.reset(send_rst=False)  # silent local reset
        peer.send_message("slow", 5000)
        # The peer keeps retransmitting into the void, so bound the run.
        topo.sim.run(until=30.0)
        assert conn.state == "RESET"
        assert client_app.received == []
        assert peer.stats.retransmissions > 0


# ----------------------------------------------------------------------
# RRC handover
# ----------------------------------------------------------------------
class TestHandover:
    def _machine(self):
        from repro.cellular import UMTS_IDLE, UmtsRrc
        sim = Simulator()
        return sim, UmtsRrc(sim), UMTS_IDLE

    def test_force_release_drops_to_initial_state(self):
        sim, machine, idle = self._machine()
        machine.request_channel(100_000)
        sim.run(until=10.0)
        assert machine.state != idle
        machine.force_release()
        assert machine.state == idle
        assert machine.handovers == 1

    def test_force_release_cancels_pending_promotion(self):
        sim, machine, idle = self._machine()
        machine.request_channel(100_000)   # promotion in progress
        machine.force_release()
        sim.run(until=10.0)                # stale promo timer must not fire
        assert machine.state == idle
        assert not machine.promoting


# ----------------------------------------------------------------------
# injector end-to-end
# ----------------------------------------------------------------------
def _run(protocol, fault_plan, recovery=True, seed=3, site=12):
    config = ExperimentConfig(protocol=protocol, network="3g",
                              site_ids=[site], seed=seed,
                              think_time=20.0,
                              fault_plan=fault_plan, recovery=recovery)
    return run_experiment(config)


class TestInjectorEndToEnd:
    def test_no_plan_no_report(self):
        result = _run("http", None)
        assert result.fault_report is None

    def test_replay_is_deterministic(self):
        runs = [_run("spdy", "rst@3.0,blackout@6:2,handover@9")
                for _ in range(2)]
        assert runs[0].fault_report["log"] == runs[1].fault_report["log"]
        assert [(p.site_id, p.plt, p.timed_out) for p in runs[0].pages] == \
               [(p.site_id, p.plt, p.timed_out) for p in runs[1].pages]

    def test_rst_resets_a_connection(self):
        result = _run("http", "rst@3.0")
        report = result.fault_report
        assert report["counters"]["rst"] == 1
        assert report["connections_reset"] == 1
        assert len(report["log"]) == 1
        assert report["log"][0].startswith("3.000000 rst")

    def test_http_recovers_from_rst(self):
        result = _run("http", "rst@3.0")
        assert all(not p.timed_out for p in result.pages)

    def test_spdy_recovers_from_rst(self):
        result = _run("spdy", "rst@3.0")
        assert all(not p.timed_out for p in result.pages)

    def test_spdy_without_recovery_times_out(self):
        result = _run("spdy", "rst@3.0", recovery=False)
        assert any(p.timed_out for p in result.pages)

    def test_recovery_costs_time(self):
        baseline = _run("spdy", None)
        faulted = _run("spdy", "rst@3.0")
        assert faulted.pages[0].plt > baseline.pages[0].plt

    def test_blackout_survived_by_tcp_alone(self):
        result = _run("http", "blackout@3:2", recovery=False)
        assert all(not p.timed_out for p in result.pages)

    def test_proxyrestart_resets_client_facing_only(self):
        result = _run("spdy", "proxyrestart@3.0")
        report = result.fault_report
        assert report["counters"]["proxyrestart"] == 1
        assert all(not p.timed_out for p in result.pages)

    def test_burstloss_installs_models(self):
        result = _run("http", "burstloss@1:0.05")
        access = result.testbed.access
        assert isinstance(access.downlink.loss_model, GilbertElliottLoss)
        assert isinstance(access.uplink.loss_model, GilbertElliottLoss)
        assert access.downlink.loss_model is not access.uplink.loss_model

    def test_handover_demotes_radio(self):
        result = _run("http", "handover@3.0")
        assert result.testbed.radio.handovers == 1

    def test_arq_slows_page_without_losing_bytes(self):
        baseline = _run("spdy", None)
        faulted = _run("spdy", "arq@0:0.3:1.0")
        report = faulted.fault_report
        assert report["counters"]["arq"] == 1
        access = faulted.testbed.access
        assert access.downlink.arq_recoveries + \
            access.uplink.arq_recoveries > 0
        for link in (access.downlink, access.uplink):
            assert link.packets_accepted == link.packets_delivered + \
                link.packets_lost
        assert faulted.pages[0].plt > baseline.pages[0].plt
        assert all(not p.timed_out for p in faulted.pages)

    def test_delayspike_stalls_page_without_timeout(self):
        baseline = _run("http", None)
        faulted = _run("http", "delayspike@1:3")
        report = faulted.fault_report
        assert report["counters"]["delayspike"] == 1
        access = faulted.testbed.access
        assert access.downlink.delay_spikes == 1
        assert access.uplink.delay_spikes == 1
        assert faulted.pages[0].plt > baseline.pages[0].plt
        assert all(not p.timed_out for p in faulted.pages)

    def test_double_install_rejected(self):
        result = _run("http", None)
        injector = FaultInjector(result.testbed, FaultPlan.parse("rst@1"))
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()

    def test_fault_summary_keys(self):
        from repro.core import summarize_run
        result = _run("http", "rst@3.0")
        summary = summarize_run(result)
        assert summary["faults_applied"] == 1
        assert "fault_connections_reset" in summary
        assert "object_retries" in summary
