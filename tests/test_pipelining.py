"""Tests for HTTP/1.1 pipelining (Figure 1(c) — the mode Squid couldn't do)."""

import pytest

from repro.cellular import make_profile
from repro.experiments import Testbed
from repro.web import build_corpus, build_test_page


def load(testbed, page, pipelining, until=120.0):
    browser = testbed.make_browser("http", http_pipelining=pipelining)
    record = browser.load_page(page)
    testbed.sim.run(until=until)
    return browser, record


class TestPipelining:
    def test_page_loads_with_pipelining(self):
        testbed = Testbed(profile=make_profile("wifi"), seed=1)
        page = build_corpus(site_ids=[12])[0]
        _, record = load(testbed, page, pipelining=True)
        assert record.plt is not None
        assert all(t.complete for t in record.objects)

    def test_fewer_connections_than_plain_http(self):
        """Pipelining packs multiple requests per connection."""
        page = build_test_page(same_domain=True)  # 50 objects, one domain
        t_plain = Testbed(profile=make_profile("wifi"), seed=2)
        b_plain, _ = load(t_plain, page, pipelining=False)
        t_pipe = Testbed(profile=make_profile("wifi"), seed=2)
        b_pipe, _ = load(t_pipe, page, pipelining=True)
        # Same-domain page: plain HTTP queues on 6 connections; with a
        # pipeline depth of 4 the requests go out much earlier.
        plain_reqs = b_plain.records[0].request_times()
        pipe_reqs = b_pipe.records[0].request_times()
        assert pipe_reqs[30] < plain_reqs[30]

    def test_responses_in_request_order(self):
        """HOL at the object level: responses return in request order."""
        testbed = Testbed(profile=make_profile("wifi"), seed=3)
        page = build_test_page(same_domain=True, n_images=10)
        browser, record = load(testbed, page, pipelining=True)
        images = [t for t in record.objects if t.kind == "image"]
        # Objects on the same pipelined connection complete in the order
        # they were requested (no out-of-order completion within a conn).
        assert all(t.complete for t in images)

    def test_pipelining_improves_same_domain_plt(self):
        page = build_test_page(same_domain=True)
        t_plain = Testbed(profile=make_profile("3g"), seed=4)
        _, rec_plain = load(t_plain, page, pipelining=False)
        t_pipe = Testbed(profile=make_profile("3g"), seed=4)
        _, rec_pipe = load(t_pipe, page, pipelining=True)
        assert rec_pipe.plt is not None and rec_plain.plt is not None
        # Dramatic improvement claim from §2.1 ("can improve page load
        # times dramatically") — at minimum, it must not be worse.
        assert rec_pipe.plt <= rec_plain.plt * 1.05
