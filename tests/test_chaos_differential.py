"""Differential & metamorphic oracles: paired runs, relation catalogue,
campaign mechanics, and the CUBIC byte-accounting drill.

Mirrors the PR-5 acceptance pattern: an intentionally injected bug that
only the *cross-configuration* comparison can see must be caught,
classified ``relation-violation``, shrunk to a tiny paired repro, and
archived in the corpus — then replay green once the bug is gone.
"""

import pytest

from repro.chaos import (CorpusFormatError, OracleVerdict, RELATION_NAMES,
                         Scenario, SearchSpace, check_differential,
                         corpus_entry, differential_report, load_corpus,
                         pair_scenarios, relation_for_trial, replay_entry,
                         run_differential_campaign, validate_entry)
from repro.faults import FaultInjector

#: Same tiny space as test_chaos_campaign: one cheap site, short clocks.
TINY_SPACE = SearchSpace(site_pools=((1,),), think_times=(3.0,),
                         tail_times=(4.0,), load_timeouts=(5.0,),
                         networks=("3g",), max_fault_events=3)

#: A cheap scenario exercising both 3G-realistic fault kinds.
CHEAP = Scenario(seed=7, faults="arq@1:0.15:0.6,delayspike@2:1.5")


def _pass_all(scenario, relation):
    return OracleVerdict(status="pass",
                         run_digest=f"d{scenario.seed}-{relation}")


# ----------------------------------------------------------------------
# relation plumbing
# ----------------------------------------------------------------------
class TestRelationPlumbing:
    def test_relation_for_trial_cycles_deterministically(self):
        cycle = [relation_for_trial(i) for i in range(2 * len(RELATION_NAMES))]
        assert cycle == list(RELATION_NAMES) * 2

    def test_pair_scenarios_layers_overrides(self):
        scenario = Scenario(seed=3, faults="rst@1",
                            config={"think_time": 9.0},
                            tcp={"initial_cwnd": 4})
        a, b = pair_scenarios(scenario, "cc-bytes")
        assert a.tcp == {"initial_cwnd": 4, "congestion_control": "cubic"}
        assert b.tcp == {"initial_cwnd": 4, "congestion_control": "reno"}
        # scenario-level config survives on both sides, original untouched
        assert a.config["think_time"] == b.config["think_time"] == 9.0
        assert scenario.tcp == {"initial_cwnd": 4}

    def test_pair_scenarios_proto_overrides_win(self):
        scenario = Scenario(seed=3, config={"protocol": "spdy"})
        a, b = pair_scenarios(scenario, "proto-bytes")
        assert a.config["protocol"] == "http"
        assert b.config["protocol"] == "spdy"

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError, match="unknown relation"):
            pair_scenarios(CHEAP, "nope")
        with pytest.raises(ValueError, match="unknown relation"):
            check_differential(CHEAP, "nope")


# ----------------------------------------------------------------------
# the clean tree satisfies every relation
# ----------------------------------------------------------------------
class TestRelationsHoldOnCleanTree:
    @pytest.mark.parametrize("relation", RELATION_NAMES)
    def test_relation_passes(self, relation):
        verdict = check_differential(CHEAP, relation)
        assert verdict.status == "pass", verdict.message
        assert verdict.run_digest

    def test_report_shape(self):
        report = differential_report(CHEAP, "cc-bytes")
        assert report["violation"] is None
        assert report["a"]["tcp"]["congestion_control"] == "cubic"
        assert report["b"]["tcp"]["congestion_control"] == "reno"
        for side in (report["a"], report["b"]):
            assert side["digest"] and side["differential_digest"]
            assert all(residual == [0, 0] for residual
                       in side["link_residuals"].values())


# ----------------------------------------------------------------------
# campaign mechanics (synthetic oracle: fast)
# ----------------------------------------------------------------------
class TestDifferentialCampaign:
    def test_journals_deterministic_and_carry_relation(self, tmp_path):
        for name in ("a.jsonl", "b.jsonl"):
            run_differential_campaign(trials=8, master_seed=7,
                                      journal_path=str(tmp_path / name),
                                      check=_pass_all)
        assert (tmp_path / "a.jsonl").read_bytes() == \
            (tmp_path / "b.jsonl").read_bytes()

    def test_records_carry_mode_and_relation(self):
        result = run_differential_campaign(trials=6, master_seed=2,
                                           check=_pass_all)
        for index, record in enumerate(result.records):
            assert record["kind"] == "chaos-trial"
            assert record["mode"] == "differential"
            assert record["relation"] == relation_for_trial(index)

    def test_resume_skips_by_relation_key(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        run_differential_campaign(trials=6, master_seed=1,
                                  journal_path=journal, check=_pass_all)
        calls = []

        def counting(scenario, relation):
            calls.append((scenario, relation))
            return _pass_all(scenario, relation)

        second = run_differential_campaign(trials=6, master_seed=1,
                                           journal_path=journal,
                                           resume=True, check=counting)
        assert calls == []
        assert all(r.get("resumed") for r in second.records)


# ----------------------------------------------------------------------
# the CUBIC byte-accounting drill (end-to-end, real simulator)
# ----------------------------------------------------------------------
class TestCubicByteAccountingDrill:
    def test_injected_bug_caught_shrunk_archived_and_fixed(self, tmp_path,
                                                           monkeypatch):
        # Intentional bug: the CUBIC path corrupts the downlink's
        # delivered-bytes ledger.  Single-run oracles cannot see it
        # (checks-off runs have no sanitizer; the run is internally
        # self-consistent) — only the cc-bytes relation, which demands
        # zero conservation residuals under cubic AND reno, can.
        original = FaultInjector._apply_arq

        def buggy(self, event):
            original(self, event)
            if self.testbed.proxy_tcp_config.congestion_control == "cubic":
                self.testbed.access.downlink.bytes_delivered += 1
        monkeypatch.setattr(FaultInjector, "_apply_arq", buggy)

        # master seed 3: trial 0 (a cc-bytes trial) draws three fault
        # events including arq, so the buggy handler fires.
        corpus = tmp_path / "corpus"
        result = run_differential_campaign(
            trials=1, master_seed=3, space=TINY_SPACE, shrink_budget=40,
            journal_path=str(tmp_path / "j.jsonl"),
            corpus_dir=str(corpus))
        assert result.failure_count == 1
        failure = result.failures[0]
        assert failure["relation"] == "cc-bytes"
        assert failure["failure"]["status"] == "relation-violation"
        assert "cubic" in failure["failure"]["message"]
        assert failure["shrunk"]["final_events"] <= 2
        assert failure["shrunk"]["failure"]["status"] == "relation-violation"

        # the shrunk paired repro is archived with its relation...
        entries = load_corpus(str(corpus))
        assert len(entries) == 1
        entry = entries[0][1]
        assert entry["relation"] == "cc-bytes"
        assert entry["expected_failure"] == "relation-violation"

        # ...and with the bug fixed, replays green through the
        # differential oracle (the corpus contract for a fixed bug)
        monkeypatch.setattr(FaultInjector, "_apply_arq", original)
        verdict = replay_entry(entry)
        assert verdict.status == "pass"


# ----------------------------------------------------------------------
# corpus forward compatibility
# ----------------------------------------------------------------------
class TestCorpusForwardCompat:
    def _entry(self, **overrides):
        verdict = OracleVerdict(status="pass", run_digest="x")
        entry = corpus_entry(Scenario(seed=1, faults="rst@1"), verdict)
        entry.update(overrides)
        return entry

    def test_known_entry_validates(self):
        validate_entry(self._entry(), name="good.json")
        validate_entry(self._entry(relation="cc-bytes"), name="good.json")

    def test_newer_schema_refused(self):
        with pytest.raises(CorpusFormatError, match=r"x\.json.*schema 99"):
            validate_entry(self._entry(schema=99), name="x.json")

    def test_unknown_top_level_field_refused(self):
        with pytest.raises(CorpusFormatError,
                           match=r"x\.json.*quantum_field"):
            validate_entry(self._entry(quantum_field=1), name="x.json")

    def test_unknown_scenario_field_refused(self):
        entry = self._entry()
        entry["scenario"]["warp"] = 9
        with pytest.raises(CorpusFormatError, match=r"x\.json.*warp"):
            validate_entry(entry, name="x.json")

    def test_unknown_fault_kind_refused(self):
        entry = self._entry()
        entry["scenario"]["faults"] = "wormhole@2:1"
        with pytest.raises(CorpusFormatError, match=r"x\.json.*wormhole"):
            validate_entry(entry, name="x.json")

    def test_unknown_relation_refused(self):
        with pytest.raises(CorpusFormatError,
                           match=r"x\.json.*superluminal"):
            validate_entry(self._entry(relation="superluminal"),
                           name="x.json")

    def test_replay_entry_validates_first(self):
        with pytest.raises(CorpusFormatError, match="quantum_field"):
            replay_entry(self._entry(quantum_field=1))
