"""Whole-program (`--deep`) analyzer: builder, cache, rules, drills.

The graph layer is exercised three ways here:

* builder unit fixtures — import resolution through ``__init__``
  re-exports, registry-factory dynamic dispatch, and call cycles;
* the fixture pairs in ``tests/lint_fixtures/`` for every DEEP rule code
  (``<code>_pos.py`` must flag, ``<code>_neg.py`` must not);
* the two acceptance drills from the issue: entropy routed through two
  call hops into ``Simulator.schedule``, and a module-level cache shared
  by supervisor and worker — both must fail the gate with full chains.
"""

import json
import os

import pytest

from repro.lint.graph import (GraphCache, analyze_sources, build_program,
                              extract_module, graph_rules_by_code)

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")

# Graph rules see module roles through the path: sim rules need a path
# under repro/ (not lint/, not test_*), PAR rules one under repro/parallel/.
SIM_PATH = "src/repro/_lint_fixture.py"
PAR_PATH = "src/repro/parallel/_lint_fixture.py"


def _read(name: str) -> str:
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as handle:
        return handle.read()


def _fixture_path(code: str) -> str:
    return PAR_PATH if code.startswith("PAR") else SIM_PATH


def _deep_codes(source: str, path: str):
    report = analyze_sources([(path, source)])
    return {f.code for f in report.findings}


def _program(*named_sources):
    modules = {}
    for path, source in named_sources:
        ir = extract_module(path, source)
        modules[ir["module"]] = ir
    return build_program(modules)


# ---------------------------------------------------------------------------
# rule fixture pairs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("code", sorted(graph_rules_by_code()))
class TestGraphRuleFixtures:
    def test_positive_fixture_is_flagged(self, code):
        source = _read(f"{code.lower()}_pos.py")
        assert code in _deep_codes(source, _fixture_path(code))

    def test_negative_fixture_is_clean(self, code):
        source = _read(f"{code.lower()}_neg.py")
        assert code not in _deep_codes(source, _fixture_path(code))


def test_inline_suppression_applies_to_deep_findings():
    source = _read("par002_pos.py").replace(
        "_SEEN.add(task)",
        "_SEEN.add(task)  # repro-lint: disable=PAR002")
    report = analyze_sources([(PAR_PATH, source)])
    assert "PAR002" not in {f.code for f in report.findings}
    assert report.suppressed == 1


def test_deep_findings_carry_line_text_for_baselines():
    report = analyze_sources([(SIM_PATH, _read("sim101_pos.py"))])
    flagged = [f for f in report.findings if f.code == "SIM101"]
    assert flagged and flagged[0].line_text == "time.sleep(0.1)"


# ---------------------------------------------------------------------------
# builder: imports, dispatch, cycles
# ---------------------------------------------------------------------------

class TestBuilder:
    def test_init_reexport_resolves_to_defining_module(self):
        program = _program(
            ("src/pkg/__init__.py", "from .impl import Widget\n"),
            ("src/pkg/impl.py", "class Widget:\n    def spin(self):\n"
                                "        pass\n"),
            ("src/app.py", "from pkg import Widget\n\n"
                           "def go():\n    w = Widget()\n    w.spin()\n"))
        assert program.resolve_export("pkg.Widget") == "pkg.impl.Widget"
        [(_, callees)] = [
            (call, c) for call, c in program.callees("app.go") if c]
        assert callees == ["pkg.impl.Widget.spin"]

    def test_registry_factory_fans_out_to_all_registered_classes(self):
        source = (
            "class CongestionControl:\n"
            "    def on_ack(self):\n        pass\n\n"
            "class Reno(CongestionControl):\n"
            "    def on_ack(self):\n        pass\n\n"
            "class Cubic(CongestionControl):\n"
            "    def on_ack(self):\n        pass\n\n"
            "REGISTRY = {'reno': Reno, 'cubic': Cubic}\n\n"
            "def make(name):\n"
            "    cls = REGISTRY[name]\n"
            "    return cls()\n")
        program = _program(("src/cc.py", source))
        assert sorted(program.factory_classes("cc.make")) == [
            "cc.Cubic", "cc.Reno"]

    def test_dispatch_includes_subclass_overrides(self):
        source = (
            "class Rule:\n"
            "    def check(self):\n        pass\n\n"
            "class TimeRule(Rule):\n"
            "    def check(self):\n        pass\n")
        program = _program(("src/r.py", source))
        assert program.dispatch("r.Rule", "check") == [
            "r.Rule.check", "r.TimeRule.check"]

    def test_call_cycle_terminates_and_keeps_both_edges(self):
        source = (
            "def ping(n):\n"
            "    return pong(n - 1)\n\n"
            "def pong(n):\n"
            "    return ping(n - 1)\n")
        program = _program(("src/cyc.py", source))
        ping_callees = [q for _c, qs in program.callees("cyc.ping")
                        for q in qs]
        pong_callees = [q for _c, qs in program.callees("cyc.pong")
                        for q in qs]
        assert "cyc.pong" in ping_callees
        assert "cyc.ping" in pong_callees

    def test_taint_survives_a_call_cycle(self):
        # A cycle between helpers must not hang or drop the source.
        source = (
            "import time\n\n\n"
            "class Simulator:\n"
            "    def run(self):\n        pass\n\n"
            "    def schedule(self, delay, callback):\n        pass\n\n\n"
            "def a(n):\n"
            "    if n:\n"
            "        return b(n - 1)\n"
            "    return time.time()\n\n\n"
            "def b(n):\n"
            "    return a(n)\n\n\n"
            "def arm(sim, cb):\n"
            "    sim.schedule(b(3), cb)\n")
        assert "DET101" in _deep_codes(source, SIM_PATH)


# ---------------------------------------------------------------------------
# acceptance drills (from the issue)
# ---------------------------------------------------------------------------

class TestAcceptanceDrills:
    def test_entropy_two_hops_into_schedule_fails_with_chain(self):
        source = (
            "import time\n\n\n"
            "class Simulator:\n"
            "    def run(self):\n        pass\n\n"
            "    def schedule(self, delay, callback, *args):\n"
            "        pass\n\n\n"
            "def _raw_entropy():\n"
            "    return time.time()\n\n\n"
            "def _jitter():\n"
            "    return _raw_entropy() % 1.0\n\n\n"
            "def arm(sim, fire):\n"
            "    sim.schedule(_jitter(), fire)\n")
        report = analyze_sources([("src/repro/web/_drill_a.py", source)])
        det = [f for f in report.findings if f.code == "DET101"]
        assert det, "the entropy->schedule drill must fail the gate"
        chain = "\n".join(det[0].chain)
        assert "time.time" in chain
        assert "_jitter" in chain and "_raw_entropy" in chain

    def test_shared_cache_supervisor_worker_fails_with_ownership(self):
        source = (
            "_SHARED_CACHE = {}\n\n\n"
            "def worker_main(tasks):\n"
            "    _SHARED_CACHE['last'] = tasks\n\n\n"
            "class ShadowSupervisor:\n"
            "    def drain(self):\n"
            "        return _SHARED_CACHE.get('last')\n")
        report = analyze_sources(
            [("src/repro/parallel/_drill_b.py", source)])
        par = [f for f in report.findings if f.code == "PAR001"]
        assert par, "the shared-cache drill must fail the gate"
        chain = "\n".join(par[0].chain)
        assert "worker" in chain and "supervisor" in chain.lower()
        assert "mutated" in chain


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------

class TestGraphCache:
    def test_warm_run_hits_and_touch_invalidates_one_entry(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        pairs = [("src/repro/a.py", "def f():\n    return 1\n"),
                 ("src/repro/b.py", "def g():\n    return 2\n")]
        cold = analyze_sources(pairs, cache=GraphCache(cache_dir))
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)

        warm = analyze_sources(pairs, cache=GraphCache(cache_dir))
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)

        touched = [pairs[0],
                   ("src/repro/b.py", "def g():\n    return 3\n")]
        partial = analyze_sources(touched, cache=GraphCache(cache_dir))
        assert (partial.cache_hits, partial.cache_misses) == (1, 1)

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        pairs = [("src/repro/a.py", "def f():\n    return 1\n")]
        analyze_sources(pairs, cache=GraphCache(cache_dir))
        for name in os.listdir(cache_dir):
            with open(os.path.join(cache_dir, name), "w") as handle:
                handle.write("{ not json")
        report = analyze_sources(pairs, cache=GraphCache(cache_dir))
        assert (report.cache_hits, report.cache_misses) == (0, 1)

    def test_cache_roundtrip_preserves_findings(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        pairs = [(SIM_PATH, _read("det101_pos.py"))]
        cold = analyze_sources(pairs, cache=GraphCache(cache_dir))
        warm = analyze_sources(pairs, cache=GraphCache(cache_dir))
        assert warm.cache_hits == 1
        assert [f.render() for f in cold.findings] == [
            f.render() for f in warm.findings]

    def test_syntax_error_file_is_skipped_not_fatal(self, tmp_path):
        pairs = [("src/repro/bad.py", "def broken(:\n"),
                 (SIM_PATH, _read("det101_pos.py"))]
        report = analyze_sources(pairs)
        assert report.modules == 1
        assert {f.code for f in report.findings} == {"DET101"}


def test_graph_findings_serialize_chain_to_json():
    report = analyze_sources([(SIM_PATH, _read("det101_pos.py"))])
    payload = json.loads(json.dumps(report.findings[0].to_json()))
    assert payload["code"] == "DET101"
    assert isinstance(payload["chain"], list) and payload["chain"]
