"""The runtime invariant sanitizer: modes, machinery, and the checks."""

import math

import pytest

from repro.cellular.rrc import LTE_CRX, LTE_SDRX, LteRrc, UMTS_FACH, UmtsRrc
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.sanity import (CHECK_MODES, Invariant, InvariantViolation,
                          Sanitizer, resolve_check_mode)
from repro.sim import SimulationError, Simulator
from repro.tcp import TcpConfig


# ----------------------------------------------------------------------
# mode resolution
# ----------------------------------------------------------------------
def test_check_modes_catalogue():
    assert CHECK_MODES == ("off", "warn", "strict")


def test_resolve_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_CHECKS", "strict")
    assert resolve_check_mode("warn") == "warn"


def test_resolve_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_CHECKS", "warn")
    assert resolve_check_mode(None) == "warn"


def test_resolve_default_off(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKS", raising=False)
    assert resolve_check_mode(None) == "off"


def test_resolve_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError):
        resolve_check_mode("paranoid")
    monkeypatch.setenv("REPRO_CHECKS", "bogus")
    with pytest.raises(ValueError):
        resolve_check_mode(None)


# ----------------------------------------------------------------------
# sanitizer machinery
# ----------------------------------------------------------------------
class _AlwaysFails(Invariant):
    name = "test.always-fails"
    topics = ("test.topic",)

    def observe(self, sanitizer, topic, obj, info):
        sanitizer.fail(self, obj, "boom")


def test_warn_mode_records_without_raising():
    san = Sanitizer(mode="warn")
    san.register(_AlwaysFails())
    san.emit("test.topic", object())
    assert len(san.violations) == 1
    assert san.violations[0].invariant == "test.always-fails"


def test_strict_mode_raises_with_ring():
    san = Sanitizer(mode="strict")
    san.register(_AlwaysFails())
    san.emit("other.topic", object(), detail="earlier event")
    with pytest.raises(InvariantViolation) as exc_info:
        san.emit("test.topic", object(), detail="the bad one")
    assert "test.always-fails" in str(exc_info.value)
    assert "earlier event" in str(exc_info.value)  # ring buffer in message


def test_ring_buffer_is_bounded():
    san = Sanitizer(mode="warn", ring_size=4)
    for i in range(10):
        san.emit("noise", None, detail=f"event-{i}")
    ring = "\n".join(san.format_ring())
    assert "event-9" in ring and "event-5" not in ring


def test_report_shape():
    san = Sanitizer(mode="warn")
    san.register(_AlwaysFails())
    san.emit("test.topic", object())
    report = san.report()
    assert report["mode"] == "warn"
    assert report["checks_run"] >= 1
    assert report["violations"][0]["invariant"] == "test.always-fails"


# ----------------------------------------------------------------------
# the checks themselves, on deliberately broken state
# ----------------------------------------------------------------------
def _wired_machine(machine_cls):
    sim = Simulator(seed=0)
    machine = machine_cls(sim)
    san = Sanitizer(mode="strict")
    from repro.sanity.checks import RrcLegality
    san.register(RrcLegality())
    machine.sanitizer = san
    return machine


def test_rrc_legal_transitions_pass():
    machine = _wired_machine(UmtsRrc)
    machine.request_channel(4000)
    machine.sim.run(until=30.0)  # promote, then demote back to idle
    assert machine.state_log[-1][1] == "IDLE"


def test_rrc_illegal_transition_caught():
    machine = _wired_machine(LteRrc)
    # IDLE -> SHORT_DRX is not an edge of Figure 18.
    with pytest.raises(InvariantViolation, match="rrc.legal-transition"):
        machine._set_state(LTE_SDRX)


def test_rrc_illegal_umts_transition_caught():
    machine = _wired_machine(UmtsRrc)
    with pytest.raises(InvariantViolation, match="rrc.legal-transition"):
        machine._set_state(UMTS_FACH)  # IDLE -> FACH: no such edge


def test_lte_graph_includes_drx_wakeups():
    edges = LteRrc(Simulator(seed=0)).legal_transitions()
    assert (LTE_SDRX, LTE_CRX) in edges


# ----------------------------------------------------------------------
# simulator scheduling guards (satellite: NaN/inf were accepted before)
# ----------------------------------------------------------------------
def test_schedule_rejects_negative_delay():
    sim = Simulator(seed=0)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)  # repro-lint: disable=SIM002 -- exercises the error path


def test_schedule_rejects_nan_delay():
    sim = Simulator(seed=0)
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_schedule_rejects_inf_delay():
    sim = Simulator(seed=0)
    with pytest.raises(SimulationError):
        sim.schedule(math.inf, lambda: None)


def test_schedule_at_rejects_past_and_nan():
    sim = Simulator(seed=0)
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(float("nan"), lambda: None)


# ----------------------------------------------------------------------
# config validation (satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    {"protocol": "gopher"},
    {"network": "5g"},
    {"site_ids": []},
    {"think_time": -1.0},
    {"think_time": float("nan")},
    {"load_timeout": 0.0},
    {"ping_interval": -3.0},
    {"tail_time": -0.1},
    {"n_spdy_sessions": 0},
    {"max_events": 0},
    {"checks": "paranoid"},
])
def test_experiment_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        ExperimentConfig(**kwargs)


def test_experiment_config_accepts_profile_override():
    # An explicit profile bypasses the network-name check.
    cfg = ExperimentConfig(network="custom", profile=object())
    assert cfg.network == "custom"


def test_tcp_config_rejects_tiny_cwnd_cap():
    with pytest.raises(ValueError):
        TcpConfig(initial_cwnd=10.0, max_cwnd_segments=4).validate()


# ----------------------------------------------------------------------
# end-to-end: full runs are strict-clean on every protocol/network
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol,network", [
    ("http", "3g"), ("spdy", "3g"), ("spdy", "lte"), ("http", "wifi"),
])
def test_strict_run_is_clean(protocol, network):
    cfg = ExperimentConfig(protocol=protocol, network=network,
                           site_ids=[1, 2], think_time=8.0, tail_time=8.0,
                           checks="strict")
    run = run_experiment(cfg)
    assert run.sanity_report["mode"] == "strict"
    assert run.sanity_report["violations"] == []
    assert run.sanity_report["checks_run"] > 1000


def test_strict_run_with_faults_is_clean():
    cfg = ExperimentConfig(protocol="spdy", site_ids=[1, 2], think_time=8.0,
                           tail_time=8.0, checks="strict",
                           fault_plan="rst@5:2,handover@9,blackout@12:1")
    run = run_experiment(cfg)
    assert run.sanity_report["violations"] == []


def test_checks_off_leaves_no_report():
    cfg = ExperimentConfig(site_ids=[1], think_time=5.0, tail_time=5.0,
                           checks="off")
    run = run_experiment(cfg)
    assert run.sanity_report is None


def test_summary_counts_checks():
    from repro.core.analysis import summarize_run
    cfg = ExperimentConfig(site_ids=[1], think_time=5.0, tail_time=5.0,
                           checks="warn")
    summary = summarize_run(run_experiment(cfg))
    assert summary["invariant_violations"] == 0
    assert summary["invariant_checks"] > 0
