"""Focused tests for SACK loss recovery and F-RTO spurious-timeout undo."""

import pytest

from repro.tcp import TcpConfig

from helpers import ClientApp, EchoApp, Topology


def establish(topo, reply_bytes=0):
    server_app = EchoApp(reply_bytes=reply_bytes)
    topo.server_tcp.listen(80, server_app.on_accept)
    client_app = ClientApp()
    conn = topo.client_tcp.connect("server", 80)
    client_app.attach(conn)
    return conn, client_app, server_app


class TestSackRecovery:
    def test_burst_loss_recovers_within_a_few_rtts(self):
        """A whole-window burst loss must not take one RTO per segment."""
        topo = Topology(bandwidth=10e6, latency=0.05,
                        queue_limit_bytes=60_000, seed=4)
        conn, _, server_app = establish(topo)
        # Dump enough to overflow the 60 KB queue in slow start.
        for i in range(16):
            conn.send_message(i, 25_000)  # 400 KB
        topo.sim.run(until=60.0)
        assert server_app.received == list(range(16))
        # 400 KB at 10 Mbps is ~0.4 s; with burst-loss recovery the whole
        # transfer must finish within a handful of seconds, not minutes.
        last = max(t for t, in [(topo.sim.now,)])
        assert conn.stats.retransmissions > 0
        assert topo.sim.peek_time() is None or topo.sim.now < 60.0

    def test_transfer_time_bounded_after_burst_loss(self):
        topo = Topology(bandwidth=10e6, latency=0.05,
                        queue_limit_bytes=60_000, seed=4)
        conn, _, server_app = establish(topo)
        done_at = []
        conn_server = []

        def on_accept(c):
            conn_server.append(c)
            c.on_message = lambda cc, obj: done_at.append(topo.sim.now)

        topo.server_tcp._listeners[80].on_accept = on_accept
        for i in range(16):
            conn.send_message(i, 25_000)
        topo.sim.run(until=60.0)
        assert len(done_at) == 16
        assert done_at[-1] < 8.0  # not 16 x RTO-backoff

    def test_sack_blocks_built_from_ooo(self):
        topo = Topology(bandwidth=5e6, latency=0.03, loss_rate=0.05, seed=8)
        conn, _, server_app = establish(topo)
        for i in range(30):
            conn.send_message(i, 20_000)
        topo.sim.run(until=60.0)
        assert server_app.received == list(range(30))


class TestFRto:
    def _idle_then_delayed_ack_path(self, promotion=1.5):
        """Build a topology whose latency suddenly jumps (promotion-like).

        We emulate the radio promotion by pausing the link: messages
        sent after the pause see a one-shot large delay.
        """
        topo = Topology(bandwidth=10e6, latency=0.05, seed=0)
        return topo

    def test_frto_undo_on_delayed_but_delivered_data(self):
        """RTO fires while data is merely delayed -> F-RTO undoes the cut."""
        from repro.cellular import three_g_profile, AccessNetwork
        from repro.net import Host
        from repro.sim import Simulator
        from repro.tcp import TcpStack

        sim = Simulator(seed=1)
        client = Host(sim, "client")
        proxy = Host(sim, "proxy")
        profile = three_g_profile(loss_rate=0.0)
        access = AccessNetwork(sim, client, proxy, profile)
        ctcp = TcpStack(sim, client)
        ptcp = TcpStack(sim, proxy)

        server_conn = []

        def on_accept(c):
            server_conn.append(c)
            c.on_message = lambda cc, obj: None

        ptcp.listen(80, on_accept)
        conn = ctcp.connect("proxy", 80)
        conn.on_message = lambda c, obj: None
        conn.on_established = lambda c: c.send_message("warm", 200_000)
        sim.run(until=20.0)
        srv = server_conn[0]
        # Proxy sends a large transfer; mid-transfer nothing is lost, so
        # any timeout that fires is spurious; F-RTO should undo at least
        # once across a bursty cellular transfer, OR no RTO fires at all.
        srv.send_message("data", 400_000)
        sim.run(until=60.0)
        if srv.stats.timeout_retransmissions > 0:
            assert srv.stats.frto_undos >= 0  # undo machinery exercised
        # Crucially: ssthresh is not left collapsed when nothing was lost.
        assert srv.cc.ssthresh > 5

    def test_backoff_rto_cancels_frto(self):
        """Two RTOs before any ACK (a long promotion) => damage persists."""
        from repro.cellular import three_g_profile, AccessNetwork
        from repro.net import Host
        from repro.sim import Simulator
        from repro.tcp import TcpStack

        sim = Simulator(seed=2)
        client = Host(sim, "client")
        proxy = Host(sim, "proxy")
        profile = three_g_profile(loss_rate=0.0)
        access = AccessNetwork(sim, client, proxy, profile)
        ctcp = TcpStack(sim, client)
        ptcp = TcpStack(sim, proxy)
        server_conn = []

        def on_accept(c):
            server_conn.append(c)
            c.on_message = lambda cc, obj: None

        ptcp.listen(80, on_accept)
        conn = ctcp.connect("proxy", 80)
        conn.on_message = lambda c, obj: None
        conn.on_established = lambda c: c.send_message("warm", 50_000)
        sim.run(until=30.0)  # transfer done, radio demoted to IDLE
        srv = server_conn[0]
        ssthresh_before = srv.cc.ssthresh
        # Server-initiated push into an idle radio: 2 s promotion, RTO
        # fires and backs off before any ACK returns -> genuine path.
        srv.send_message("push", 30_000)
        sim.run(until=60.0)
        assert srv.stats.spurious_retransmissions > 0
        assert srv.cc.ssthresh < ssthresh_before

    def test_frto_gate_disables_undo_machinery(self):
        """``TcpConfig.frto=False`` is the differential ablation axis: the
        same delay-spiked transfer that provokes undos with F-RTO on must
        record exactly zero with it off (conventional RTO path only)."""
        from repro.chaos import Scenario
        from repro.experiments.runner import run_experiment

        def total_undos(enabled):
            scenario = Scenario(seed=7,
                                faults="arq@1:0.15:0.6,delayspike@5:2",
                                tcp={"frto": enabled})
            run = run_experiment(scenario.experiment_config())
            stacks = (run.testbed.client_stack, run.testbed.proxy_stack)
            return sum(c.stats.frto_undos for stack in stacks
                       for c in stack.all_connections)

        assert total_undos(True) > 0
        assert total_undos(False) == 0
