"""Property tests for the streaming sketches (satellite: hypothesis).

The sketch layer's whole value proposition is three invariants: merge is
associative, the result is independent of arrival order and sharding,
and the serialized bytes are identical for any of those groupings —
that is what lets ``--workers N`` aggregate byte-identically to a
serial run.  Plus the accuracy contract: quantiles within relative
error alpha of the exact nearest-rank value.
"""

import json
import math
import random
import statistics

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.metrics import MetricSketch, QuantileSketch, StreamingMoments

# Finite, sim-plausible magnitudes (PLT seconds to energy millijoules);
# 32-bit width keeps hypothesis away from subnormal-float edge cases the
# simulator can never produce.
values = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                            allow_nan=False, allow_infinity=False,
                            width=32), max_size=60)


def canonical(sketch):
    """The merge-comparison unit: exact serialized bytes."""
    return json.dumps(sketch.to_dict(), sort_keys=True)


def build(samples):
    sketch = MetricSketch()
    for value in samples:
        sketch.add(value)
    return sketch


@given(values, values, values)
def test_merge_is_associative(a, b, c):
    left = build(a)
    left.merge(build(b))
    left.merge(build(c))

    bc = build(b)
    bc.merge(build(c))
    right = build(a)
    right.merge(bc)

    assert canonical(left) == canonical(right)


@given(values, values)
def test_merge_is_commutative(a, b):
    ab = build(a)
    ab.merge(build(b))
    ba = build(b)
    ba.merge(build(a))
    assert canonical(ab) == canonical(ba)


@given(values, st.randoms(use_true_random=False))
def test_result_is_arrival_order_independent(samples, rng):
    shuffled = list(samples)
    rng.shuffle(shuffled)
    assert canonical(build(samples)) == canonical(build(shuffled))


@given(values, st.integers(min_value=1, max_value=7))
def test_any_sharding_merges_to_identical_bytes(samples, shards):
    serial = build(samples)
    parts = [build(samples[i::shards]) for i in range(shards)]
    merged = parts[0]
    for part in parts[1:]:
        merged.merge(part)
    assert canonical(merged) == canonical(serial)
    assert merged.count == len(samples)


@given(values)
def test_round_trips_through_dict(samples):
    sketch = build(samples)
    clone = MetricSketch.from_dict(
        json.loads(json.dumps(sketch.to_dict())))
    assert canonical(clone) == canonical(sketch)
    summary = sketch.summary()
    assert summary["n"] == len(samples)


@given(values)
def test_moments_match_statistics_module(samples):
    moments = StreamingMoments()
    for value in samples:
        moments.add(value)
    if not samples:
        assert moments.mean is None and moments.variance is None
        return
    assert moments.mean == pytest.approx(statistics.fmean(samples),
                                         abs=1e-6, rel=1e-9)
    assert moments.variance == pytest.approx(
        statistics.pvariance(samples), abs=1e-3, rel=1e-6)
    assert moments.minimum == pytest.approx(min(samples), abs=1e-6)
    assert moments.maximum == pytest.approx(max(samples), abs=1e-6)


@settings(max_examples=25)
@given(st.lists(st.floats(min_value=0.0009765625, max_value=1e5,
                          allow_nan=False, allow_infinity=False,
                          width=32), min_size=1, max_size=200),
       st.sampled_from([0.0, 0.5, 0.9, 0.95, 0.99, 1.0]))
def test_quantile_within_alpha_of_nearest_rank(samples, q):
    sketch = QuantileSketch(alpha=0.01)
    for value in samples:
        sketch.add(value)
    estimate = sketch.quantile(q)
    exact = sorted(samples)[math.floor(q * (len(samples) - 1))]
    assert abs(estimate - exact) <= 0.01 * exact + 1e-9


def test_quantile_error_bound_on_10k_heavy_tailed_samples():
    # The deterministic acceptance check from the issue: 10^4 lognormal
    # draws (the sector model's PLT shape), p50/p95/p99 each within the
    # sketch's alpha of the exact nearest-rank statistic.
    rng = random.Random(42)
    samples = [math.exp(rng.gauss(2.0, 0.6)) for _ in range(10_000)]
    alpha = 0.01
    sketch = QuantileSketch(alpha=alpha)
    for value in samples:
        sketch.add(value)
    ordered = sorted(samples)
    for q in (0.50, 0.95, 0.99):
        exact = ordered[math.floor(q * (len(ordered) - 1))]
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) / exact <= alpha


def test_quantile_handles_zero_and_negative_buckets():
    sketch = QuantileSketch(alpha=0.01)
    for value in (-10.0, -10.0, 0.0, 0.0, 0.0, 5.0, 5.0):
        sketch.add(value)
    assert sketch.count == 7
    assert sketch.quantile(0.0) == pytest.approx(-10.0, rel=0.011)
    assert sketch.quantile(0.5) == 0.0
    assert sketch.quantile(1.0) == pytest.approx(5.0, rel=0.011)


def test_merge_refuses_mismatched_alpha():
    a = QuantileSketch(alpha=0.01)
    b = QuantileSketch(alpha=0.02)
    with pytest.raises(ValueError, match="alpha"):
        a.merge(b)


def test_empty_sketch_summary_is_all_none():
    summary = MetricSketch().summary()
    assert summary["n"] == 0
    assert all(summary[key] is None
               for key in ("mean", "min", "max", "p50", "p95", "p99"))
