"""Tests for the ASCII rendering helpers."""

import pytest

from repro.reporting import (format_seconds, render_bar, render_boxes,
                             render_cdf, render_series, render_table)


class TestTable:
    def test_basic_alignment(self):
        out = render_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = out.splitlines()
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "22.25" in lines[3]

    def test_title_prepended(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_none_rendered_as_dash(self):
        out = render_table(["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_large_numbers_thousands_separated(self):
        out = render_table(["x"], [[1234567.0]])
        assert "1,234,567" in out


class TestSeries:
    def test_empty_series(self):
        assert "empty" in render_series([])

    def test_plot_dimensions(self):
        out = render_series([(0.0, 1.0), (10.0, 5.0)], width=30, height=5)
        rows = [l for l in out.splitlines() if l.startswith("|")]
        assert len(rows) == 5
        assert all(len(r) <= 31 for r in rows)

    def test_peak_marked(self):
        out = render_series([(0, 0.0), (1, 10.0), (2, 0.0)], width=12,
                            height=4)
        assert "#" in out


class TestCdfAndBar:
    def test_cdf_deciles(self):
        out = render_cdf({"a": [(1.0, 0.5), (2.0, 1.0)]})
        assert "p50=" in out and "p90=" in out

    def test_bar_scaled(self):
        out = render_bar({"x": 10.0, "y": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_empty(self):
        assert "no data" in render_bar({})


class TestFormatting:
    def test_format_seconds(self):
        assert format_seconds(None) == "-"
        assert format_seconds(1.234) == "1.23s"


class TestBoxesRenderer:
    def test_winner_column(self):
        sites = {1: {"http": dict(minimum=1, p25=1, median=2, p75=3,
                                  maximum=4, mean=2.5, n=3),
                     "spdy": dict(minimum=1, p25=1, median=1.5, p75=2,
                                  maximum=3, mean=1.8, n=3)}}
        out = render_boxes(sites)
        assert "spdy" in out.splitlines()[-1]
