"""Tests for the shared cell and multi-client testbed."""

import pytest

from repro.cellular.cell import SharedCell
from repro.experiments.multiuser import (MultiClientTestbed,
                                         run_contention_experiment)


class TestSharedCell:
    def test_validation(self):
        with pytest.raises(ValueError):
            SharedCell(0, 1)
        cell = SharedCell(2e6, 1e6)
        with pytest.raises(ValueError):
            cell.register(object(), "sideways")

    def test_share_divides_among_active_links(self):
        cell = SharedCell(4e6, 2e6)

        class FakeLink:
            def __init__(self, backlog):
                self.backlog_bytes = backlog

        a, b, c = FakeLink(100), FakeLink(100), FakeLink(0)
        for link in (a, b, c):
            cell.register(link, "down")
        # Two other active links -> requester shares with them.
        assert cell.share_for(c, "down", state_rate=4e6) == pytest.approx(4e6 / 3)
        # Idle peers don't count: only b is active besides a.
        assert cell.share_for(a, "down", state_rate=4e6) == pytest.approx(2e6)

    def test_state_rate_caps_share(self):
        cell = SharedCell(10e6, 5e6)

        class FakeLink:
            backlog_bytes = 0

        link = FakeLink()
        cell.register(link, "down")
        assert cell.share_for(link, "down", state_rate=32e3) == 32e3


class TestMultiClientTestbed:
    def test_builds_n_clients(self):
        testbed = MultiClientTestbed(3, network="3g")
        assert len(testbed.clients) == 3
        assert len({a.machine for a in testbed.accesses}) == 3  # own radios

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            MultiClientTestbed(0)

    def test_two_clients_load_pages(self):
        result = run_contention_experiment(2, protocol="http",
                                           site_ids=[9], think_time=30.0,
                                           stagger=3.0)
        assert len(result["per_client_plts"]) == 2
        for plts in result["per_client_plts"]:
            assert len(plts) == 1
            assert plts[0] < 55.0

    def test_contention_degrades_plt(self):
        """The paper's multi-user observation: load hurts everyone."""
        solo = run_contention_experiment(1, protocol="http",
                                         site_ids=[12], think_time=40.0)
        crowd = run_contention_experiment(6, protocol="http",
                                          site_ids=[12], think_time=40.0,
                                          stagger=0.5)
        assert crowd["median_plt"] > solo["median_plt"]

    def test_spdy_works_multiuser(self):
        result = run_contention_experiment(2, protocol="spdy",
                                           site_ids=[9], think_time=30.0)
        assert result["median_plt"] < 55.0
