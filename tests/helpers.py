"""Shared test fixtures: small topologies and app shims."""

from repro.net import DuplexLink, Host
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpStack


class Topology:
    """Two hosts joined by a configurable duplex link."""

    def __init__(self, seed=0, latency=0.01, bandwidth=10e6, loss_rate=0.0,
                 client_config=None, server_config=None, jitter=None,
                 queue_limit_bytes=256 * 1024):
        self.sim = Simulator(seed=seed)
        self.client = Host(self.sim, "client")
        self.server = Host(self.sim, "server")
        self.link = DuplexLink(self.sim, self.client, self.server,
                               bandwidth_down_bps=bandwidth,
                               bandwidth_up_bps=bandwidth,
                               latency=latency, loss_rate=loss_rate,
                               jitter=jitter,
                               queue_limit_bytes=queue_limit_bytes)
        self.client_tcp = TcpStack(self.sim, self.client,
                                   client_config or TcpConfig())
        self.server_tcp = TcpStack(self.sim, self.server,
                                   server_config or TcpConfig())


class EchoApp:
    """Server app: records received messages, optionally replies."""

    def __init__(self, reply_bytes=0):
        self.received = []
        self.reply_bytes = reply_bytes
        self.connections = []

    def on_accept(self, conn):
        self.connections.append(conn)
        conn.on_message = self.on_message

    def on_message(self, conn, obj):
        self.received.append(obj)
        if self.reply_bytes:
            conn.send_message(("reply", obj), self.reply_bytes)


class ClientApp:
    """Client app: records established/messages/closes."""

    def __init__(self):
        self.established = False
        self.received = []
        self.closed = False

    def attach(self, conn):
        conn.on_established = lambda c: setattr(self, "established", True)
        conn.on_message = lambda c, obj: self.received.append(obj)
        conn.on_close = lambda c: setattr(self, "closed", True)
        return conn
