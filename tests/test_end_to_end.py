"""End-to-end: browser -> proxy -> origins over simulated access networks."""

import pytest

from repro.cellular import make_profile
from repro.experiments import Testbed
from repro.web import build_corpus, build_test_page

SMALL_SITE = 9   # 5 objects, 56 KB
MEDIUM_SITE = 12  # 29 objects, 688 KB


def load_one(testbed, protocol, page, until=60.0, **browser_kwargs):
    browser = testbed.make_browser(protocol, **browser_kwargs)
    record = browser.load_page(page)
    testbed.sim.run(until=until)
    return browser, record


class TestWifiPageLoad:
    @pytest.mark.parametrize("protocol", ["http", "spdy"])
    def test_small_page_loads(self, protocol):
        testbed = Testbed(profile=make_profile("wifi"), seed=1)
        page = build_corpus(site_ids=[SMALL_SITE])[0]
        _, record = load_one(testbed, protocol, page)
        assert record.plt is not None
        assert record.plt < 5.0
        assert len(record.objects) == page.total_objects
        assert all(t.complete for t in record.objects)

    @pytest.mark.parametrize("protocol", ["http", "spdy"])
    def test_medium_page_loads(self, protocol):
        testbed = Testbed(profile=make_profile("wifi"), seed=2)
        page = build_corpus(site_ids=[MEDIUM_SITE])[0]
        _, record = load_one(testbed, protocol, page)
        assert record.plt is not None
        assert record.plt < 10.0
        assert all(t.complete for t in record.objects)

    def test_timing_components_sane(self):
        testbed = Testbed(profile=make_profile("wifi"), seed=3)
        page = build_corpus(site_ids=[MEDIUM_SITE])[0]
        _, record = load_one(testbed, "http", page)
        for t in record.objects:
            assert t.init >= 0
            assert t.send >= 0
            assert t.wait > 0
            assert t.receive >= 0

    def test_spdy_requests_earlier_than_http(self):
        """SPDY has no connection-pool gate: requests go out sooner."""
        page = build_test_page(same_domain=True)  # 50 parallel images
        t_http = Testbed(profile=make_profile("wifi"), seed=4)
        _, rec_http = load_one(t_http, "http", page)
        t_spdy = Testbed(profile=make_profile("wifi"), seed=4)
        _, rec_spdy = load_one(t_spdy, "spdy", page)
        # Compare the 90th-percentile request-issue time: HTTP queues
        # behind 6 connections, SPDY fires all 50 at once.
        http_times = rec_http.request_times()
        spdy_times = rec_spdy.request_times()
        assert spdy_times[45] < http_times[45]

    def test_spdy_faster_on_wifi(self):
        """The paper's Figure 4: SPDY wins on 802.11/broadband."""
        page = build_corpus(site_ids=[7])[0]  # news site, many objects
        t_http = Testbed(profile=make_profile("wifi"), seed=5)
        _, rec_http = load_one(t_http, "http", page, until=120.0)
        t_spdy = Testbed(profile=make_profile("wifi"), seed=5)
        _, rec_spdy = load_one(t_spdy, "spdy", page, until=120.0)
        assert rec_http.plt is not None and rec_spdy.plt is not None
        assert rec_spdy.plt < rec_http.plt


class Test3GPageLoad:
    @pytest.mark.parametrize("protocol", ["http", "spdy"])
    def test_page_completes_over_3g(self, protocol):
        testbed = Testbed(profile=make_profile("3g"), seed=6)
        page = build_corpus(site_ids=[SMALL_SITE])[0]
        _, record = load_one(testbed, protocol, page, until=120.0)
        assert record.plt is not None
        # 3G pays the ~2s promotion up front.
        assert record.plt > 2.0
        assert all(t.complete for t in record.objects)

    def test_radio_promoted_during_load(self):
        testbed = Testbed(profile=make_profile("3g"), seed=7)
        page = build_corpus(site_ids=[SMALL_SITE])[0]
        load_one(testbed, "http", page, until=120.0)
        assert testbed.radio.promotions >= 1

    def test_proxy_trace_populated(self):
        testbed = Testbed(profile=make_profile("3g"), seed=8)
        page = build_corpus(site_ids=[SMALL_SITE])[0]
        _, record = load_one(testbed, "spdy", page, until=120.0)
        completed = testbed.proxy_trace.completed()
        assert len(completed) == page.total_objects
        # Figure 8 regime: origin wait is milliseconds.
        assert 0 < testbed.proxy_trace.mean_origin_wait() < 0.08
        assert 0 <= testbed.proxy_trace.mean_origin_download() < 0.05

    def test_packet_traces_collected(self):
        testbed = Testbed(profile=make_profile("3g"), seed=9)
        page = build_corpus(site_ids=[SMALL_SITE])[0]
        load_one(testbed, "http", page, until=120.0)
        assert testbed.downlink_trace.total_payload_delivered() > \
            page.total_bytes  # body + headers overhead

    def test_spdy_single_connection_http_many(self):
        page = build_corpus(site_ids=[MEDIUM_SITE])[0]
        t_http = Testbed(profile=make_profile("3g"), seed=10)
        browser_http, _ = load_one(t_http, "http", page, until=120.0)
        t_spdy = Testbed(profile=make_profile("3g"), seed=10)
        browser_spdy, _ = load_one(t_spdy, "spdy", page, until=120.0)
        assert len(t_spdy.client_stack.all_connections) == 1
        assert len(t_http.client_stack.all_connections) >= 4


class TestFigure7TestPages:
    def test_http_affected_by_domain_spread_spdy_not(self):
        results = {}
        for protocol in ("http", "spdy"):
            for same in (True, False):
                testbed = Testbed(profile=make_profile("3g"), seed=11)
                page = build_test_page(same_domain=same)
                _, record = load_one(testbed, protocol, page, until=120.0)
                assert record.plt is not None, (protocol, same)
                results[(protocol, same)] = record.plt
        # HTTP: different domains opens up to 32 connections (vs 6): the
        # paper measured 5.29s (same) vs 6.80s (different) — handshake
        # storms over 3G cost more than parallelism wins.
        assert results[("http", True)] != results[("http", False)]
        # SPDY requests everything at once in both cases; difference small.
        spdy_gap = abs(results[("spdy", True)] - results[("spdy", False)])
        assert spdy_gap < 2.0


class TestMultiSessionSpdy:
    def test_twenty_sessions_supported(self):
        testbed = Testbed(profile=make_profile("3g"), seed=12)
        page = build_corpus(site_ids=[MEDIUM_SITE])[0]
        _, record = load_one(testbed, "spdy", page, until=120.0,
                             n_spdy_sessions=20)
        assert record.plt is not None
        assert len(testbed.client_stack.all_connections) == 20

    def test_late_binding_proxy(self):
        testbed = Testbed(profile=make_profile("3g"), seed=13,
                          late_binding=True)
        page = build_corpus(site_ids=[MEDIUM_SITE])[0]
        _, record = load_one(testbed, "spdy", page, until=120.0,
                             n_spdy_sessions=4)
        assert record.plt is not None
        assert all(t.complete for t in record.objects)


class TestLoadTimeoutRecovery:
    @pytest.mark.parametrize("protocol", ["http", "spdy"])
    def test_timeout_does_not_wedge_next_page(self, protocol):
        # A page that cannot finish inside the deadline must be abandoned
        # cleanly: its connections go back to the pool (or are replaced)
        # and the next navigation proceeds normally.
        testbed = Testbed(profile=make_profile("3g"), seed=4)
        testbed.browser_config.load_timeout = 3.0   # 3G needs ~6-8 s
        browser = testbed.make_browser(protocol)
        pages = {p.site_id: p
                 for p in build_corpus(site_ids=[SMALL_SITE, MEDIUM_SITE])}
        first = browser.load_page(pages[MEDIUM_SITE])
        testbed.sim.run(until=15.0)
        assert first.timed_out
        assert first.plt is None

        testbed.browser_config.load_timeout = 55.0
        second = browser.load_page(pages[SMALL_SITE])
        testbed.sim.run(until=90.0)
        assert not second.timed_out
        assert second.plt is not None
        assert all(t.complete for t in second.objects)
