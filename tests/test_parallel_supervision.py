"""Self-chaos for the parallel harness: kills, wedges, resume, merge.

The acceptance bar for ``--workers`` is byte-identity: whatever the
supervisor survives — SIGKILLed workers, frozen workers, its own
``kill -9`` — the merged journal must equal the serial run's sha256.
"""

import hashlib
import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.parallel import (CampaignSpec, MergeError, backoff_delay,
                            collect_records, merge_records,
                            record_identity, run_parallel_campaign,
                            run_parallel_chaos, write_merged)
from repro.sanity import JOURNAL_SCHEMA, CampaignJournal, run_campaign, \
    sweep_configs

SMALL = dict(site_ids=[1], think_time=4.0, tail_time=4.0, load_timeout=4.0)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")


def small_configs(runs=2, protocols=("http", "spdy")):
    base = ExperimentConfig(network="3g", seed=100, **SMALL)
    return sweep_configs(base, runs, protocols=list(protocols))


def cli_configs(runs):
    """Exactly the configs ``repro campaign --sites 1 --runs N --timeout 4
    --think-time 4`` builds, so in-process serial references compare
    byte-for-byte against CLI subprocess journals."""
    base = ExperimentConfig(network="3g", seed=0, site_ids=[1],
                            load_timeout=4.0, think_time=4.0)
    return sweep_configs(base, runs, protocols=["http", "spdy"])


def sha256(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


# ----------------------------------------------------------------------
# merge units
# ----------------------------------------------------------------------
def test_record_identity_by_kind():
    assert record_identity({"kind": "trial", "digest": "d", "seed": 3}) \
        == ("trial", "d", 3)
    assert record_identity({"kind": "chaos-trial", "digest": "d",
                            "seed": 3, "index": 7}) \
        == ("chaos-trial", "d", 3, 7)
    assert record_identity({"kind": "note"}) is None


def test_collect_records_collapses_byte_identical_duplicates(tmp_path):
    record = {"kind": "trial", "digest": "d", "seed": 1, "status": "ok",
              "schema": JOURNAL_SCHEMA}
    for name in ("a.jsonl", "b.jsonl"):
        journal = CampaignJournal(str(tmp_path / name))
        journal.append(record)
        journal.close()
    collected = collect_records([str(tmp_path / "a.jsonl"),
                                 str(tmp_path / "b.jsonl"),
                                 str(tmp_path / "missing.jsonl")])
    assert list(collected) == [("trial", "d", 1)]


def test_collect_records_conflict_is_loud(tmp_path):
    base = {"kind": "trial", "digest": "d", "seed": 1,
            "schema": JOURNAL_SCHEMA}
    ja = CampaignJournal(str(tmp_path / "a.jsonl"))
    ja.append(dict(base, status="ok"))
    ja.close()
    jb = CampaignJournal(str(tmp_path / "b.jsonl"))
    jb.append(dict(base, status="failed"))
    jb.close()
    with pytest.raises(MergeError, match="nondeterministic"):
        collect_records([str(tmp_path / "a.jsonl"),
                         str(tmp_path / "b.jsonl")])


def test_merge_orders_serially_and_reports_missing(tmp_path):
    journal = CampaignJournal(str(tmp_path / "w.jsonl"))
    for seed in (2, 0):   # arrival order is not serial order
        journal.append({"kind": "trial", "digest": "d", "seed": seed,
                        "status": "ok", "schema": JOURNAL_SCHEMA})
    journal.close()
    expected = [("trial", "d", 0), ("trial", "d", 1), ("trial", "d", 2)]
    merged = merge_records(expected, [str(tmp_path / "w.jsonl")])
    assert [r["seed"] for r in merged.records] == [0, 2]
    assert merged.missing == [("trial", "d", 1)]
    assert not merged.complete


def test_write_merged_is_atomic_and_loadable(tmp_path):
    journal = CampaignJournal(str(tmp_path / "w.jsonl"))
    journal.append({"kind": "trial", "digest": "d", "seed": 0,
                    "status": "ok", "schema": JOURNAL_SCHEMA})
    journal.close()
    merged = merge_records([("trial", "d", 0)], [str(tmp_path / "w.jsonl")])
    out = tmp_path / "merged.jsonl"
    write_merged(merged, str(out))
    assert [r["seed"] for r in CampaignJournal(str(out)).load()] == [0]
    leftovers = [n for n in os.listdir(tmp_path) if "merge-tmp" in n]
    assert leftovers == []


# ----------------------------------------------------------------------
# policy units
# ----------------------------------------------------------------------
def test_backoff_delay_doubles_then_caps():
    delays = [backoff_delay(attempt) for attempt in range(1, 7)]
    assert delays[:3] == [0.25, 0.5, 1.0]
    assert max(delays) == 4.0


def test_campaign_spec_validates_mode_and_configs():
    with pytest.raises(ValueError, match="unknown campaign mode"):
        CampaignSpec(mode="bogus")
    with pytest.raises(ValueError, match="needs configs"):
        CampaignSpec(mode="campaign")


def test_parallel_resume_requires_journal():
    with pytest.raises(ValueError, match="resume requires"):
        run_parallel_campaign(small_configs(1), resume=True, workers=1)


def test_parallel_resume_without_state_is_a_clear_error(tmp_path):
    with pytest.raises(FileNotFoundError, match="cannot resume"):
        run_parallel_campaign(small_configs(1),
                              journal_path=str(tmp_path / "none.jsonl"),
                              resume=True, workers=1)


# ----------------------------------------------------------------------
# byte identity, healthy runs
# ----------------------------------------------------------------------
def test_parallel_campaign_matches_serial_bytes(tmp_path):
    configs = small_configs(2)
    serial_path = str(tmp_path / "serial.jsonl")
    parallel_path = str(tmp_path / "parallel.jsonl")
    serial = run_campaign(configs, journal_path=serial_path)
    parallel = run_parallel_campaign(configs, journal_path=parallel_path,
                                     workers=2)
    assert sha256(serial_path) == sha256(parallel_path)
    assert serial.records == parallel.records
    assert parallel.parallel["infra_failures"] == 0
    assert not os.path.exists(parallel_path + ".workers")


def test_genuine_failures_are_journaled_not_retried(tmp_path):
    # event_budget=50 wedges every trial *inside* the simulator: that is
    # a genuine, deterministic failure — records say failed, and the
    # supervisor must not burn retries on it.
    configs = small_configs(1)
    serial_path = str(tmp_path / "serial.jsonl")
    parallel_path = str(tmp_path / "parallel.jsonl")
    run_campaign(configs, journal_path=serial_path, event_budget=50)
    result = run_parallel_campaign(configs, journal_path=parallel_path,
                                   workers=2, event_budget=50)
    assert sha256(serial_path) == sha256(parallel_path)
    assert result.failed_count == len(configs)
    assert result.parallel["retries"] == 0
    assert result.parallel["infra_failures"] == 0


# ----------------------------------------------------------------------
# self-chaos: worker kills and wedges
# ----------------------------------------------------------------------
def test_worker_sigkill_mid_campaign_keeps_bytes_identical(
        tmp_path, monkeypatch):
    configs = small_configs(3)          # 6 trials
    serial_path = str(tmp_path / "serial.jsonl")
    run_campaign(configs, journal_path=serial_path)
    rng = random.Random(0xC0FFEE)
    victims = sorted(rng.sample(range(len(configs)), 2))
    monkeypatch.setenv("REPRO_PARALLEL_KILL",
                       ",".join(str(v) for v in victims))
    parallel_path = str(tmp_path / "killed.jsonl")
    result = run_parallel_campaign(configs, journal_path=parallel_path,
                                   workers=2)
    assert sha256(serial_path) == sha256(parallel_path)
    assert result.parallel["infra_failures"] == len(victims)
    assert result.parallel["retries"] == len(victims)
    assert result.parallel["restarts"] == len(victims)
    assert result.parallel["lost"] == 0


def test_wedged_worker_is_killed_and_trial_retried(tmp_path, monkeypatch):
    configs = small_configs(2)
    serial_path = str(tmp_path / "serial.jsonl")
    run_campaign(configs, journal_path=serial_path)
    monkeypatch.setenv("REPRO_PARALLEL_WEDGE", "1")
    parallel_path = str(tmp_path / "wedged.jsonl")
    result = run_parallel_campaign(configs, journal_path=parallel_path,
                                   workers=2, trial_timeout=4.0)
    assert sha256(serial_path) == sha256(parallel_path)
    assert result.parallel["timeouts"] == 1
    assert result.parallel["retries"] == 1


def test_parallel_chaos_matches_serial_bytes_even_after_kills(
        tmp_path, monkeypatch):
    from repro.chaos.campaign import run_chaos_campaign

    serial_path = str(tmp_path / "serial.jsonl")
    serial = run_chaos_campaign(5, master_seed=42, journal_path=serial_path,
                                corpus_dir=str(tmp_path / "corpus-serial"))
    parallel_path = str(tmp_path / "parallel.jsonl")
    parallel = run_parallel_chaos(5, master_seed=42,
                                  journal_path=parallel_path,
                                  corpus_dir=str(tmp_path / "corpus-par"),
                                  workers=2)
    assert sha256(serial_path) == sha256(parallel_path)
    assert serial.records == parallel.records
    assert [os.path.basename(p) for p in serial.corpus_paths] == \
        [os.path.basename(p) for p in parallel.corpus_paths]

    monkeypatch.setenv("REPRO_PARALLEL_KILL", "1,3")
    killed_path = str(tmp_path / "killed.jsonl")
    killed = run_parallel_chaos(5, master_seed=42,
                                journal_path=killed_path,
                                corpus_dir=str(tmp_path / "corpus-kill"),
                                workers=2)
    assert sha256(serial_path) == sha256(killed_path)
    assert killed.parallel["infra_failures"] == 2
    assert killed.parallel["lost"] == 0


def test_differential_parallel_matches_serial_bytes(tmp_path):
    from repro.chaos.differential import run_differential_campaign

    serial_path = str(tmp_path / "serial.jsonl")
    serial = run_differential_campaign(4, master_seed=11,
                                       journal_path=serial_path)
    parallel_path = str(tmp_path / "parallel.jsonl")
    parallel = run_parallel_chaos(4, master_seed=11,
                                  journal_path=parallel_path,
                                  differential=True, workers=2)
    assert sha256(serial_path) == sha256(parallel_path)
    assert serial.records == parallel.records


# ----------------------------------------------------------------------
# supervisor kill -9 and --resume
# ----------------------------------------------------------------------
CLI_RUNS = 12    # 24 trials: slow enough that a kill lands mid-campaign


def _campaign_cli(journal, workers, extra=()):
    return [sys.executable, "-m", "repro", "campaign", "--sites", "1",
            "--runs", str(CLI_RUNS), "--timeout", "4", "--think-time", "4",
            "--journal", journal, "--workers", str(workers), *extra]


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop("REPRO_PARALLEL_KILL", None)
    env.pop("REPRO_PARALLEL_WEDGE", None)
    return env


def test_supervisor_kill9_then_resume_is_byte_identical(tmp_path):
    configs = cli_configs(CLI_RUNS)
    serial_path = str(tmp_path / "serial.jsonl")
    run_campaign(configs, journal_path=serial_path)

    journal = str(tmp_path / "killed9.jsonl")
    proc = subprocess.Popen(_campaign_cli(journal, workers=2),
                            env=_cli_env(), cwd=REPO,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    time.sleep(2.5)                     # let some trials journal
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()

    workdir = journal + ".workers"
    assert os.path.isdir(workdir), "worker journals must survive kill -9"

    resumed = run_parallel_campaign(configs, journal_path=journal,
                                    resume=True, workers=2)
    assert sha256(serial_path) == sha256(journal)
    assert len(resumed.records) == len(configs)
    assert not os.path.exists(workdir)


def test_parallel_cli_sigint_drains_and_resume_completes(tmp_path):
    configs = cli_configs(CLI_RUNS)
    serial_path = str(tmp_path / "serial.jsonl")
    run_campaign(configs, journal_path=serial_path)

    journal = str(tmp_path / "drained.jsonl")
    proc = subprocess.Popen(_campaign_cli(journal, workers=2),
                            env=_cli_env(), cwd=REPO,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    time.sleep(2.5)
    proc.send_signal(signal.SIGINT)
    _, stderr = proc.communicate(timeout=120)
    assert proc.returncode == 130, stderr
    assert "draining" in stderr
    assert "--resume" in stderr

    # The drained journal is a serial-order prefix subset: every line
    # byte-for-byte from the serial journal.
    with open(serial_path, "r", encoding="utf-8") as handle:
        serial_lines = handle.read().splitlines()
    with open(journal, "r", encoding="utf-8") as handle:
        drained_lines = handle.read().splitlines()
    assert set(drained_lines) <= set(serial_lines)

    code = subprocess.run(
        _campaign_cli(journal, workers=2, extra=()) +
        ["--resume", journal], env=_cli_env(), cwd=REPO,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL).returncode
    assert code == 0
    assert sha256(serial_path) == sha256(journal)


# ----------------------------------------------------------------------
# schema refusal (satellite: forward-compat journals)
# ----------------------------------------------------------------------
def test_newer_journal_schema_is_refused(tmp_path):
    path = tmp_path / "future.jsonl"
    record = {"kind": "trial", "digest": "d", "seed": 0, "status": "ok",
              "schema": JOURNAL_SCHEMA + 1}
    path.write_text(json.dumps(record, sort_keys=True) + "\n")
    from repro.sanity import JournalFormatError
    with pytest.raises(JournalFormatError, match="newer than this code"):
        CampaignJournal(str(path)).load()


def test_newer_journal_schema_refusal_reaches_cli(tmp_path, capsys):
    from repro.cli import main
    path = tmp_path / "future.jsonl"
    record = {"kind": "trial", "digest": "d", "seed": 0, "status": "ok",
              "schema": JOURNAL_SCHEMA + 1}
    path.write_text(json.dumps(record, sort_keys=True) + "\n")
    code = main(["campaign", "--sites", "1", "--runs", "1",
                 "--timeout", "4", "--think-time", "4",
                 "--resume", str(path)])
    assert code == 2
    assert "newer than this code" in capsys.readouterr().err
