"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; ``python setup.py develop`` (or ``pip install -e .`` where
wheel is available) both work through this shim.
"""

from setuptools import setup

setup()
