"""Figure 4: page load times over 802.11g/broadband.

Paper claim: "SPDY performs better than HTTP consistently with page load
time improvements ranging from 4% for website 4 to 56% for website 9."
"""

from conftest import emit

from repro.experiments.figures import fig04_plt_wifi
from repro.reporting import render_table


def test_fig04_plt_wifi(once):
    data = once(fig04_plt_wifi, n_runs=3)
    rows = []
    for site in sorted(data["sites"]):
        e = data["sites"][site]
        rows.append([site, e["http"]["mean"], e["http"]["ci_lo"],
                     e["http"]["ci_hi"], e["spdy"]["mean"],
                     e["spdy"]["ci_lo"], e["spdy"]["ci_hi"],
                     data["improvement_pct"][site]])
    emit("Figure 4 — average PLT over WiFi/broadband (s, 95% CI)",
         render_table(["site", "http", "lo", "hi", "spdy", "lo", "hi",
                       "improv%"], rows))
    emit("Figure 4 — headline",
         f"SPDY wins {data['spdy_wins']}/20 sites, "
         f"mean improvement {data['mean_improvement_pct']:.1f}%")

    # SPDY better on a clear majority of sites, and on average.
    assert data["spdy_wins"] >= 12
    assert data["mean_improvement_pct"] > 0
    # WiFi page loads are fast (single-digit seconds).
    for site, entry in data["sites"].items():
        assert entry["http"]["mean"] < 10.0
        assert entry["spdy"]["mean"] < 10.0
