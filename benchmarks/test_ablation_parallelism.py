"""Ablation: HTTP's resilience comes from its connection parallelism.

Sweep Chrome's pool limits (per-domain x total): with a single
connection HTTP degenerates toward SPDY-without-multiplexing and loses
its damage isolation; with the stock 6x32 it holds its own.
"""

import statistics

from conftest import emit

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.testbed import Testbed
from repro.cellular import make_profile
from repro.web import build_corpus
from repro.reporting import render_table

SITES = [3, 7, 12, 15, 18]


def sweep(limits):
    pages = build_corpus(site_ids=SITES)
    results = {}
    for per_domain, total in limits:
        plts = []
        testbed = Testbed(profile=make_profile("3g"), seed=0)
        browser = testbed.make_browser("http", max_per_domain=per_domain,
                                       max_total=total)
        for index, page in enumerate(pages):
            testbed.sim.schedule_at(index * 60.0, browser.load_page, page)
        testbed.sim.run(until=len(pages) * 60.0 + 30.0)
        plts = [r.plt_or(55.0) for r in browser.records]
        results[(per_domain, total)] = statistics.median(plts)
    return results


def test_ablation_parallelism(once):
    limits = [(1, 1), (2, 6), (6, 32), (12, 64)]
    data = once(sweep, limits)
    emit("Ablation — HTTP pool limits vs median PLT (3G)",
         render_table(["per-domain", "total", "median PLT (s)"],
                      [[pd, tot, plt] for (pd, tot), plt in data.items()]))

    # A single connection cripples HTTP badly vs the stock 6x32.
    assert data[(1, 1)] > 1.5 * data[(6, 32)]
    # Parallelism has diminishing returns: doubling past Chrome's limits
    # buys little.
    assert data[(12, 64)] > 0.7 * data[(6, 32)]
