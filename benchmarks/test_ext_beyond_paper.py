"""Extensions beyond the paper's measurements.

Three things the paper describes but could not (or did not) measure:

* **HTTP pipelining** (Figure 1(c)) — "Squid ... only supports a
  rudimentary form of pipelining. For this reason, we did not run
  experiments of HTTP with pipelining turned on."  Our proxy pipelines
  correctly, so we can.
* **SPDY server push** (§2.2, "Server-initiated data exchange") — listed
  among SPDY's optimizations but never exercised in the study.
* **The holistic fix** (§8: "a holistic approach to considering all the
  TCP implementation features") — we compose the paper's remedies:
  reset-RTT-after-idle + late binding over multiple connections.

Plus the multi-user load experiment from §3 ("multiple laptops
simultaneously accessing the test web sites").
"""

import statistics

from conftest import emit

from repro.experiments.multiuser import run_contention_experiment
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.reporting import render_table
from repro.tcp import TcpConfig

SITES = [3, 7, 12, 15, 18]


def _median_plt(config):
    run = run_experiment(config)
    return (statistics.median(run.plts_by_site().values()),
            run.spurious_retransmissions())


def compare_extensions():
    results = {}
    results["http"] = _median_plt(ExperimentConfig(
        protocol="http", network="3g", site_ids=SITES))
    results["http+pipelining"] = _median_plt(ExperimentConfig(
        protocol="http", network="3g", site_ids=SITES,
        http_pipelining=True))
    results["spdy"] = _median_plt(ExperimentConfig(
        protocol="spdy", network="3g", site_ids=SITES))
    fix = TcpConfig(reset_rtt_after_idle=True)
    results["spdy+holistic-fix"] = _median_plt(ExperimentConfig(
        protocol="spdy", network="3g", site_ids=SITES,
        tcp=fix, client_tcp=fix, n_spdy_sessions=4, late_binding=True))
    return results


def test_extensions_beyond_paper(once):
    data = once(compare_extensions)
    emit("Extensions — median PLT over 3G (s)", render_table(
        ["configuration", "median PLT (s)", "spurious retx"],
        [[k, v[0], v[1]] for k, v in data.items()]))

    # Pipelining helps plain HTTP (or at worst is a wash).
    assert data["http+pipelining"][0] <= data["http"][0] * 1.1
    # The paper's holistic fix removes SPDY's spurious retransmissions...
    assert data["spdy+holistic-fix"][1] <= 0.3 * max(1, data["spdy"][1])
    # ...and improves (or at least does not worsen) SPDY's PLT.
    assert data["spdy+holistic-fix"][0] <= data["spdy"][0] * 1.05


def test_multiuser_contention(once):
    def sweep():
        # A 2 Mbps shared sector: six concurrent loaders genuinely
        # saturate the downlink, so the contention effect dominates the
        # per-origin latency jitter.
        return {n: run_contention_experiment(
            n, protocol="http", site_ids=[5, 12], think_time=40.0,
            stagger=1.0, cell_downlink_bps=2.0e6,
            cell_uplink_bps=0.8e6)["median_plt"] for n in (1, 3, 6)}

    data = once(sweep)
    emit("§3 multi-user load — median PLT vs concurrent devices",
         render_table(["devices", "median PLT (s)"],
                      [[n, plt] for n, plt in sorted(data.items())]))
    # More users on the shared cell -> slower pages for everyone.
    assert data[6] > data[3] > data[1]
