"""Figure 8: the proxy-origin link is not the bottleneck.

Paper numbers: origin first byte averages 14 ms (max 46 ms), origin
download 4 ms — yet the proxy takes far longer to push the data to the
client ("SPDY has essentially moved the bottleneck from the client to
the proxy").
"""

from conftest import emit

from repro.experiments.figures import fig08_proxy_queueing
from repro.reporting import render_table


def test_fig08_proxy_queueing(once):
    data = once(fig08_proxy_queueing, site_id=7)
    rows = [[o["order"], f"{o['origin_wait'] * 1000:.1f}",
             f"{o['origin_download'] * 1000:.1f}",
             f"{(o['queueing_delay'] or 0) * 1000:.1f}",
             f"{(o['client_transfer'] or 0) * 1000:.1f}", o["bytes"]]
            for o in data["objects"][:30]]
    emit("Figure 8 — proxy request lifecycle (ms), first 30 objects",
         render_table(["order", "origin wait", "origin dl", "queueing",
                       "to client", "bytes"], rows))
    emit("Figure 8 — means", (
        f"origin wait {data['mean_origin_wait'] * 1000:.1f} ms "
        f"(max {data['max_origin_wait'] * 1000:.1f}), "
        f"origin download {data['mean_origin_download'] * 1000:.1f} ms, "
        f"client transfer {data['mean_client_transfer'] * 1000:.1f} ms"))

    # The paper's regime: origin-side times in low tens of milliseconds...
    assert data["mean_origin_wait"] < 0.060
    assert data["mean_origin_download"] < 0.030
    # ...while delivering to the client takes order-of-magnitude longer.
    assert data["mean_client_transfer"] > 5 * data["mean_origin_wait"]
    assert len(data["objects"]) > 50
