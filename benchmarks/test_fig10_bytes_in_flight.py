"""Figure 10: unacknowledged bytes between proxy and device.

Paper claim: neither protocol dominates in outstanding bytes, but
whichever has more outstanding data during a site's window loads that
site faster ("whenever the outstanding bytes is higher, it results in
lower page load times").
"""

from conftest import emit

from repro.experiments.figures import fig10_bytes_in_flight
from repro.reporting import render_series


def test_fig10_bytes_in_flight(once):
    data = once(fig10_bytes_in_flight)
    for protocol in ("http", "spdy"):
        emit(f"Figure 10 — bytes in flight ({protocol})",
             render_series(data["series"][protocol], title=protocol))
    emit("Figure 10 — headline",
         f"flight-size/PLT winner agreement: "
         f"{data['flight_plt_agreement'] * 100:.0f}% of sites")

    http_peak = max(v for _, v in data["series"]["http"])
    spdy_peak = max(v for _, v in data["series"]["spdy"])
    # Both protocols get substantial data in flight (tens of KB+).
    assert http_peak > 30_000 and spdy_peak > 30_000
    # The correlation the paper reports: in-flight winner == PLT winner
    # for a clear majority of sites.
    assert data["flight_plt_agreement"] >= 0.5
