"""Figure 13: retransmission bursts affect a single TCP stream.

Paper claim: HTTP has many retransmissions in total, but they come in
bursts confined to one connection at a time, so the other parallel
connections keep the path utilised — HTTP's late binding of requests to
connections routes around the damage.
"""

from conftest import emit

from repro.experiments.figures import fig13_retx_bursts
from repro.reporting import render_table


def test_fig13_retx_bursts(once):
    data = once(fig13_retx_bursts)
    top = sorted(data["retx_by_connection"].items(), key=lambda kv: -kv[1])
    emit("Figure 13 — retransmissions per connection (top 10)",
         render_table(["connection", "retx"], top[:10]))
    emit("Figure 13 — headline", (
        f"{len(data['events'])} retransmissions across "
        f"{data['connections_with_retx']} of {data['connections_total']} "
        f"connections; burst isolation "
        f"{data['burst_isolation_fraction'] * 100:.0f}%"))

    # Retransmissions touch only a small minority of HTTP's connections.
    assert data["connections_with_retx"] < 0.5 * data["connections_total"]
    # Bursty and connection-local: within a dense window the dominant
    # stream owns a plurality of the retransmissions, and at least one
    # stream takes a concentrated multi-packet burst.
    assert data["burst_isolation_fraction"] > 0.3
    assert max(data["retx_by_connection"].values()) >= 4
    assert len(data["events"]) > 20
