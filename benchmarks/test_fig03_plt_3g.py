"""Figure 3: page load times over 3G, HTTP vs SPDY.

Paper claim: the box plots "do not show a convincing winner between HTTP
and SPDY" — some sites favour one, some the other, many are close.
"""

from conftest import emit

from repro.experiments.figures import fig03_plt_3g
from repro.reporting import render_boxes


def test_fig03_plt_3g(once):
    data = once(fig03_plt_3g, n_runs=2)
    emit("Figure 3 — PLT over 3G (seconds)",
         render_boxes(data["sites"], title="HTTP vs SPDY box statistics"))
    emit("Figure 3 — headline", (
        f"median PLT: http={data['median_plt']['http']:.2f}s "
        f"spdy={data['median_plt']['spdy']:.2f}s; "
        f"SPDY wins {data['spdy_wins']}/{len(data['sites'])} sites; "
        f"retx http={data['retransmissions']['http']:.0f} "
        f"spdy={data['retransmissions']['spdy']:.0f}"))

    sites = data["sites"]
    assert len(sites) == 20
    # No convincing winner: each protocol takes at least a couple of
    # sites, and the bulk of sites show no large difference.
    wins = data["spdy_wins"]
    assert wins >= 2, "HTTP sweeps: unlike the paper"
    assert len(sites) - wins >= 2, "SPDY sweeps: too rosy"
    close = sum(
        1 for s in sites
        if abs(sites[s]["http"]["mean"] - sites[s]["spdy"]["mean"])
        < 0.15 * sites[s]["http"]["mean"])
    assert close >= len(sites) // 3, \
        "most sites should show no significant difference"
    # Overall medians are close (within a third of each other).
    h, s = data["median_plt"]["http"], data["median_plt"]["spdy"]
    assert 0.75 < h / s < 1.33
    # 3G page loads live in the multi-second regime of the paper's Fig. 3.
    assert 3.0 < h < 30.0 and 3.0 < s < 30.0
    # HTTP retransmits more than SPDY in absolute count (117 vs 67).
    assert data["retransmissions"]["http"] > data["retransmissions"]["spdy"]
