"""Figure 16: page load times over LTE.

Paper claims: both protocols load considerably faster than on 3G;
retransmissions drop by an order of magnitude (8.9/7.5 vs 117/63); SPDY
catches up after the initial pages thanks to the gentler state machine.
"""

from conftest import emit

from repro.experiments.figures import fig03_plt_3g, fig16_plt_lte
from repro.reporting import render_boxes


def test_fig16_plt_lte(once):
    def both():
        from repro.experiments.runner import ExperimentConfig
        # Fixed environment for a clean cross-network comparison.
        stable = ExperimentConfig(environment_variability=0.0)
        return (fig16_plt_lte(n_runs=2, base=stable),
                fig03_plt_3g(n_runs=2, base=stable))

    lte, g3 = once(both)
    emit("Figure 16 — PLT over LTE (seconds)", render_boxes(lte["sites"]))
    emit("Figure 16 — headline", (
        f"LTE medians http={lte['median_plt']['http']:.2f}s "
        f"spdy={lte['median_plt']['spdy']:.2f}s vs 3G "
        f"http={g3['median_plt']['http']:.2f}s "
        f"spdy={g3['median_plt']['spdy']:.2f}s; LTE retx "
        f"http={lte['retransmissions']['http']:.0f} "
        f"spdy={lte['retransmissions']['spdy']:.0f}"))

    for protocol in ("http", "spdy"):
        # Considerably faster than 3G.
        assert lte["median_plt"][protocol] < 0.6 * g3["median_plt"][protocol]
        # Far fewer retransmissions than 3G.
        assert lte["retransmissions"][protocol] < \
            0.8 * g3["retransmissions"][protocol]
    # On LTE the two protocols' retransmission counts are of the same
    # order (8.9 vs 7.5 in the paper) — no 3G-style 2x gap.
    assert lte["retransmissions"]["spdy"] < \
        2.0 * max(1.0, lte["retransmissions"]["http"])
