"""Figure 17: SPDY's congestion window and retransmissions over LTE.

Paper claim: "retransmissions occur after an idle period in LTE also ...
the problem persists even with LTE, albeit less frequently than with 3G."
"""

from conftest import emit

from repro.experiments.figures import fig11_cwnd_run, fig17_lte_cwnd
from repro.reporting import render_series


def test_fig17_lte_cwnd(once):
    def both():
        return (fig17_lte_cwnd(seed=0),
                fig11_cwnd_run(seed=0))

    lte, g3 = once(both)
    emit("Figure 17 — SPDY cwnd over LTE",
         render_series([(t, c) for t, c, _ in lte["samples"]],
                       title="cwnd (segments)"))
    emit("Figure 17 — headline", (
        f"LTE retransmissions {len(lte['retransmissions'])} "
        f"({lte['spurious_after_idle']} spurious) vs 3G "
        f"{len(g3['retransmissions'])}"))

    # The pathology persists on LTE: spurious retransmissions still occur.
    assert lte["spurious_after_idle"] >= 1
    # But less frequently than on 3G.
    assert len(lte["retransmissions"]) < len(g3["retransmissions"])
