"""Ablation: idleness is the trigger.

Sweep the think time between page visits against the 3G demotion timers
(DCH->FACH at 5 s, FACH->IDLE at +12 s).  Short think times keep the
radio active and suppress the idle pathology; the paper's 60 s guarantees
a cold radio at every page start.
"""

import statistics

from conftest import emit

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.reporting import render_table

SITES = [5, 9, 12, 13]  # small/medium sites so loads finish within windows


def sweep(think_times):
    results = {}
    for think in think_times:
        config = ExperimentConfig(protocol="spdy", network="3g", seed=0,
                                  site_ids=SITES, think_time=think,
                                  load_timeout=min(think - 2.0, 55.0),
                                  background_enabled=False)
        run = run_experiment(config)
        results[think] = {
            "spurious": run.spurious_retransmissions(),
            "promotions": run.testbed.radio.promotions,
            "median_plt": statistics.median(run.plts_by_site().values()),
        }
    return results


def test_ablation_think_time(once):
    data = once(sweep, [4.0, 12.0, 30.0, 60.0])
    emit("Ablation — think time vs radio idleness (SPDY, 3G)", render_table(
        ["think (s)", "promotions", "spurious retx", "median PLT (s)"],
        [[t, v["promotions"], v["spurious"], v["median_plt"]]
         for t, v in sorted(data.items())]))

    # Sub-demotion think time keeps the radio warm: one initial promotion.
    assert data[4.0]["promotions"] <= 2
    # The paper's 60 s think time promotes on (almost) every page.
    assert data[60.0]["promotions"] >= len(SITES) - 1
    # Idleness costs PLT: cold-radio visits are slower on median.
    assert data[60.0]["median_plt"] >= data[4.0]["median_plt"]
