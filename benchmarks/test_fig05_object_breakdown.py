"""Figure 5: split of average object download times into components.

Paper claims: send time is negligible for both; HTTP pays a large *init*
(waiting for/opening connections); SPDY's init is near zero but its
*wait* (request sent -> first byte) exceeds HTTP's, negating the saving.
"""

from conftest import emit

from repro.experiments.figures import fig05_object_breakdown
from repro.reporting import render_table


def test_fig05_object_breakdown(once):
    data = once(fig05_object_breakdown, n_runs=1)
    rows = []
    for site in sorted(data["sites"]):
        e = data["sites"][site]
        rows.append([site,
                     e["http"]["init"], e["http"]["send"], e["http"]["wait"],
                     e["http"]["receive"],
                     e["spdy"]["init"], e["spdy"]["send"], e["spdy"]["wait"],
                     e["spdy"]["receive"]])
    emit("Figure 5 — object time components over 3G (seconds)",
         render_table(["site", "h.init", "h.send", "h.wait", "h.recv",
                       "s.init", "s.send", "s.wait", "s.recv"], rows))
    mean = data["mean"]
    emit("Figure 5 — means", str(mean))

    # Send is almost invisible for both protocols (a small fraction of
    # the wait + receive path).
    for protocol in ("http", "spdy"):
        assert mean[protocol]["send"] < 0.1
        assert mean[protocol]["send"] < 0.1 * (
            mean[protocol]["wait"] + mean[protocol]["receive"])
    # HTTP's init dominates SPDY's (connection setup/pool wait).
    assert mean["http"]["init"] > 4 * mean["spdy"]["init"]
    # SPDY's wait exceeds HTTP's wait AND exceeds HTTP's init — the
    # paper's "this negates any advantages SPDY gains".
    assert mean["spdy"]["wait"] > mean["http"]["wait"]
    assert mean["spdy"]["wait"] > mean["http"]["init"]
