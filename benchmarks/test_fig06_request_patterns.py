"""Figure 6: when the browser issues object requests.

Paper claims: SPDY does *not* request everything at once — JS/CSS
interdependencies produce stepped request waves; HTTP requests trickle
continuously, gated by its connection pool.
"""

from conftest import emit

from repro.experiments.figures import fig06_request_patterns
from repro.reporting import render_table


def test_fig06_request_patterns(once):
    data = once(fig06_request_patterns)
    rows = []
    for site, entry in sorted(data["sites"].items()):
        for protocol in ("http", "spdy"):
            times = entry[protocol]
            n = len(times)
            rows.append([site, protocol, n,
                         times[0], times[n // 4], times[n // 2],
                         times[3 * n // 4], times[-1]])
    emit("Figure 6 — request issue times (s relative to load start)",
         render_table(["site", "proto", "objs", "first", "p25", "p50",
                       "p75", "last"], rows))
    emit("Figure 6 — SPDY step gaps (max inter-request gap, s)",
         str({k: round(v, 2) for k, v in data["spdy_step_gaps"].items()}))

    for site, entry in data["sites"].items():
        http_times, spdy_times = entry["http"], entry["spdy"]
        assert len(http_times) == len(spdy_times)
        # Stepped discovery: SPDY's requests span well beyond one RTT —
        # they are NOT all issued at once.
        assert spdy_times[-1] - spdy_times[0] > 0.5
    # At least one dependency-heavy site shows a visible step (a gap
    # while a script downloads and executes).
    assert max(data["spdy_step_gaps"].values()) > 0.3
