"""Figure 15: disabling tcp_slow_start_after_idle.

Paper claim: "the benefits vary across different websites" — disabling
the idle restart helps some sites and hurts others; it is not the fix.
"""

from conftest import emit

from repro.experiments.figures import fig15_ss_after_idle
from repro.reporting import render_table


def test_fig15_ss_after_idle(once):
    data = once(fig15_ss_after_idle, n_runs=2)
    rows = [[site, entry.get("http", 0.0), entry.get("spdy", 0.0)]
            for site, entry in sorted(data["sites"].items())]
    emit("Figure 15 — PLT difference, disabled minus enabled (ms; "
         "negative = disabling helps)",
         render_table(["site", "http dMs", "spdy dMs"], rows))
    emit("Figure 15 — headline", (
        f"mean difference {data['mean_difference_ms']:.0f} ms; "
        f"{data['sites_helped']} site-protocol pairs helped, "
        f"{data['sites_hurt']} hurt"))

    # Mixed outcome, as in the paper: both helped and hurt cases exist.
    assert data["sites_helped"] > 0
    assert data["sites_hurt"] > 0
    # And the net effect is modest — no silver bullet (within ±2 s).
    assert abs(data["mean_difference_ms"]) < 2000
