"""Figure 9: average data transferred from proxy to device per second.

Paper claim: "HTTP, on average, achieves higher data transfers than
SPDY. The difference sometimes is as high as 100%." — despite identical
network capacity, because SPDY's single connection cannot keep the pipe
as full as HTTP's aggregate of parallel connections.
"""

from conftest import emit

from repro.experiments.figures import fig09_throughput
from repro.reporting import render_series


def test_fig09_throughput(once):
    data = once(fig09_throughput, n_runs=2)
    for protocol in ("http", "spdy"):
        emit(f"Figure 9 — avg bytes/s to the device ({protocol})",
             render_series(data["series"][protocol], title=protocol))
    emit("Figure 9 — headline",
         f"mean active-bin ratio http/spdy = {data['mean_active_ratio']:.2f}; "
         f"peaks http={data['peak']['http'] / 1024:.0f}KB/s "
         f"spdy={data['peak']['spdy'] / 1024:.0f}KB/s")

    # HTTP transfers more per active second on average...
    assert data["mean_active_ratio"] > 1.0
    # ...sometimes approaching the paper's "as high as 100%" (we accept
    # any clear advantage).
    assert data["mean_active_ratio"] < 5.0
    # Both peak near (but under) the DCH line rate of 250 KB/s.
    for protocol in ("http", "spdy"):
        assert data["peak"][protocol] < 2.0e6 / 8 * 1.2
        assert data["peak"][protocol] > 50_000
