"""Table 2: HTTP and SPDY with TCP Reno vs TCP CUBIC.

Paper claims: "little to distinguish between Reno and Cubic"; average
throughput similar; SPDY with CUBIC grows by far the largest congestion
window (max 197 segments vs Reno's 48); HTTP's per-connection cwnd stays
small (~10) because its transfers are short.
"""

from conftest import emit

from repro.experiments.tables import table2_tcp_variants
from repro.reporting import render_table


def test_table2_tcp_variants(once):
    data = once(table2_tcp_variants, n_runs=1)
    keys = ["http/reno", "spdy/reno", "http/cubic", "spdy/cubic"]
    emit("Table 2 — TCP variant comparison", render_table(
        ["config", "avg PLT (ms)", "avg thr (KB/s)", "max thr (KB/s)",
         "avg cwnd", "max cwnd"],
        [[k, data[k]["avg_plt_ms"], data[k]["avg_throughput_kbps"],
          data[k]["max_throughput_kbps"], data[k]["avg_cwnd"],
          data[k]["max_cwnd"]] for k in keys]))

    # Little to distinguish: PLTs within 35% across variants per protocol.
    for protocol in ("http", "spdy"):
        reno = data[f"{protocol}/reno"]["avg_plt_ms"]
        cubic = data[f"{protocol}/cubic"]["avg_plt_ms"]
        assert 0.65 < reno / cubic < 1.55
    # SPDY+CUBIC grows the largest window; Reno grows less.
    assert data["cubic_grows_cwnd_larger_for_spdy"]
    # SPDY's single connection grows a much larger cwnd than HTTP's
    # short-lived parallel connections (52 vs 10.6 in the paper).
    assert data["spdy/cubic"]["avg_cwnd"] > 1.5 * data["http/cubic"]["avg_cwnd"]
