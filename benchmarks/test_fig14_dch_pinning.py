"""Figure 14: keeping the radio in DCH with a continual ping.

Paper claims: with pings, far more pages load under 8 s; retransmissions
drop dramatically (~91% HTTP, ~96% SPDY) because the RTT estimate is no
longer invalidated by the state machine; but pinning wastes radio
resources and battery.
"""

from conftest import emit

from repro.experiments.figures import fig14_dch_pinning
from repro.reporting import render_cdf, render_table


def test_fig14_dch_pinning(once):
    data = once(fig14_dch_pinning, n_runs=2)
    emit("Figure 14 — PLT CDFs", render_cdf(data["cdf"]))
    emit("Figure 14 — retransmissions & energy", render_table(
        ["condition", "retx", "energy (J)"],
        [[k, data["retransmissions"][k], data["energy_mj"][k] / 1000.0]
         for k in sorted(data["retransmissions"])]))
    emit("Figure 14 — headline", (
        f"retx reduction: http {data['http_retx_reduction_pct']:.0f}%, "
        f"spdy {data['spdy_retx_reduction_pct']:.0f}%; "
        f"frac<8s http {data['http_frac_under_8s']}, "
        f"spdy {data['spdy_frac_under_8s']}"))

    for protocol in ("http", "spdy"):
        # Pinning improves the PLT distribution...
        frac = data[f"{protocol}_frac_under_8s"]
        assert frac["ping"] > frac["noping"]
        # ...and reduces retransmissions (fully reproduced for SPDY; for
        # HTTP our testbed retains some load-time retransmissions that
        # pinning cannot remove — see EXPERIMENTS.md).
        assert data[f"{protocol}_retx_reduction_pct"] > 5.0
        # ...but costs battery: pinned runs burn more radio energy.
        assert data["energy_mj"][f"{protocol}/ping"] > \
            data["energy_mj"][f"{protocol}/noping"]
    # SPDY benefits the most (96% vs 91% in the paper): its single
    # connection is the state machine's main victim.
    assert data["spdy_retx_reduction_pct"] > 40.0
    assert data["spdy_retx_reduction_pct"] >= \
        data["http_retx_reduction_pct"]
