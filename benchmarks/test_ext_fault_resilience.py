"""Extension: fault injection and graceful degradation.

The paper measured SPDY on clean (if variable) cellular links.  Real
mobile links also fail: connections are reset by middleboxes, the radio
hands over between cells, and coverage drops outright.  SPDY multiplexes
an entire page over one TCP connection, so a single mid-page reset (or a
blackout spanning one) costs it the whole page, while HTTP's six-way
parallelism loses one object and a browser retry hides even that.

This bench injects the same fault plan into both protocols, with and
without the recovery machinery (stall watchdog + SPDY session
re-establishment), and checks the expected asymmetry.
"""

from conftest import emit

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.reporting import render_fault_summary, render_table

SITE = 12        # 29 objects, 688 KB: plenty of mid-page exposure
FAULT_AT = 3.0   # late enough that the radio is up and transfers in flight


def _one(protocol, fault_plan, recovery):
    config = ExperimentConfig(protocol=protocol, network="3g",
                              site_ids=[SITE], seed=3, think_time=20.0,
                              fault_plan=fault_plan, recovery=recovery)
    run = run_experiment(config)
    page = run.pages[0]
    return {
        "plt": page.plt_or(config.load_timeout),
        "timed_out": page.timed_out,
        "retries": page.retries,
        "report": run.fault_report,
    }


def resilience_matrix():
    results = {}
    for protocol in ("http", "spdy"):
        results[protocol, "baseline"] = _one(protocol, None, True)
        for plan in (f"rst@{FAULT_AT}", f"blackout@{FAULT_AT}:5"):
            kind = plan.split("@")[0]
            results[protocol, kind] = _one(protocol, plan, True)
            results[protocol, f"{kind}-norecover"] = _one(protocol, plan,
                                                          False)
    return results


def test_fault_resilience(once):
    data = once(resilience_matrix)
    rows = [[f"{proto} / {scenario}", cell["plt"],
             "timeout" if cell["timed_out"] else "ok", cell["retries"]]
            for (proto, scenario), cell in sorted(data.items())]
    emit("Fault resilience — PLT of site 12 over 3G (s)",
         render_table(["configuration", "PLT (s)", "status", "retries"],
                      rows))
    emit("Example fault log (spdy / rst)",
         render_fault_summary(data["spdy", "rst"]["report"]))

    scenarios = ("baseline", "rst", "rst-norecover", "blackout",
                 "blackout-norecover")
    http_base, http_rst, http_rst_frail, http_bo, http_bo_frail = \
        [data["http", s] for s in scenarios]
    spdy_base, spdy_rst, spdy_rst_frail, spdy_bo, spdy_bo_frail = \
        [data["spdy", s] for s in scenarios]

    # Without recovery, a mid-page RST is fatal for SPDY (one connection
    # carries the page) but survivable for HTTP.
    assert spdy_rst_frail["timed_out"]
    assert not http_rst_frail["timed_out"]

    # A blackout spanning the load degrades SPDY more than HTTP even
    # without recovery: its single pipe serializes the whole backlog.
    spdy_penalty = spdy_bo_frail["plt"] - spdy_base["plt"]
    http_penalty = http_bo_frail["plt"] - http_base["plt"]
    assert spdy_penalty > http_penalty

    # With the recovery machinery, every page completes under every fault.
    for cell in (http_rst, http_bo, spdy_rst, spdy_bo):
        assert not cell["timed_out"]

    # Recovery is not free: the faulted SPDY load is slower than baseline.
    assert spdy_rst["plt"] > spdy_base["plt"]


def test_fault_replay_determinism(once):
    def replay():
        plan = f"rst@{FAULT_AT},blackout@8:2,handover@12"
        runs = [_one("spdy", plan, True) for _ in range(2)]
        return runs

    first, second = once(replay)
    assert first["report"]["log"] == second["report"]["log"]
    assert first["plt"] == second["plt"]
    emit("Replay determinism — identical fault logs across runs",
         "\n".join(first["report"]["log"]))
