"""Table 1: characteristics of the 20 tested websites.

Checks our synthesized corpus against the published per-site statistics
(object counts, bytes, domain spread, object-kind mix).
"""

from conftest import emit

from repro.experiments.tables import table1_corpus
from repro.reporting import render_table


def test_table1_corpus(once):
    data = once(table1_corpus)
    rows = data["rows"]
    headers = ["site", "category", "objs", "paper", "KB", "paperKB",
               "domains", "paper", "js/css", "paper", "imgs", "paper",
               "depth"]
    emit("Table 1 — corpus characteristics (built vs paper)", render_table(
        headers,
        [[r["site_id"], r["category"], r["built_objects"],
          round(r["paper_objects"]), round(r["built_kb"]), r["paper_kb"],
          r["built_domains"], round(r["paper_domains"]), r["built_js_css"],
          round(r["paper_js_css"]), r["built_images"],
          round(r["paper_images"]), r["max_depth"]] for r in rows]))

    assert len(rows) == 20
    for r in rows:
        assert r["built_objects"] == max(1, round(r["paper_objects"]))
        assert abs(r["built_kb"] - r["paper_kb"]) / r["paper_kb"] < 0.01
        assert r["built_domains"] == max(1, round(r["paper_domains"]))
