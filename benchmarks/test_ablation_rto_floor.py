"""Ablation: the RTO floor determines how spurious the timeouts are.

The paper's diagnosis is that the RTO (a few hundred ms) sits far below
the ~2 s promotion delay.  Raising the minimum RTO toward the promotion
delay removes the spurious timeouts without touching the radio — the
quantitative backbone of the §6.2.1 recommendation.
"""

import statistics

from conftest import emit

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.tcp import TcpConfig
from repro.reporting import render_table

SITES = [5, 7, 11, 15, 20]


def sweep(floors):
    results = {}
    for floor in floors:
        tcp = TcpConfig(min_rto=floor)
        config = ExperimentConfig(protocol="spdy", network="3g", seed=0,
                                  site_ids=SITES, tcp=tcp, client_tcp=tcp)
        run = run_experiment(config)
        results[floor] = {
            "spurious": run.spurious_retransmissions(),
            "retx": run.total_retransmissions(),
            "median_plt": statistics.median(run.plts_by_site().values()),
        }
    return results


def test_ablation_rto_floor(once):
    data = once(sweep, [0.2, 0.5, 1.0, 2.5])
    emit("Ablation — minimum RTO vs spurious retransmissions (SPDY, 3G)",
         render_table(["min RTO (s)", "spurious", "total retx",
                       "median PLT (s)"],
                      [[f, v["spurious"], v["retx"], v["median_plt"]]
                       for f, v in sorted(data.items())]))

    # A floor above the promotion delay eliminates the spurious timeouts.
    assert data[2.5]["spurious"] <= max(1.0, 0.2 * data[0.2]["spurious"])
    # The Linux default floor (200 ms) leaves the pathology intact.
    assert data[0.2]["spurious"] >= 3
