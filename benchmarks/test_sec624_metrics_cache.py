"""§6.2.4: disabling the Linux TCP destination metrics cache.

Paper claim: with caching disabled "both HTTP and SPDY experience reduced
page load times ... for 50% of the runs, the improvement was about 35%.
However, there was very little to distinguish between HTTP and SPDY."
"""

from conftest import emit

from repro.experiments.tables import sec624_metrics_cache
from repro.reporting import render_table


def test_sec624_metrics_cache(once):
    data = once(sec624_metrics_cache, n_runs=1)
    keys = ["http/cache", "http/no-cache", "spdy/cache", "spdy/no-cache"]
    emit("§6.2.4 — TCP metrics cache on vs off (3G)", render_table(
        ["condition", "mean PLT (s)", "median PLT (s)"],
        [[k, data[k]["mean_plt"], data[k]["median_plt"]] for k in keys]))
    emit("§6.2.4 — headline", (
        f"median improvement from disabling: "
        f"http {data['http_improvement_pct']:.0f}%, "
        f"spdy {data['spdy_improvement_pct']:.0f}%"))

    # Disabling the cache does not hurt; cached (possibly damaged)
    # statistics stop being inherited.
    assert data["http_improvement_pct"] > -10.0
    assert data["spdy_improvement_pct"] > -10.0
    # And the two protocols stay comparable either way.
    on = data["http/no-cache"]["median_plt"] / data["spdy/no-cache"]["median_plt"]
    assert 0.4 < on < 2.5
