"""Shared bench configuration.

Every bench runs its experiment exactly once (``pedantic`` with one
round): the interesting output is the reproduced figure/table, not
timing statistics of the simulator itself.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run ``fn`` once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner


def emit(title: str, body: str) -> None:
    """Print a figure/table rendering into the bench log."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
