"""Figure 11: cwnd, ssthresh, outstanding data and retransmissions for a
full SPDY run over 3G.

Paper claims: cwnd bounds the outstanding data; both cwnd and ssthresh
fluctuate throughout the run instead of stabilising; retransmissions
recur across the whole run and are overwhelmingly spurious.
"""

from conftest import emit

from repro.experiments.figures import fig11_cwnd_run
from repro.reporting import render_series


def test_fig11_cwnd_run(once):
    data = once(fig11_cwnd_run)
    cwnd_series = [(t, c) for t, c, _, _ in data["samples"]]
    emit("Figure 11 — SPDY connection cwnd over the run",
         render_series(cwnd_series, title="cwnd (segments)"))
    emit("Figure 11 — events", (
        f"{len(data['retransmissions'])} retransmissions "
        f"({data['spurious_fraction'] * 100:.0f}% spurious), "
        f"{len(data['idle_restarts'])} idle restarts"))

    samples = data["samples"]
    assert len(samples) > 1000
    # cwnd is the ceiling on outstanding data (allow slack for the
    # instants where a loss just shrank cwnd under the in-flight count).
    violations = sum(1 for _, cwnd, _, inflight in samples
                     if inflight > cwnd + 3)
    assert violations / len(samples) < 0.2
    # cwnd and ssthresh keep fluctuating: the run never settles.
    cwnds = [c for _, c, _, _ in samples]
    assert max(cwnds) > 4 * min(cwnds)
    ssthreshes = [s for _, _, s, _ in samples if s < 1e5]
    assert ssthreshes, "ssthresh was never reduced — no loss episodes?"
    assert max(ssthreshes) > 2 * min(ssthreshes)
    # Retransmissions recur through the run; a large share is spurious
    # (promotion-delay timeouts), the rest genuine radio loss.
    assert len(data["retransmissions"]) > 10
    assert data["spurious_fraction"] > 0.3
    # Idle restarts happen every think-time gap.
    assert len(data["idle_restarts"]) >= 10
