"""Figure 7: the controlled 50-image test pages (same vs different domains).

Paper numbers (3G): HTTP 5.29 s same-domain / 6.80 s different-domains;
SPDY 7.22 s / 8.38 s.  Claims: with no interdependencies SPDY requests
everything at once, yet still does not beat HTTP — "prioritization alone
is not a panacea"; HTTP is the one affected by domain spread.
"""

from conftest import emit

from repro.experiments.figures import fig07_test_pages
from repro.reporting import render_table


def test_fig07_test_pages(once):
    data = once(fig07_test_pages, n_runs=3)
    emit("Figure 7 — test-page PLTs over 3G (s)", render_table(
        ["configuration", "plt"],
        [[k, v] for k, v in sorted(data["plt"].items())]))
    for key, sched in data["schedules"].items():
        times = sched["request_times"]
        emit(f"Figure 7 — request schedule {key}",
             f"n={len(times)} first={times[0]:.2f}s last={times[-1]:.2f}s")

    plt = data["plt"]
    # SPDY issues all 50 requests in one quick burst (no dependencies).
    spdy_times = data["schedules"]["spdy/same"]["request_times"]
    assert spdy_times[-1] - spdy_times[1] < 1.0
    # HTTP's schedule is spread by its connection pool.
    http_times = data["schedules"]["http/same"]["request_times"]
    assert http_times[-1] - http_times[1] > spdy_times[-1] - spdy_times[1]
    # Removing interdependencies does NOT hand SPDY the win on 3G.
    assert plt["spdy/same"] > 0.8 * plt["http/same"]
    # All four configurations land in the paper's 4-12 s regime.
    for v in plt.values():
        assert 2.0 < v < 15.0
