"""Figure 12: zooming into consecutive sites — the §5.5.1 causal chain.

Paper narrative: after an idle period the cwnd is reset (RFC 2861), the
radio must be promoted, the stale RTO fires spuriously, and the spurious
timeout drags ssthresh down with it; cwnd then crawls in congestion
avoidance.
"""

from conftest import emit

from repro.experiments.figures import fig12_idle_zoom
from repro.reporting import render_series


def test_fig12_idle_zoom(once):
    data = once(fig12_idle_zoom, seed=0, window=(40.0, 250.0))
    cwnd_series = [(t, c) for t, c, _, _ in data["samples"]]
    emit("Figure 12 — cwnd, zoomed window",
         render_series(cwnd_series, title="cwnd (segments), t in window"))
    emit("Figure 12 — events in window", (
        f"retransmissions: {len(data['retransmissions'])}, "
        f"idle restarts: {len(data['idle_restarts'])}, "
        f"ssthresh before/after first retx: "
        f"{data.get('ssthresh_before_retx')} -> "
        f"{data.get('ssthresh_after_retx')}"))

    # The window covers several 60-second site visits: idle restarts and
    # retransmissions must both appear.
    assert len(data["idle_restarts"]) >= 1
    assert len(data["retransmissions"]) >= 1
    # The signature collapse: ssthresh after the first retransmission in
    # the window is below its value before.
    if "ssthresh_before_retx" in data:
        assert data["ssthresh_after_retx"] <= data["ssthresh_before_retx"]
