"""Ablation: the idle->DCH promotion delay drives the whole story.

Sweep the 3G promotion delay from 0 to 3 s and measure SPDY's spurious
retransmissions: with no promotion delay the cellular network behaves
like WiFi and the pathology disappears; at the paper's ~2 s it is in
full force.
"""

import statistics

from conftest import emit

from repro.cellular import UmtsRrcConfig, three_g_profile
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.reporting import render_table

SITES = [5, 7, 11, 15, 20]  # background-heavy subset


def sweep(delays, n_runs=1):
    results = {}
    for delay in delays:
        profile = three_g_profile(
            rrc_config=UmtsRrcConfig(idle_to_dch_delay=delay,
                                     fach_to_dch_delay=min(delay, 1.5)))
        spurious, plts = [], []
        for seed in range(n_runs):
            config = ExperimentConfig(protocol="spdy", network="3g",
                                      profile=profile, seed=seed,
                                      site_ids=SITES)
            run = run_experiment(config)
            spurious.append(run.spurious_retransmissions())
            plts.extend(run.plts_by_site().values())
        results[delay] = {
            "spurious": statistics.mean(spurious),
            "median_plt": statistics.median(plts),
        }
    return results


def test_ablation_promotion_delay(once):
    data = once(sweep, [0.0, 0.5, 1.0, 2.0, 3.0])
    emit("Ablation — promotion delay vs SPDY spurious retransmissions",
         render_table(["promotion (s)", "spurious retx", "median PLT (s)"],
                      [[d, v["spurious"], v["median_plt"]]
                       for d, v in sorted(data.items())]))

    # No promotion delay => (almost) no spurious retransmissions.
    assert data[0.0]["spurious"] <= max(1.0, data[2.0]["spurious"] * 0.5)
    # The paper's 2 s delay produces a clear pathology.
    assert data[2.0]["spurious"] >= 3
    # More promotion delay never helps PLT.
    assert data[3.0]["median_plt"] >= data[0.0]["median_plt"] * 0.9
