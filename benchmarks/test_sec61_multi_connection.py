"""§6.1: multiple SPDY connections, with and without late binding.

Paper claims: spreading SPDY streams over 20 statically-bound
connections "did not help in improving the page load times"; what is
required is *late binding* of responses to whichever connection is
available at that instant.
"""

from conftest import emit

from repro.experiments.tables import sec61_multi_connection
from repro.reporting import render_table


def test_sec61_multi_connection(once):
    data = once(sec61_multi_connection, n_runs=1)
    keys = ["single", "multi20", "multi20-late-binding"]
    emit("§6.1 — SPDY connection strategies over 3G", render_table(
        ["strategy", "mean PLT (s)", "median PLT (s)", "retx"],
        [[k, data[k]["mean_plt"], data[k]["median_plt"],
          data[k]["retransmissions"]] for k in keys]))

    single = data["single"]["median_plt"]
    multi = data["multi20"]["median_plt"]
    late = data["multi20-late-binding"]["median_plt"]
    # 20 statically-bound connections are no silver bullet (within 30%
    # of single-connection SPDY, either direction) — the paper's finding.
    assert 0.7 < multi / single < 1.3
    # Late binding does no harm and beats plain single-connection SPDY
    # or static multi-connection (at 20 sessions the frames spread thin,
    # so the win over static binding is small; see EXPERIMENTS.md).
    assert late <= max(single, multi) * 1.10
    assert late < single * 1.05 or late < multi * 1.05
