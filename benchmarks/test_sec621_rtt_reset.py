"""§6.2.1: the paper's proposed remedy — reset the RTT estimate after idle.

Paper claim: resetting the RTT estimate (and hence the RTO, to a
conservative multi-second initial value) makes the RTO outlast the 3G
promotion delay, "avoiding spurious timeouts and unnecessary
retransmissions ... ultimately reducing page load times".
"""

from conftest import emit

from repro.experiments.tables import sec621_rtt_reset
from repro.reporting import render_table


def test_sec621_rtt_reset(once):
    data = once(sec621_rtt_reset, n_runs=1)
    keys = ["http/default", "http/reset-rtt", "spdy/default",
            "spdy/reset-rtt"]
    emit("§6.2.1 — resetting the RTT estimate after idle (3G)", render_table(
        ["condition", "mean PLT (s)", "median PLT (s)", "spurious retx"],
        [[k, data[k]["mean_plt"], data[k]["median_plt"],
          data[k]["spurious"]] for k in keys]))
    emit("§6.2.1 — headline", (
        f"spurious reduction: http {data['http_spurious_reduction_pct']:.0f}%, "
        f"spdy {data['spdy_spurious_reduction_pct']:.0f}%"))

    # The remedy all but eliminates SPDY's spurious retransmissions...
    assert data["spdy_spurious_reduction_pct"] > 80.0
    # ...and does not make SPDY slower.
    assert data["spdy/reset-rtt"]["median_plt"] <= \
        data["spdy/default"]["median_plt"] * 1.05
    # HTTP, whose parallel connections keep the radio from idling, is
    # largely unaffected: its spurious retransmissions are loss-driven,
    # not promotion-driven, so the remedy neither eliminates them nor
    # materially inflates them (the sign of the change is seed noise).
    assert data["http/reset-rtt"]["spurious"] <= \
        data["http/default"]["spurious"] * 1.6
