#!/usr/bin/env python3
"""Cross-layer autopsy: watch TCP collide with the RRC state machine.

Reproduces the paper's §5.5 investigation on one SPDY run over 3G:
prints the radio's state transitions, the connection's idle restarts,
and every (spurious) retransmission — then the causal accounting that
ties them together (Figures 11-12 in prose).

Run:  python examples/cross_layer_autopsy.py
"""

from repro import ExperimentConfig, run_experiment
from repro.core import correlate_idle_retransmissions, summarize_run

SITES = [5, 7, 11, 15]   # news/radio-heavy: lots of background activity


def main() -> None:
    config = ExperimentConfig(protocol="spdy", network="3g", seed=0,
                              site_ids=SITES)
    print(f"Running SPDY over 3G, sites {SITES}, "
          f"{config.think_time:.0f}s apart ...")
    run = run_experiment(config)

    machine = run.testbed.radio
    probe = run.testbed.proxy_probe

    print("\n--- radio state transitions (first 20) ---")
    for time, state in machine.state_log[:20]:
        print(f"  t={time:8.2f}s  -> {state}")

    print("\n--- TCP idle restarts on the proxy ---")
    for event in probe.idle_restarts[:10]:
        print(f"  t={event.time:8.2f}s  {event.conn_id} "
              f"idle for {event.idle_time:.1f}s -> cwnd reset")

    print("\n--- retransmissions (time, spurious?) ---")
    for retx in probe.retransmissions[:20]:
        tag = "SPURIOUS" if retx.spurious else "genuine"
        print(f"  t={retx.time:8.2f}s  seq={retx.seq:<10d} {tag}")

    report = correlate_idle_retransmissions(probe, machine)
    print("\n--- the paper's causal chain, quantified ---")
    print(f"  radio promotions:          {report.promotions}")
    print(f"  radio demotions:           {report.demotions}")
    print(f"  idle restarts:             {len(report.episodes)}")
    print(f"  ... that ended in damage:  {report.damaged_episodes}")
    print(f"  total retransmissions:     {report.total_retransmissions}")
    print(f"  spurious:                  {report.total_spurious} "
          f"({report.spurious_fraction * 100:.0f}%)")
    print(f"  spurious near idle events: "
          f"{report.idle_attribution_fraction * 100:.0f}%")

    print("\n--- run summary ---")
    for key, value in summarize_run(run).items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
