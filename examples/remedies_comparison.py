#!/usr/bin/env python3
"""Compare the paper's §6 remedies for SPDY over 3G.

Evaluates, against the baseline: resetting the RTT estimate after idle
(§6.2.1, the paper's proposal), disabling slow-start-after-idle (§6.2.2),
disabling the TCP metrics cache (§6.2.4), pinning the radio in DCH
(Figure 14), 20 statically-bound SPDY connections (§6.1), and late
binding of responses to available connections (§6.1's missing piece).

Run:  python examples/remedies_comparison.py
"""

from repro.core import evaluate_remedies
from repro.reporting import render_table

SITES = [5, 7, 11, 12, 15]


def main() -> None:
    print(f"Evaluating remedies for SPDY over 3G on sites {SITES} ...")
    results = evaluate_remedies(protocol="spdy", network="3g", n_runs=1,
                                site_ids=SITES)
    rows = []
    base = results["baseline"]
    for name, stats in results.items():
        delta = 100.0 * (base["median_plt"] - stats["median_plt"]) \
            / base["median_plt"]
        rows.append([name, stats["median_plt"], f"{delta:+.0f}%",
                     stats["spurious"], stats["energy_mj"] / 1000.0])
    print(render_table(
        ["remedy", "median PLT (s)", "vs baseline", "spurious retx",
         "radio energy (J)"], rows, title="\n§6 remedies, SPDY over 3G"))

    print("\nReading guide:")
    print(" * reset-rtt-after-idle should remove the spurious")
    print("   retransmissions entirely (the paper's recommendation);")
    print(" * dch-pinning helps PLT but burns the most radio energy;")
    print(" * multi-connection without late binding is not a fix.")


if __name__ == "__main__":
    main()
