#!/usr/bin/env python3
"""Quickstart: is SPDY faster than HTTP on your access network?

Runs the paper's HTTP-vs-SPDY comparison on a small site subset over 3G
and WiFi and prints the per-site box statistics plus the verdict —
reproducing, in miniature, the contrast between Figure 3 (cellular: no
clear winner) and Figure 4 (WiFi: SPDY wins).

Run:  python examples/quickstart.py
"""

from repro import MeasurementStudy
from repro.reporting import render_boxes

SITES = [5, 9, 12, 13, 18]   # a light subset so this finishes in ~30 s
RUNS = 2


def main() -> None:
    for network in ("3g", "wifi"):
        print(f"\n=== {network.upper()} ===")
        study = MeasurementStudy(network=network, n_runs=RUNS,
                                 site_ids=SITES)
        result = study.run()
        sites = {site: {"http": result.site_boxes("http")[site],
                        "spdy": result.site_boxes("spdy")[site]}
                 for site in result.site_boxes("http")}
        print(render_boxes(sites, title=f"PLT over {network} (seconds)"))
        print(f"median PLT: http={result.median_plt('http'):.2f}s "
              f"spdy={result.median_plt('spdy'):.2f}s")
        print(f"SPDY wins {result.spdy_wins()}/{len(SITES)} sites "
              f"-> verdict: {result.verdict()}")


if __name__ == "__main__":
    main()
