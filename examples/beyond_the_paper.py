#!/usr/bin/env python3
"""Beyond the paper: pipelining, server push, late binding, shared cells.

Exercises the features the paper describes but could not measure:
HTTP pipelining (Squid's was too rudimentary), SPDY server push, the
late-binding fix sketched in §6.1, and the multi-laptop cell-sharing
setup of §3.

Run:  python examples/beyond_the_paper.py
"""

import statistics

from repro.experiments.multiuser import run_contention_experiment
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.reporting import render_table
from repro.tcp import TcpConfig

SITES = [5, 12, 13]


def median_plt(config):
    run = run_experiment(config)
    return statistics.median(run.plts_by_site().values())


def main() -> None:
    print("Comparing configurations over 3G (median PLT, seconds) ...")
    rows = [
        ["HTTP (paper baseline)", median_plt(ExperimentConfig(
            protocol="http", network="3g", site_ids=SITES))],
        ["HTTP + pipelining", median_plt(ExperimentConfig(
            protocol="http", network="3g", site_ids=SITES,
            http_pipelining=True))],
        ["SPDY (paper baseline)", median_plt(ExperimentConfig(
            protocol="spdy", network="3g", site_ids=SITES))],
        ["SPDY + holistic fix (6.2.1 + late binding)", median_plt(
            ExperimentConfig(protocol="spdy", network="3g", site_ids=SITES,
                             tcp=TcpConfig(reset_rtt_after_idle=True),
                             client_tcp=TcpConfig(reset_rtt_after_idle=True),
                             n_spdy_sessions=4, late_binding=True))],
    ]
    print(render_table(["configuration", "median PLT (s)"], rows))

    print("\nMulti-user cell load (HTTP, 2 small sites):")
    rows = []
    for n in (1, 2, 4):
        result = run_contention_experiment(n, protocol="http",
                                           site_ids=[5, 12],
                                           think_time=40.0, stagger=1.0)
        rows.append([n, result["median_plt"]])
    print(render_table(["devices on the cell", "median PLT (s)"], rows))


if __name__ == "__main__":
    main()
