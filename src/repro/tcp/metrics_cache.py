"""Destination metrics cache (the Linux ``tcp_metrics`` behaviour, §6.2.4).

Linux caches per-destination TCP statistics — slow-start threshold and
RTT estimates — when a connection closes, and seeds new connections to
the same destination from the cache.  The paper points out this couples
HTTP's nominally independent short connections: one connection damaged
by a spurious timeout poisons the ssthresh/RTT of every later connection
to the same host.  Disabling the cache ("we conducted experiments where
we disabled caching ... both HTTP and SPDY experience reduced page load
times") is one of the remedies evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["DestinationMetrics", "TcpMetricsCache"]


@dataclass
class DestinationMetrics:
    """Cached statistics for one destination address."""

    ssthresh: Optional[float] = None
    srtt: Optional[float] = None
    rttvar: Optional[float] = None
    updated_at: float = 0.0


class TcpMetricsCache:
    """Per-host cache keyed by remote address.

    ``enabled=False`` reproduces ``net.ipv4.tcp_no_metrics_save=1`` (the
    §6.2.4 experiment): saves and lookups become no-ops.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._entries: Dict[str, DestinationMetrics] = {}
        self.saves = 0
        self.hits = 0

    def save(self, remote: str, ssthresh: Optional[float],
             srtt: Optional[float], rttvar: Optional[float],
             now: float) -> None:
        """Record closing statistics for ``remote`` (no-op when disabled)."""
        if not self.enabled:
            return
        entry = self._entries.setdefault(remote, DestinationMetrics())
        if ssthresh is not None:
            entry.ssthresh = ssthresh
        if srtt is not None:
            entry.srtt = srtt
            entry.rttvar = rttvar
        entry.updated_at = now
        self.saves += 1

    def lookup(self, remote: str) -> Optional[DestinationMetrics]:
        """Return cached metrics for ``remote``, or None."""
        if not self.enabled:
            return None
        entry = self._entries.get(remote)
        if entry is not None:
            self.hits += 1
        return entry

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
