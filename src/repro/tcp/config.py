"""TCP tunables, mirroring the knobs the paper experiments with.

Every §5/§6 experiment maps to one or two fields here:

* ``congestion_control`` — Table 2 (Reno vs CUBIC).
* ``slow_start_after_idle`` — Figure 15 (``tcp_slow_start_after_idle``).
* ``reset_rtt_after_idle`` — the paper's proposed remedy (§6.2.1).
* ``use_metrics_cache`` — §6.2.4 (``tcp_no_metrics_save``).
* ``receive_window`` — the "rwin becomes the bottleneck" observation in §6.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TcpConfig"]


@dataclass
class TcpConfig:
    """Per-stack TCP configuration (Linux-flavoured defaults)."""

    mss: int = 1400                      # payload bytes per segment
    initial_cwnd: float = 10.0           # IW10, as the paper's proxy (RFC 6928 era)
    initial_rto: float = 1.0             # RFC 6298 initial RTO
    min_rto: float = 0.2                 # Linux TCP_RTO_MIN
    max_rto: float = 60.0
    # Windows 7 receive autotuning ("normal") caps the advertised window
    # around 256 KiB; the paper notes rwin was usually not the bottleneck
    # but *becomes* one when cwnd grows unchecked (§6.2.2).
    receive_window: int = 256 * 1024
    delayed_ack_timeout: float = 0.04    # Linux quick delack timer
    delayed_ack_segments: int = 2        # ack at least every 2nd segment
    dupack_threshold: int = 3            # fast-retransmit trigger
    congestion_control: str = "cubic"    # "cubic" | "reno"
    # Hard ceiling on cwnd, in segments.  Generous (4096 * 1400 B ≈ 5.7 MB
    # of flight) so it never binds in practice; the sanity layer treats a
    # cwnd above it as runaway congestion-control state.
    max_cwnd_segments: int = 4096

    # Idle behaviour — the crux of the paper.
    slow_start_after_idle: bool = True   # RFC 2861 / tcp_slow_start_after_idle
    reset_rtt_after_idle: bool = False   # the paper's §6.2.1 remedy
    idle_rto_reset_value: float = 3.0    # conservative RTO after reset ("multiple seconds")

    # Destination metrics cache (§6.2.4).
    use_metrics_cache: bool = True

    # F-RTO spurious-timeout detection (RFC 5682, Linux default on).
    # Off, every promotion-delay RTO collapses cwnd and stays collapsed —
    # the differential matrix uses this axis to measure what the paper's
    # §5 spurious retransmissions cost.
    frto: bool = True

    def with_overrides(self, **kwargs) -> "TcpConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.initial_cwnd < 1:
            raise ValueError("initial_cwnd must be >= 1")
        if self.min_rto <= 0 or self.initial_rto <= 0:
            raise ValueError("RTO values must be positive")
        if self.receive_window < self.mss:
            raise ValueError("receive_window must hold at least one segment")
        if self.dupack_threshold < 1:
            raise ValueError("dupack_threshold must be >= 1")
        if self.max_cwnd_segments < self.initial_cwnd:
            raise ValueError("max_cwnd_segments must be >= initial_cwnd")
