"""RFC 6298 retransmission-timeout estimation, with the paper's idle remedy.

This estimator is the protagonist of the paper's story: after an idle
period, the cellular radio's idle→active promotion inflates the path RTT
by ~2 seconds, but the estimator — fed only samples from the radio's
*active* period — holds an RTO of a few hundred milliseconds.  The result
is a spurious timeout, which the connection pays for with a collapsed
``cwnd`` *and* ``ssthresh``.

``reset_after_idle`` implements the remedy proposed in §6.2.1 of the
paper: discard the RTT estimate along with the congestion estimate when
the connection restarts from idle, pushing the RTO back to a conservative
initial value larger than the promotion delay.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["RtoEstimator"]


class RtoEstimator:
    """Smoothed RTT / RTT variance / RTO per RFC 6298.

    Parameters mirror the Linux defaults the paper's proxy ran with:
    ``min_rto`` 200 ms, exponential backoff on timeout, estimate rebuilt
    from the first sample after a reset.
    """

    ALPHA = 0.125  # 1/8, RFC 6298
    BETA = 0.25    # 1/4, RFC 6298
    K = 4.0

    def __init__(self, initial_rto: float = 1.0, min_rto: float = 0.2,
                 max_rto: float = 60.0):
        if initial_rto <= 0 or min_rto <= 0 or max_rto < min_rto:
            raise ValueError("invalid RTO bounds")
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        #: Largest smoothed deviation seen over the connection's life.
        #: Linux's tcp_metrics caches an mdev_max-flavoured variance, so
        #: connections to a destination with a history of wildly varying
        #: RTTs (a loaded cellular downlink) start with a conservative RTO.
        self.rttvar_peak: float = 0.0
        self._rto = initial_rto
        self._backoff = 1

        # measurement counters
        self.samples = 0
        self.resets = 0

    # ------------------------------------------------------------------
    @property
    def rto(self) -> float:
        """Current retransmission timeout, including any backoff."""
        return min(self.max_rto, self._rto * self._backoff)

    def on_rtt_sample(self, rtt: float) -> None:
        """Feed a clean RTT sample (Karn's rule: never from a retransmitted segment)."""
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(err)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self.rttvar_peak = max(self.rttvar_peak, self.rttvar)
        self._rto = self._compute_rto(self.srtt, self.rttvar)
        self._backoff = 1

    def _compute_rto(self, srtt: float, rttvar: float) -> float:
        """Linux-style RTO: the *variance term* is floored at min_rto.

        ``__tcp_set_rto``: rto = srtt + max(TCP_RTO_MIN, 4 * rttvar) —
        slightly more conservative than the literal RFC 6298 text, and
        what the paper's proxy actually ran.
        """
        return min(self.max_rto, srtt + max(self.min_rto, self.K * rttvar))

    def on_timeout(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self._backoff = min(self._backoff * 2, 64)

    def reset_after_idle(self, conservative_rto: float = 3.0) -> None:
        """The paper's §6.2.1 remedy: forget the RTT estimate after idle.

        Sets the RTO to ``conservative_rto`` (the paper recommends the
        initial default "of multiple seconds", larger than the 3G
        promotion delay) and discards SRTT/RTTVAR so the estimate is
        rebuilt from post-idle samples.
        """
        self.srtt = None
        self.rttvar = None
        self._rto = conservative_rto
        self._backoff = 1
        self.resets += 1

    def load(self, srtt: float, rttvar: float) -> None:
        """Seed the estimator from cached destination metrics (Linux tcp_metrics)."""
        self.srtt = srtt
        self.rttvar = rttvar
        self._rto = self._compute_rto(srtt, rttvar)
        self._backoff = 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        srtt = f"{self.srtt * 1000:.1f}ms" if self.srtt is not None else "-"
        return f"<RtoEstimator srtt={srtt} rto={self.rto * 1000:.1f}ms>"
