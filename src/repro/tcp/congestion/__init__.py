"""Congestion-control variants: Reno and CUBIC (Table 2 of the paper)."""

from .base import CongestionControl, INITIAL_SSTHRESH
from .cubic import Cubic
from .reno import Reno

__all__ = ["CongestionControl", "Cubic", "Reno", "INITIAL_SSTHRESH",
           "make_congestion_control"]

_VARIANTS = {"reno": Reno, "cubic": Cubic}


def make_congestion_control(name: str, initial_cwnd: float = 10.0) -> CongestionControl:
    """Factory keyed by variant name ("reno" or "cubic")."""
    try:
        cls = _VARIANTS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; choose from {sorted(_VARIANTS)}"
        ) from None
    return cls(initial_cwnd=initial_cwnd)
