"""TCP Reno (NewReno-style) congestion avoidance.

Slow start doubles the window per RTT (one segment per ACKed segment);
congestion avoidance adds one segment per window per RTT.  Used for the
Table 2 comparison against CUBIC.
"""

from __future__ import annotations

from .base import CongestionControl

__all__ = ["Reno"]


class Reno(CongestionControl):
    """Classic AIMD window growth."""

    name = "reno"

    def on_ack(self, acked_segments: int, now: float, rtt: float) -> None:
        for _ in range(acked_segments):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / self.cwnd
        self._note_cwnd()
