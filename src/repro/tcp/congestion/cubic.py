"""TCP CUBIC congestion avoidance (the proxy's default in the paper).

Implements the cubic window function of Ha, Rhee & Xu with fast
convergence and the TCP-friendly region, following the shape of the
Linux implementation: after a loss event at window ``W_max``, the window
is cut to ``beta * W_max`` and then grows along

    W(t) = C * (t - K)^3 + W_max,      K = cbrt(W_max * (1 - beta) / C)

— first concave (probing back toward ``W_max``), then convex (the
"exponential growth" phase the paper observes in Figure 12).
"""

from __future__ import annotations

from .base import CongestionControl, INITIAL_SSTHRESH

__all__ = ["Cubic"]


class Cubic(CongestionControl):
    """CUBIC window growth."""

    name = "cubic"

    C = 0.4       # scaling constant (segments/sec^3)
    BETA = 0.7    # multiplicative decrease factor
    FAST_CONVERGENCE = True

    # HyStart (Linux CUBIC's slow-start exit): leave slow start when the
    # measured RTT rises noticeably above the path's base RTT, i.e. the
    # bottleneck queue has started filling.  Without this a single SPDY
    # connection slow-starting into a megabyte of buffered responses
    # overshoots the queue and takes a burst of genuine losses.
    HYSTART_LOW_WINDOW = 16
    HYSTART_DELAY_FLOOR = 0.004   # 4 ms, as in Linux

    def __init__(self, initial_cwnd: float = 10.0,
                 initial_ssthresh: float = INITIAL_SSTHRESH):
        super().__init__(initial_cwnd, initial_ssthresh)
        self._w_max: float = 0.0
        self._epoch_start: float = -1.0
        self._w_tcp: float = 0.0  # TCP-friendly (Reno-equivalent) estimate
        self.hystart_enabled = True
        self._base_rtt: float = float("inf")
        self._round_min_rtt: float = float("inf")
        self._round_samples = 0
        self.hystart_exits = 0

    # ------------------------------------------------------------------
    def _reset_epoch(self) -> None:
        self._epoch_start = -1.0

    def _enter_loss_state(self, window: float) -> None:
        if self.FAST_CONVERGENCE and window < self._w_max:
            self._w_max = window * (2.0 - self.BETA) / 2.0
        else:
            self._w_max = window
        self._reset_epoch()

    # ------------------------------------------------------------------
    def on_ack(self, acked_segments: int, now: float, rtt: float) -> None:
        if self.hystart_enabled and rtt > 0 and self.cwnd < self.ssthresh:
            self._hystart_check(rtt)
        for _ in range(acked_segments):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
                continue
            self._cubic_update(now, max(rtt, 1e-4))
        self._note_cwnd()

    def _hystart_check(self, rtt: float) -> None:
        """Evaluate the *minimum* RTT over 8-sample rounds (noise-robust,
        as in the Linux implementation)."""
        self._round_min_rtt = min(self._round_min_rtt, rtt)
        self._round_samples += 1
        if self._round_samples < 8:
            return
        round_min = self._round_min_rtt
        self._round_min_rtt = float("inf")
        self._round_samples = 0
        if round_min < self._base_rtt:
            self._base_rtt = round_min
            return
        if self.cwnd < self.HYSTART_LOW_WINDOW:
            return
        threshold = self._base_rtt + max(self.HYSTART_DELAY_FLOOR,
                                         self._base_rtt / 8.0)
        if round_min > threshold:
            self.ssthresh = max(self.cwnd, 2.0)
            self.hystart_exits += 1

    def _cubic_update(self, now: float, rtt: float) -> None:
        if self._epoch_start < 0:
            self._epoch_start = now
            if self.cwnd < self._w_max:
                k = ((self._w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
            else:
                k = 0.0
                self._w_max = self.cwnd
            self._k = k
            self._w_tcp = self.cwnd
        t = now - self._epoch_start + rtt
        target = self.C * (t - self._k) ** 3 + self._w_max

        # TCP-friendly region: never be slower than Reno would be.
        self._w_tcp += 3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) / self.cwnd
        target = max(target, self._w_tcp)

        if target > self.cwnd:
            # Standard Linux pacing of cubic growth: spread the gap over
            # the ACKs of the current window.
            self.cwnd += (target - self.cwnd) / self.cwnd
        else:
            # Slow probing when at/above target.
            self.cwnd += 0.01 / self.cwnd

    # ------------------------------------------------------------------
    def on_timeout(self, inflight_segments: float, now: float,
                   reduce_ssthresh: bool = True) -> None:
        if reduce_ssthresh:
            basis = max(self.cwnd, inflight_segments)
            self._enter_loss_state(basis)
            self.ssthresh = max(basis * self.BETA, 2.0)
        self.cwnd = 1.0
        self.timeouts += 1

    def on_fast_retransmit(self, inflight_segments: float, now: float) -> None:
        window = max(self.cwnd, inflight_segments)
        self._enter_loss_state(window)
        self.ssthresh = max(window * self.BETA, 2.0)
        self.cwnd = self.ssthresh
        self.fast_retransmits += 1
        self._note_cwnd()

    def on_idle_restart(self, now: float) -> None:
        super().on_idle_restart(now)
        # Restarting from idle begins a new growth epoch.
        self._reset_epoch()

    def export_state(self) -> dict:
        state = super().export_state()
        state["w_max"] = self._w_max
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._w_max = state["w_max"]
        self._reset_epoch()
