"""Congestion-control interface shared by Reno and CUBIC.

``cwnd`` is counted in segments (Linux-style packet counting); the
connection converts to bytes with its MSS.  The interface mirrors the
events the paper's analysis cares about: ACK arrival, retransmission
timeout (cwnd collapse + ssthresh halving), fast retransmit, and restart
after idle (RFC 2861 / ``tcp_slow_start_after_idle``).
"""

from __future__ import annotations

__all__ = ["CongestionControl", "INITIAL_SSTHRESH"]

#: "Infinite" initial slow-start threshold (segments).
INITIAL_SSTHRESH = 1 << 30


class CongestionControl:
    """Base class; subclasses implement the window-growth law."""

    name = "base"

    def __init__(self, initial_cwnd: float = 10.0,
                 initial_ssthresh: float = INITIAL_SSTHRESH):
        self.initial_cwnd = initial_cwnd
        self.cwnd: float = initial_cwnd
        self.ssthresh: float = initial_ssthresh

        # counters for Table 2 style reporting
        self.max_cwnd_seen: float = initial_cwnd
        self.timeouts = 0
        self.fast_retransmits = 0

    # ------------------------------------------------------------------
    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def _note_cwnd(self) -> None:
        if self.cwnd > self.max_cwnd_seen:
            self.max_cwnd_seen = self.cwnd

    # ------------------------------------------------------------------
    def on_ack(self, acked_segments: int, now: float, rtt: float) -> None:
        """Grow the window for ``acked_segments`` newly acknowledged segments."""
        raise NotImplementedError

    def on_timeout(self, inflight_segments: float, now: float,
                   reduce_ssthresh: bool = True) -> None:
        """Retransmission timeout: collapse to one segment, reduce ssthresh.

        This is the mechanism the paper identifies as devastating after a
        spurious timeout: ``ssthresh`` is slashed from the (healthy)
        window, so recovery crawls in congestion avoidance.  As in Linux
        (``tcp_enter_loss``), the reduction is based on the congestion
        window and applied only on the first timeout of a loss episode —
        backoff retransmissions of the same episode keep cwnd at 1 but
        do not re-reduce ssthresh.
        """
        if reduce_ssthresh:
            basis = max(self.cwnd, inflight_segments)
            self.ssthresh = max(basis / 2.0, 2.0)
        self.cwnd = 1.0
        self.timeouts += 1

    def on_fast_retransmit(self, inflight_segments: float, now: float) -> None:
        """Triple-duplicate-ACK loss: multiplicative decrease without collapse."""
        self.ssthresh = max(inflight_segments / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self.fast_retransmits += 1
        self._note_cwnd()

    def on_idle_restart(self, now: float) -> None:
        """RFC 2861 restart: drop cwnd to the initial window after idle.

        Only ``cwnd`` is touched — ``ssthresh`` and the RTT estimate are
        deliberately left alone, exactly the asymmetry the paper blames.
        """
        self.cwnd = min(self.cwnd, float(self.initial_cwnd))

    def load_ssthresh(self, ssthresh: float) -> None:
        """Seed from the destination metrics cache (Linux tcp_metrics)."""
        self.ssthresh = ssthresh

    # ------------------------------------------------------------------
    # F-RTO / Eifel undo support
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot for a potential spurious-timeout undo."""
        return {"cwnd": self.cwnd, "ssthresh": self.ssthresh}

    def restore_state(self, state: dict) -> None:
        """Undo a loss reaction that F-RTO proved spurious."""
        self.cwnd = max(self.cwnd, state["cwnd"])
        self.ssthresh = state["ssthresh"]
        self._note_cwnd()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} cwnd={self.cwnd:.2f} "
                f"ssthresh={self.ssthresh:.2f}>")
