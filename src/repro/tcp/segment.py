"""TCP segments and the sender's per-segment bookkeeping records.

We simulate a byte stream without materialising the bytes: applications
hand the connection ``(object, length)`` messages, and each segment
carries *markers* — ``(stream_offset_end, object)`` pairs for messages
whose final byte falls inside the segment.  The receiver delivers an
application object once the contiguous stream passes its end offset,
which reproduces real framing semantics (a response is usable only when
fully received, in order) without byte shuffling.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

__all__ = ["Segment", "SegmentRecord", "TCP_HEADER_BYTES"]

#: IP + TCP header overhead added to every packet (20 + 20, no options).
TCP_HEADER_BYTES = 40

#: Shared empty marker/SACK sequence.  Most segments carry neither, and a
#: tuple is immutable, so every markerless segment can alias this one
#: object instead of allocating a fresh list per transmission.
_EMPTY: Tuple = ()


class Segment:
    """A TCP segment as it appears on the wire.

    ``markers`` is the framing metadata described in the module docstring.
    ``retransmit_of`` carries the transmission count of the sender-side
    record (0 for an original transmission) so traces can distinguish
    originals from retransmissions without sender state.
    """

    __slots__ = ("src", "sport", "dst", "dport", "seq", "ack", "length",
                 "syn", "fin", "rst", "is_ack", "window", "markers",
                 "retransmit_of", "sent_at", "sack_blocks")

    def __init__(self, src: str, sport: int, dst: str, dport: int,
                 seq: int = 0, ack: Optional[int] = None, length: int = 0,
                 syn: bool = False, fin: bool = False, rst: bool = False,
                 window: int = 0,
                 markers: Optional[Sequence[Tuple[int, Any]]] = None,
                 retransmit_of: int = 0,
                 sack_blocks: Optional[Sequence[Tuple[int, int]]] = None):
        self.src = src
        self.sport = sport
        self.dst = dst
        self.dport = dport
        self.seq = seq
        self.ack = ack
        self.length = length
        self.syn = syn
        self.fin = fin
        self.rst = rst
        self.is_ack = ack is not None
        self.window = window
        # Segments never mutate these after construction, so callers may
        # hand over (and share) their own sequences without copying.
        self.markers: Sequence[Tuple[int, Any]] = markers or _EMPTY
        self.retransmit_of = retransmit_of
        self.sent_at = 0.0
        self.sack_blocks: Sequence[Tuple[int, int]] = sack_blocks or _EMPTY

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including IP/TCP headers."""
        return self.length + TCP_HEADER_BYTES

    @property
    def seq_space(self) -> int:
        """Sequence space consumed (payload plus SYN/FIN flags)."""
        return self.length + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        return self.seq + self.seq_space

    def flag_string(self) -> str:
        flags = []
        if self.syn:
            flags.append("SYN")
        if self.fin:
            flags.append("FIN")
        if self.rst:
            flags.append("RST")
        if self.is_ack:
            flags.append("ACK")
        return "|".join(flags) or "DATA"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment {self.src}:{self.sport}->{self.dst}:{self.dport} "
                f"{self.flag_string()} seq={self.seq} ack={self.ack} "
                f"len={self.length}>")


class SegmentRecord:
    """Sender-side record of one unit of in-flight sequence space.

    One record is created per transmitted segment and lives until the
    cumulative ACK passes its end.  ``packets`` keeps every wire packet
    that carried this range; their ``lost`` flags are the ground truth
    for the spurious-retransmission classifier (a retransmission is
    spurious when no previously sent copy was actually lost).
    """

    __slots__ = ("seq", "length", "syn", "fin", "markers", "first_sent_at",
                 "last_sent_at", "transmissions", "packets", "acked",
                 "sacked", "recovery_retransmitted", "presumed_lost")

    def __init__(self, seq: int, length: int,
                 markers: Sequence[Tuple[int, Any]],
                 syn: bool = False, fin: bool = False, sent_at: float = 0.0):
        self.seq = seq
        self.length = length
        self.syn = syn
        self.fin = fin
        self.markers = markers
        self.first_sent_at = sent_at
        self.last_sent_at = sent_at
        self.transmissions = 1
        self.packets: list = []
        self.acked = False
        self.sacked = False                 # covered by a SACK block
        self.recovery_retransmitted = False  # already resent this recovery
        self.presumed_lost = False          # marked lost by RTO (tcp_enter_loss)

    @property
    def in_flight(self) -> bool:
        """Counts toward the pipe: a live, un-SACKed copy may be in the network."""
        if self.acked or self.sacked:
            return False
        if self.presumed_lost and not self.recovery_retransmitted:
            return False
        return True

    @property
    def seq_space(self) -> int:
        return self.length + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        return self.seq + self.seq_space

    @property
    def retransmitted(self) -> bool:
        return self.transmissions > 1

    def any_copy_lost(self) -> bool:
        """True when at least one wire copy of this range was dropped."""
        return any(p.lost for p in self.packets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SegmentRecord seq={self.seq} len={self.length} "
                f"tx={self.transmissions} acked={self.acked}>")
