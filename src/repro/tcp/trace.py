"""tcp_probe-equivalent tracing of connection internals.

The paper instruments its proxy with the ``tcp_probe`` kernel module to
log ``cwnd`` and ``ssthresh`` per ACK, and with tcpdump for packet-level
retransmission analysis.  :class:`TcpProbe` collects the same streams
from our connections:

* ``samples`` — (time, conn, cwnd, ssthresh, inflight bytes, event) —
  the raw data behind Figures 10, 11, 12 and 17;
* ``retransmissions`` — (time, conn, seq, kind, spurious) — behind
  Figures 11-13 and the spurious-retransmission counts in §5.5.2;
* ``idle_restarts`` — the moments RFC 2861 kicked in;
* ``rtt_samples`` — the estimator's inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["TcpProbe", "ProbeSample", "RetxEvent", "IdleRestartEvent"]


@dataclass
class ProbeSample:
    """One tcp_probe log line."""

    time: float
    conn_id: str
    cwnd: float
    ssthresh: float
    inflight_bytes: int
    inflight_segments: int
    event: str  # "send" | "ack" | "timeout" | "fast-retransmit"


@dataclass
class RetxEvent:
    """One retransmission, classified against simulator ground truth."""

    time: float
    conn_id: str
    seq: int
    kind: str        # "timeout" | "fast"
    spurious: bool
    transmissions: int


@dataclass
class IdleRestartEvent:
    """An RFC 2861 (or §6.2.1 remedy) idle restart."""

    time: float
    conn_id: str
    idle_time: float


class TcpProbe:
    """Collects per-connection TCP internals across a run."""

    def __init__(self, max_samples: Optional[int] = None):
        self.samples: List[ProbeSample] = []
        self.retransmissions: List[RetxEvent] = []
        self.idle_restarts: List[IdleRestartEvent] = []
        self.rtt_samples: List[tuple] = []  # (time, conn_id, rtt)
        self.max_samples = max_samples

    # ------------------------------------------------------------------
    # callbacks invoked by Connection
    # ------------------------------------------------------------------
    def on_sample(self, conn, event: str) -> None:
        if self.max_samples is not None and len(self.samples) >= self.max_samples:
            return
        self.samples.append(ProbeSample(
            time=conn.sim.now, conn_id=conn.conn_id, cwnd=conn.cc.cwnd,
            ssthresh=min(conn.cc.ssthresh, float(1 << 30)),
            inflight_bytes=conn.inflight_bytes,
            inflight_segments=conn.inflight_segments, event=event))

    def on_retransmission(self, conn, record, kind: str, spurious: bool) -> None:
        self.retransmissions.append(RetxEvent(
            time=conn.sim.now, conn_id=conn.conn_id, seq=record.seq,
            kind=kind, spurious=spurious,
            transmissions=record.transmissions))

    def on_idle_restart(self, conn, idle_time: float) -> None:
        self.idle_restarts.append(IdleRestartEvent(
            time=conn.sim.now, conn_id=conn.conn_id, idle_time=idle_time))

    def on_rtt(self, conn, rtt: float) -> None:
        self.rtt_samples.append((conn.sim.now, conn.conn_id, rtt))

    # ------------------------------------------------------------------
    # convenience queries used by the figure generators
    # ------------------------------------------------------------------
    def samples_for(self, conn_id: str) -> List[ProbeSample]:
        return [s for s in self.samples if s.conn_id == conn_id]

    def retransmissions_for(self, conn_id: str) -> List[RetxEvent]:
        return [r for r in self.retransmissions if r.conn_id == conn_id]

    def spurious_count(self) -> int:
        return sum(1 for r in self.retransmissions if r.spurious)

    def genuine_count(self) -> int:
        return sum(1 for r in self.retransmissions if not r.spurious)

    def retransmissions_by_connection(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.retransmissions:
            counts[r.conn_id] = counts.get(r.conn_id, 0) + 1
        return counts
