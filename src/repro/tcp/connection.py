"""The TCP connection state machine: reliability, congestion, idle behaviour.

This module implements the sender/receiver pair whose pathologies the
paper dissects:

* RFC 6298 retransmission timer with exponential backoff and Karn's rule;
* slow start / congestion avoidance via pluggable Reno or CUBIC;
* fast retransmit on triple duplicate ACKs, NewReno-style partial-ACK
  recovery;
* RFC 2861 congestion-window restart after idle
  (``tcp_slow_start_after_idle``), which resets ``cwnd`` but — crucially —
  **not** the RTT estimate, so a post-idle radio promotion delay of ~2 s
  blows straight through a ~300 ms RTO and triggers the spurious
  retransmissions of Figures 11–13;
* the paper's §6.2.1 remedy (``reset_rtt_after_idle``) that also resets
  the RTO to a conservative multi-second value on idle restart;
* Linux-style destination metrics caching on close (§6.2.4).

Applications exchange *messages*: ``send_message(obj, nbytes)`` enqueues
``nbytes`` of stream data whose last byte carries ``obj``; the peer's
``on_message(obj)`` fires when the contiguous received stream passes that
byte.  This gives real framing semantics without materialising payloads.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import (Any, Callable, Deque, Dict, List, Optional, Sequence,
                    Tuple)

from ..net.packet import Packet
from ..sim import Simulator, Timer
from .config import TcpConfig
from .congestion import make_congestion_control
from .rto import RtoEstimator
from .segment import Segment, SegmentRecord

__all__ = ["Connection", "ConnectionStats", "CLOSED", "SYN_SENT", "SYN_RCVD",
           "ESTABLISHED", "CLOSING", "RESET"]

CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
CLOSING = "CLOSING"
RESET = "RESET"


class ConnectionStats:
    """Counters exposed for the measurement layer (Table 2, Figures 9-13)."""

    def __init__(self) -> None:
        self.bytes_sent = 0              # payload bytes handed to the wire
        self.bytes_acked = 0
        self.bytes_received = 0          # in-order payload bytes consumed
        self.segments_sent = 0
        self.retransmissions = 0
        self.spurious_retransmissions = 0
        self.timeout_retransmissions = 0
        self.fast_retransmissions = 0
        self.idle_restarts = 0
        self.frto_undos = 0
        self.rtt_samples = 0
        self.established_at: Optional[float] = None
        self.closed_at: Optional[float] = None


class Connection:
    """One endpoint of a TCP connection."""

    def __init__(self, sim: Simulator, host, local_port: int,
                 remote_addr: str, remote_port: int, config: TcpConfig,
                 active: bool, stack=None):
        self.sim = sim
        self.host = host
        self.local_addr: str = host.address
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.config = config
        self.active_open = active
        self.stack = stack
        self.conn_id = (f"{self.local_addr}:{local_port}-"
                        f"{remote_addr}:{remote_port}")

        self.state = CLOSED
        self.stats = ConnectionStats()

        # --- sender state -------------------------------------------------
        self.iss = 0                       # initial send sequence
        self.snd_una = 0
        self.snd_nxt = 0
        self.cc = make_congestion_control(config.congestion_control,
                                          config.initial_cwnd)
        self.rto_estimator = RtoEstimator(config.initial_rto, config.min_rto,
                                          config.max_rto)
        self._records: "OrderedDict[int, SegmentRecord]" = OrderedDict()
        self._stream_len = 0               # bytes enqueued by the app
        self._segmented = 0                # bytes already cut into segments
        self._markers: Deque[Tuple[int, Any]] = deque()
        self._peer_window = config.receive_window
        self._dupacks = 0
        self._recovery_point: Optional[int] = None   # fast-recovery high water
        self._timeout_recovery_point: Optional[int] = None
        # F-RTO (RFC 5682, on by default in Linux): after the first RTO of
        # an episode, watch the next two ACKs; two consecutive advancing
        # ACKs prove the timeout spurious and the cwnd/ssthresh cut is
        # undone.  0 = inactive, 1/2 = awaiting first/second ACK.
        self._frto_state = 0
        self._frto_prior: Optional[dict] = None
        self._last_send_time = 0.0
        self._fin_queued = False
        self._fin_sent = False

        # --- receiver state -----------------------------------------------
        self.irs = 0
        self.rcv_nxt = 0
        self._ooo: Dict[int, Segment] = {}
        self._delack_count = 0
        self._delack_timer = Timer(sim, self._delack_fire, name="delack")
        self._last_delivered_offset = -1
        self._fin_received = False

        # --- timers ---------------------------------------------------------
        self._rto_timer = Timer(sim, self._on_rto, name="rto")

        # --- callbacks --------------------------------------------------------
        self.on_established: Optional[Callable[["Connection"], None]] = None
        self.on_message: Optional[Callable[["Connection", Any], None]] = None
        self.on_close: Optional[Callable[["Connection"], None]] = None
        # Fired (once, before on_close) when the connection dies abortively:
        # an incoming RST, or a local reset().  abort() stays silent — it is
        # the end-of-run teardown and must not trigger recovery machinery.
        self.on_reset: Optional[Callable[["Connection"], None]] = None

        # --- tracing ------------------------------------------------------
        self.probe: Optional[Any] = None   # TcpProbe, set by the stack
        self.sanitizer: Optional[Any] = None  # repro.sanity.Sanitizer or None
        self._metrics_saved = False

        # --- application backpressure --------------------------------------
        # on_writable fires (async) whenever unsent buffered bytes drop
        # below the watermark; used by the SPDY proxy's priority scheduler
        # to avoid committing low-priority frames to the socket early.
        self.on_writable: Optional[Callable[["Connection"], None]] = None
        self.writable_watermark = 16 * 1024
        self._writable_pending = False
        self._segment_watchers: List[Tuple[int, Callable[[], None]]] = []
        self._ack_watchers: List[Tuple[int, Callable[[], None]]] = []

    # ======================================================================
    # public API
    # ======================================================================
    def open_active(self) -> None:
        """Client side: begin the three-way handshake."""
        if self.state != CLOSED:
            raise RuntimeError(f"{self.conn_id}: open_active in state {self.state}")
        self._load_cached_metrics()
        self.state = SYN_SENT
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self._send_record(length=0, markers=(), syn=True)

    def open_passive(self, syn: Segment) -> None:
        """Server side: respond to a received SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"{self.conn_id}: open_passive in state {self.state}")
        self._load_cached_metrics()
        self.state = SYN_RCVD
        self.irs = syn.seq
        self.rcv_nxt = syn.seq + 1
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self._send_record(length=0, markers=(), syn=True)  # SYN-ACK (ack piggybacked)

    def send_message(self, obj: Any, nbytes: int) -> None:
        """Enqueue an application message of ``nbytes``; deliver ``obj`` at the peer."""
        if nbytes <= 0:
            raise ValueError("message length must be positive")
        if self.state == RESET:
            raise RuntimeError(f"{self.conn_id}: send on reset connection")
        if self.state == CLOSED and not self.active_open:
            raise RuntimeError(f"{self.conn_id}: send on closed connection")
        if self._fin_queued:
            raise RuntimeError(f"{self.conn_id}: send after close()")
        self._stream_len += nbytes
        self._markers.append((self._stream_len, obj))
        if self.state == ESTABLISHED:
            self._try_send()

    def close(self) -> None:
        """Graceful close: FIN after all queued data is sent."""
        if self._fin_queued:
            return
        self._fin_queued = True
        if self.state == ESTABLISHED:
            self._try_send()
        elif self.state == CLOSED:
            self._teardown()

    def abort(self) -> None:
        """Hard teardown (no FIN) — used when an experiment run ends."""
        self._teardown()

    def reset(self, send_rst: bool = True) -> None:
        """Abortive close (RFC 793 RST semantics).

        Unlike :meth:`abort`, this surfaces the failure to the application:
        ``on_reset`` then ``on_close`` fire so fetchers/proxies can react
        (replace the connection, re-issue requests).  With ``send_rst`` a
        zero-length RST segment is put on the wire so the peer aborts too
        once it arrives.
        """
        if self.state in (CLOSED, RESET):
            return
        if send_rst:
            segment = Segment(self.local_addr, self.local_port,
                              self.remote_addr, self.remote_port,
                              seq=self.snd_nxt, rst=True,
                              window=self.config.receive_window)
            segment.sent_at = self.sim.now
            packet = Packet(self.local_addr, self.remote_addr,
                            segment.wire_size, payload=segment,
                            created_at=self.sim.now)
            self.host.send(packet)
        self._enter_reset()

    # ------------------------------------------------------------------
    @property
    def inflight_bytes(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def inflight_segments(self) -> int:
        return sum(1 for r in self._records.values() if not r.acked)

    @property
    def pipe_segments(self) -> int:
        """SACK-aware in-flight estimate (excludes presumed-lost segments)."""
        return sum(1 for r in self._records.values() if r.in_flight)

    @property
    def cwnd(self) -> float:
        return self.cc.cwnd

    @property
    def ssthresh(self) -> float:
        return self.cc.ssthresh

    @property
    def srtt(self) -> Optional[float]:
        return self.rto_estimator.srtt

    @property
    def rto(self) -> float:
        return self.rto_estimator.rto

    @property
    def is_idle(self) -> bool:
        """No unacknowledged data and nothing waiting to be sent."""
        return not self._records and self._segmented >= self._stream_len

    @property
    def unsent_bytes(self) -> int:
        """Application bytes buffered but not yet cut into segments."""
        return self._stream_len - self._segmented

    def notify_when_segmented(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once everything enqueued so far hits the wire.

        Used by the browser to time the "send" component of Figure 5
        (request handed to socket -> request bytes serialized).
        """
        target = self._stream_len
        if self._segmented >= target:
            self.sim.call_soon(callback)
        else:
            self._segment_watchers.append((target, callback))

    def notify_when_acked(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once everything enqueued so far is ACKed.

        The proxy uses this to timestamp "transfer to client complete"
        (the red region of Figure 8).
        """
        target = self._stream_len
        if self.snd_una - self.iss - 1 >= target and self.state == ESTABLISHED:
            self.sim.call_soon(callback)
        else:
            self._ack_watchers.append((target, callback))

    # ======================================================================
    # sending
    # ======================================================================
    def _load_cached_metrics(self) -> None:
        cache = getattr(self.stack, "metrics_cache", None)
        if cache is None or not self.config.use_metrics_cache:
            return
        entry = cache.lookup(self.remote_addr)
        if entry is None:
            return
        if entry.ssthresh is not None:
            self.cc.load_ssthresh(entry.ssthresh)
        if entry.srtt is not None and entry.rttvar is not None:
            self.rto_estimator.load(entry.srtt, entry.rttvar)

    def _maybe_idle_restart(self) -> None:
        """Apply RFC 2861 / §6.2.1 policies when restarting from idle.

        Linux applies the restart when the connection has been
        application-idle for longer than the current RTO.
        """
        if self._records:
            return  # data outstanding: not idle
        if self.stats.established_at is None:
            return
        idle_time = self.sim.now - self._last_send_time
        if idle_time <= self.rto_estimator.rto:
            return
        restarted = False
        if self.config.slow_start_after_idle:
            self.cc.on_idle_restart(self.sim.now)
            restarted = True
        if self.config.reset_rtt_after_idle:
            self.rto_estimator.reset_after_idle(self.config.idle_rto_reset_value)
            restarted = True
        if restarted:
            self.stats.idle_restarts += 1
            if self.probe is not None:
                self.probe.on_idle_restart(self, idle_time)

    def _try_send(self) -> None:
        """Send as much new data as cwnd and the peer window allow."""
        if self.state != ESTABLISHED:
            return
        sent_any = False
        first_new_data = self._segmented < self._stream_len or (
            self._fin_queued and not self._fin_sent)
        if first_new_data:
            self._maybe_idle_restart()
        if self._segmented < self._stream_len:
            # Loop invariants hoisted: cwnd, peer window and MSS cannot
            # change while we cut segments, and the O(n) pipe estimate
            # grows by exactly one per segment sent, so it is computed
            # once and counted locally instead of rescanned per segment.
            cwnd_cap = int(self.cc.cwnd)
            peer_window = self._peer_window
            mss = self.config.mss
            pipe = self.pipe_segments
            pending = self._markers
            while self._segmented < self._stream_len:
                if pipe >= cwnd_cap:
                    break
                length = min(mss, self._stream_len - self._segmented)
                if self.inflight_bytes + length > peer_window:
                    break
                end = self._segmented + length
                markers: Sequence[Tuple[int, Any]] = ()
                if pending and pending[0][0] <= end:
                    collected: List[Tuple[int, Any]] = []
                    while pending and pending[0][0] <= end:
                        collected.append(pending.popleft())
                    markers = collected
                self._segmented = end
                self._send_record(length=length, markers=markers)
                pipe += 1
                sent_any = True
        if (self._fin_queued and not self._fin_sent
                and self._segmented >= self._stream_len
                and self.inflight_segments < max(int(self.cc.cwnd), 1)):
            self._fin_sent = True
            self._send_record(length=0, markers=(), fin=True)
            sent_any = True
        if sent_any and self.probe is not None:
            self.probe.on_sample(self, "send")
        if sent_any:
            self._fire_segment_watchers()
        self._maybe_notify_writable()

    def _fire_segment_watchers(self) -> None:
        if not self._segment_watchers:
            return
        ready = [cb for target, cb in self._segment_watchers
                 if target <= self._segmented]
        if ready:
            self._segment_watchers = [
                (t, cb) for t, cb in self._segment_watchers
                if t > self._segmented]
            for cb in ready:
                self.sim.call_soon(cb)

    def _maybe_notify_writable(self) -> None:
        if (self.on_writable is None or self._writable_pending
                or self.state != ESTABLISHED
                or self.unsent_bytes >= self.writable_watermark):
            return
        self._writable_pending = True
        self.sim.call_soon(self._deliver_writable)

    def _deliver_writable(self) -> None:
        self._writable_pending = False
        if (self.on_writable is not None and self.state == ESTABLISHED
                and self.unsent_bytes < self.writable_watermark):
            self.on_writable(self)

    def _send_record(self, length: int, markers: Sequence[Tuple[int, Any]],
                     syn: bool = False, fin: bool = False) -> None:
        """Create a record for new sequence space and transmit it."""
        record = SegmentRecord(self.snd_nxt, length, markers, syn=syn,
                               fin=fin, sent_at=self.sim.now)
        self._records[record.seq] = record
        self.snd_nxt = record.end_seq
        self._transmit(record)

    def _transmit(self, record: SegmentRecord) -> None:
        """Put one copy of ``record`` on the wire."""
        now = self.sim.now
        ack = self.rcv_nxt if self.state not in (SYN_SENT, CLOSED) else None
        # record.markers is shared, not copied: segments never mutate it,
        # and every retransmission carries the same framing markers.
        segment = Segment(self.local_addr, self.local_port, self.remote_addr,
                          self.remote_port, seq=record.seq, ack=ack,
                          length=record.length, syn=record.syn,
                          fin=record.fin, window=self.config.receive_window,
                          markers=record.markers,
                          retransmit_of=record.transmissions - 1,
                          sack_blocks=self._build_sack_blocks())
        segment.sent_at = now
        packet = Packet(self.local_addr, self.remote_addr, segment.wire_size,
                        payload=segment, created_at=now)
        record.packets.append(packet)
        record.last_sent_at = now
        self._last_send_time = now
        self.stats.segments_sent += 1
        self.stats.bytes_sent += record.length
        self.host.send(packet)
        if not self._rto_timer.armed:
            self._rto_timer.start(self.rto_estimator.rto)

    def _build_sack_blocks(self) -> Sequence[Tuple[int, int]]:
        """Merge out-of-order holdings into SACK blocks (max 4, as on the wire)."""
        if not self._ooo:
            return ()
        spans = sorted((s.seq, s.end_seq) for s in self._ooo.values())
        blocks: List[Tuple[int, int]] = []
        start, end = spans[0]
        for s, e in spans[1:]:
            if s <= end:
                end = max(end, e)
            else:
                blocks.append((start, end))
                start, end = s, e
        blocks.append((start, end))
        return blocks[-4:]

    def _send_ack(self) -> None:
        """Transmit a pure ACK (not retransmittable, carries no record)."""
        self._delack_timer.stop()
        self._delack_count = 0
        segment = Segment(self.local_addr, self.local_port, self.remote_addr,
                          self.remote_port, seq=self.snd_nxt, ack=self.rcv_nxt,
                          length=0, window=self.config.receive_window,
                          sack_blocks=self._build_sack_blocks())
        segment.sent_at = self.sim.now
        packet = Packet(self.local_addr, self.remote_addr, segment.wire_size,
                        payload=segment, created_at=self.sim.now)
        self.host.send(packet)

    # ======================================================================
    # retransmission
    # ======================================================================
    def _earliest_unacked(self) -> Optional[SegmentRecord]:
        for record in self._records.values():
            if not record.acked:
                return record
        return None

    def _classify_and_count_retransmission(self, record: SegmentRecord,
                                           kind: str) -> bool:
        """Update counters; returns True when the retransmission is spurious.

        Ground truth from the simulator: if no wire copy of this sequence
        range was actually dropped, the retransmission was unnecessary —
        exactly the class of retransmissions the paper traced to the RRC
        promotion delay ("all (442) retransmissions were in fact spurious").
        """
        spurious = not record.any_copy_lost()
        self.stats.retransmissions += 1
        if spurious:
            self.stats.spurious_retransmissions += 1
        if kind == "timeout":
            self.stats.timeout_retransmissions += 1
        else:
            self.stats.fast_retransmissions += 1
        if self.probe is not None:
            self.probe.on_retransmission(self, record, kind, spurious)
        return spurious

    def _retransmit(self, record: SegmentRecord, kind: str) -> None:
        if self.sanitizer is not None:
            self.sanitizer.emit(
                "tcp.retransmit", self, record=record,
                detail=f"{self.conn_id} {kind} seq={record.seq}")
        self._classify_and_count_retransmission(record, kind)
        record.transmissions += 1
        self._transmit(record)

    def _on_rto(self) -> None:
        """Retransmission timer expiry."""
        record = self._earliest_unacked()
        if record is None:
            return
        inflight = self.inflight_segments
        # Linux reduces ssthresh only on the first RTO of a loss episode;
        # the backoff retransmissions that follow (e.g. while a radio
        # promotion holds all ACKs) keep cwnd at 1 without re-slashing it.
        first_of_episode = self._timeout_recovery_point is None
        if first_of_episode and self.config.frto:
            # Arm F-RTO: keep an undo snapshot and defer the wholesale
            # loss-marking until the next ACKs vote genuine vs spurious.
            self._frto_state = 1
            self._frto_prior = self.cc.export_state()
        else:
            # A backoff RTO of the same episode: F-RTO gives up (as in
            # Linux) and the conventional loss path takes over.  This is
            # why a >2x-RTO radio promotion delay escapes the undo and
            # the damage the paper measures persists.
            self._frto_declare_genuine()
        self.cc.on_timeout(inflight, self.sim.now,
                           reduce_ssthresh=first_of_episode)
        self.rto_estimator.on_timeout()
        self._timeout_recovery_point = self.snd_nxt
        self._recovery_point = None
        self._dupacks = 0
        for rec in self._records.values():
            rec.recovery_retransmitted = False  # new recovery epoch
        if self._frto_state == 0:
            self._mark_all_lost()
        record.recovery_retransmitted = True
        self._retransmit(record, "timeout")
        self._rto_timer.start(self.rto_estimator.rto)
        if self.probe is not None:
            self.probe.on_sample(self, "timeout")
        if self.sanitizer is not None:
            self.sanitizer.emit("tcp.segment", self,
                                detail=f"{self.conn_id} rto "
                                       f"cwnd={self.cc.cwnd:.1f}")

    def _mark_all_lost(self) -> None:
        """tcp_enter_loss: everything outstanding and un-SACKed is lost."""
        for rec in self._records.values():
            if not rec.sacked:
                rec.presumed_lost = True

    def _frto_declare_genuine(self) -> None:
        """F-RTO concludes (or gives up): proceed with conventional recovery."""
        if self._frto_state:
            self._frto_state = 0
            self._frto_prior = None
            self._mark_all_lost()

    def _frto_undo(self) -> None:
        """Two consecutive advancing ACKs: the timeout was spurious — undo.

        Restores cwnd/ssthresh (Eifel-style undo) and cancels loss
        recovery; the retransmission already sent stays counted in the
        (spurious) retransmission statistics, exactly as tcpdump would
        have seen it.
        """
        if self._frto_prior is not None:
            self.cc.restore_state(self._frto_prior)
        self._frto_state = 0
        self._frto_prior = None
        self._timeout_recovery_point = None
        self.stats.frto_undos += 1
        for rec in self._records.values():
            rec.presumed_lost = False
        if self.probe is not None:
            self.probe.on_sample(self, "frto-undo")

    # ======================================================================
    # receiving
    # ======================================================================
    def handle_segment(self, segment: Segment) -> None:
        """Entry point for every segment demuxed to this connection."""
        if self.state in (CLOSED, RESET):
            return
        if segment.rst:
            self._enter_reset()
            return
        if self.state == SYN_SENT:
            self._handle_in_syn_sent(segment)
            return
        if self.state == SYN_RCVD and segment.is_ack and not segment.syn:
            if segment.ack is not None and segment.ack > self.iss:
                self._complete_establishment()
        if segment.syn and self.state in (ESTABLISHED, SYN_RCVD):
            # Duplicate SYN (our SYN-ACK was lost/slow): re-ack.
            self._send_ack()
            if segment.seq_space == 1 and not segment.is_ack:
                return
        if segment.is_ack:
            self._process_ack(segment)
        if segment.seq_space > 0 and not segment.syn:
            self._process_data(segment)

    def _handle_in_syn_sent(self, segment: Segment) -> None:
        if not (segment.syn and segment.is_ack):
            return
        if segment.ack != self.iss + 1:
            return
        self.irs = segment.seq
        self.rcv_nxt = segment.seq + 1
        self._process_ack(segment)
        self._complete_establishment()
        self._send_ack()
        self._try_send()

    def _complete_establishment(self) -> None:
        if self.state in (ESTABLISHED, CLOSING, CLOSED):
            return
        self.state = ESTABLISHED
        self.stats.established_at = self.sim.now
        self._last_send_time = self.sim.now
        if self.on_established is not None:
            self.on_established(self)
        self._try_send()

    # ------------------------------------------------------------------
    def _process_ack(self, segment: Segment) -> None:
        ack = segment.ack
        assert ack is not None
        self._peer_window = segment.window or self._peer_window
        if self.sanitizer is not None:
            # Before the defensive guard below: in a closed simulation no
            # peer can legitimately ack unsent data, so reaching it means
            # our own sequence accounting broke.
            self.sanitizer.emit("tcp.ack", self, ack=ack,
                                detail=f"{self.conn_id} ack={ack}")
        if ack > self.snd_nxt:
            return  # acks data we never sent; ignore
        if segment.sack_blocks:
            self._apply_sack(segment.sack_blocks)
        if ack > self.snd_una:
            self._handle_new_ack(ack, segment)
        elif (ack == self.snd_una and self._records
              and segment.length == 0 and not segment.syn):
            self._handle_dupack()
        if self._recovery_point is not None or \
                self._timeout_recovery_point is not None:
            self._sack_retransmit()
        # tcp_rearm_rto: any ACK processed while data is outstanding pushes
        # the retransmission deadline out — dupacks and SACK progress count
        # as evidence the path is alive.
        if self._records:
            self._rto_timer.start(self.rto_estimator.rto)
        # Window may have opened either way.
        self._try_send()
        if self.sanitizer is not None:
            self.sanitizer.emit("tcp.segment", self,
                                detail=f"{self.conn_id} post-ack "
                                       f"cwnd={self.cc.cwnd:.1f}")

    def _apply_sack(self, blocks: Sequence[Tuple[int, int]]) -> None:
        for record in self._records.values():
            if record.sacked or record.acked:
                continue
            for start, end in blocks:
                if record.seq >= start and record.end_seq <= end:
                    record.sacked = True
                    break

    def _sack_retransmit(self) -> None:
        """Scoreboard-driven loss recovery (Linux SACK behaviour).

        Retransmits segments presumed lost — marked by an RTO
        (tcp_enter_loss) or sitting below the highest SACKed sequence —
        paced by the congestion window against the in-flight estimate.
        Without this, a burst loss on SPDY's single connection would
        stall for one backed-off RTO per lost segment.
        """
        highest_sacked = None
        for record in self._records.values():
            if record.sacked and (highest_sacked is None
                                  or record.end_seq > highest_sacked):
                highest_sacked = record.end_seq
        pipe = sum(1 for r in self._records.values() if r.in_flight)
        budget = max(int(self.cc.cwnd), 1) - pipe
        kind = "timeout" if self._timeout_recovery_point is not None else "fast"
        for record in self._records.values():
            if budget <= 0:
                break
            if record.sacked or record.acked or record.recovery_retransmitted:
                continue
            lost = record.presumed_lost or (
                highest_sacked is not None and record.seq < highest_sacked)
            if not lost:
                break  # everything further is above the loss horizon
            record.recovery_retransmitted = True
            self._retransmit(record, kind)
            budget -= 1

    def _handle_new_ack(self, ack: int, segment: Segment) -> None:
        newly_acked = 0
        acked_bytes = 0
        rtt_sample: Optional[float] = None
        records = self._records
        now = self.sim.now
        while records:
            # Pop first, re-insert at the front on overshoot: one pop per
            # acked record instead of a peek (items-view + iterator
            # allocation) followed by a pop.
            seq, record = records.popitem(last=False)
            if record.end_seq > ack:
                records[seq] = record
                records.move_to_end(seq, last=False)
                break
            record.acked = True
            newly_acked += 1
            acked_bytes += record.length
            if not record.retransmitted:
                rtt_sample = now - record.last_sent_at
        self.snd_una = ack
        self.stats.bytes_acked += acked_bytes
        self._dupacks = 0
        if self._ack_watchers:
            acked_offset = self.snd_una - self.iss - 1
            ready = [cb for t, cb in self._ack_watchers if t <= acked_offset]
            if ready:
                self._ack_watchers = [(t, cb) for t, cb in self._ack_watchers
                                      if t > acked_offset]
                for cb in ready:
                    self.sim.call_soon(cb)

        if rtt_sample is not None:
            self.rto_estimator.on_rtt_sample(rtt_sample)
            self.stats.rtt_samples += 1
            if self.probe is not None:
                self.probe.on_rtt(self, rtt_sample)

        in_fast_recovery = self._recovery_point is not None
        if in_fast_recovery:
            if ack >= self._recovery_point:
                self._recovery_point = None
            else:
                # NewReno partial ACK: retransmit the next hole (unless
                # the SACK scoreboard already took care of it).
                record = self._earliest_unacked()
                if record is not None and not record.sacked \
                        and not record.recovery_retransmitted:
                    record.recovery_retransmitted = True
                    self._retransmit(record, "fast")
        if self._timeout_recovery_point is not None and self._frto_state:
            # F-RTO: an advancing ACK while probing.
            if self._frto_state == 1:
                self._frto_state = 2
            else:
                self._frto_undo()
        if self._timeout_recovery_point is not None and \
                ack >= self._timeout_recovery_point:
            self._timeout_recovery_point = None
            self._frto_state = 0
            self._frto_prior = None
        if not in_fast_recovery and newly_acked:
            rtt_for_growth = rtt_sample or self.rto_estimator.srtt or 0.1
            self.cc.on_ack(newly_acked, self.sim.now, rtt_for_growth)
            # Real stacks are bounded by the socket send buffer; without a
            # cap, slow start on a long-lived connection grows cwnd without
            # limit (it never matters below the peer window, but the counter
            # itself becomes meaningless).
            cap = float(self.config.max_cwnd_segments)
            if self.cc.cwnd > cap:
                self.cc.cwnd = cap

        if self._records:
            self._rto_timer.start(self.rto_estimator.rto)
        else:
            self._rto_timer.stop()

        if self.probe is not None:
            self.probe.on_sample(self, "ack")

        if self._fin_sent and ack >= self.snd_nxt:
            self._on_our_fin_acked()

    def _handle_dupack(self) -> None:
        if self._frto_state:
            # A duplicate ACK during the F-RTO probe: the timeout was
            # genuine after all.
            self._frto_declare_genuine()
        self._dupacks += 1
        if self._dupacks == self.config.dupack_threshold and \
                self._recovery_point is None and \
                self._timeout_recovery_point is None:
            record = self._earliest_unacked()
            if record is None:
                return
            self.cc.on_fast_retransmit(self.inflight_segments, self.sim.now)
            self._recovery_point = self.snd_nxt
            self._retransmit(record, "fast")
            self._rto_timer.start(self.rto_estimator.rto)
            if self.probe is not None:
                self.probe.on_sample(self, "fast-retransmit")

    # ------------------------------------------------------------------
    def _process_data(self, segment: Segment) -> None:
        if segment.end_seq <= self.rcv_nxt:
            # Entirely old duplicate (e.g. a spurious retransmission
            # arriving after the original): re-ack immediately.
            self._send_ack()
            return
        if segment.seq > self.rcv_nxt:
            # Out of order: stash and send a duplicate ACK.
            self._ooo.setdefault(segment.seq, segment)
            self._send_ack()
            return
        # In order (possibly overlapping): consume.
        self._consume(segment)
        while self.rcv_nxt in self._ooo:
            self._consume(self._ooo.pop(self.rcv_nxt))
        # Drop any stale out-of-order segments now covered.
        for seq in [s for s in self._ooo if s < self.rcv_nxt]:
            del self._ooo[seq]
        self._ack_policy()

    def _consume(self, segment: Segment) -> None:
        if self.sanitizer is not None:
            self.sanitizer.emit(
                "tcp.consume", self, seq=segment.seq, end_seq=segment.end_seq,
                detail=f"{self.conn_id} consume [{segment.seq},"
                       f"{segment.end_seq})")
        advance = segment.end_seq - self.rcv_nxt
        payload_bytes = min(segment.length, advance)
        self.rcv_nxt = segment.end_seq
        self.stats.bytes_received += payload_bytes
        for end_offset, obj in segment.markers:
            if end_offset > self._last_delivered_offset:
                self._last_delivered_offset = end_offset
                if self.on_message is not None:
                    self.on_message(self, obj)
        if segment.fin:
            self._fin_received = True
            self._send_ack()
            self._on_peer_fin()

    def _ack_policy(self) -> None:
        """Delayed ACKs: every 2nd in-order segment, or after 40 ms."""
        self._delack_count += 1
        if self._delack_count >= self.config.delayed_ack_segments:
            self._send_ack()
        elif not self._delack_timer.armed:
            self._delack_timer.start(self.config.delayed_ack_timeout)

    def _delack_fire(self) -> None:
        if self._delack_count > 0:
            self._send_ack()

    # ======================================================================
    # teardown
    # ======================================================================
    def _on_peer_fin(self) -> None:
        if self.on_close is not None:
            callback, self.on_close = self.on_close, None
            callback(self)
        if not self._fin_queued:
            self.close()
        self._maybe_finalize()

    def _on_our_fin_acked(self) -> None:
        self._maybe_finalize()

    def _maybe_finalize(self) -> None:
        our_side_done = self._fin_sent and self.snd_una >= self.snd_nxt
        if our_side_done and self._fin_received:
            self._teardown()

    def _enter_reset(self) -> None:
        """Abortive teardown shared by incoming RSTs and local reset()."""
        if self.state in (CLOSED, RESET):
            return
        self.state = RESET
        self._rto_timer.stop()
        self._delack_timer.stop()
        self.stats.closed_at = self.sim.now
        # An abortive close teaches us nothing about the path; skip the
        # metrics-cache save a graceful close would do.
        self._metrics_saved = True
        if self.stack is not None:
            self.stack.forget(self)
        if self.on_reset is not None:
            callback, self.on_reset = self.on_reset, None
            callback(self)
        if self.on_close is not None:
            callback, self.on_close = self.on_close, None
            callback(self)

    def _teardown(self) -> None:
        if self.state in (CLOSED, RESET) and self._metrics_saved:
            return
        self.state = CLOSED
        self._rto_timer.stop()
        self._delack_timer.stop()
        self.stats.closed_at = self.sim.now
        self._save_metrics()
        if self.stack is not None:
            self.stack.forget(self)

    def _save_metrics(self) -> None:
        if self._metrics_saved:
            return
        self._metrics_saved = True
        cache = getattr(self.stack, "metrics_cache", None)
        if cache is None or not self.config.use_metrics_cache:
            return
        ssthresh = self.cc.ssthresh
        if ssthresh >= (1 << 29):  # never reduced: nothing learned
            ssthresh = None
        rttvar = self.rto_estimator.rttvar
        if rttvar is not None:
            # Save the conservative (peak) deviation, as Linux's
            # mdev_max-based tcp_metrics effectively does.
            rttvar = max(rttvar, self.rto_estimator.rttvar_peak)
        cache.save(self.remote_addr, ssthresh, self.rto_estimator.srtt,
                   rttvar, self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Connection {self.conn_id} {self.state}>"
