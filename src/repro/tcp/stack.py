"""Per-host TCP stack: port allocation, demux, connect/listen.

The stack is installed onto a :class:`repro.net.Host` and demuxes
arriving packets to connections by ``(local port, remote addr, remote
port)``.  It owns the host's destination metrics cache (§6.2.4) and an
optional :class:`~repro.tcp.trace.TcpProbe` that every connection
reports to — our stand-in for the paper's ``tcp_probe`` kernel module.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.node import Host
from ..net.packet import Packet
from ..sim import Simulator
from .config import TcpConfig
from .connection import Connection
from .metrics_cache import TcpMetricsCache
from .segment import Segment

__all__ = ["TcpStack", "Listener"]

ConnKey = Tuple[int, str, int]


class Listener:
    """A passive socket: accepts connections on a local port."""

    def __init__(self, port: int, on_accept: Callable[[Connection], None]):
        self.port = port
        self.on_accept = on_accept


class TcpStack:
    """TCP endpoint logic for one host."""

    def __init__(self, sim: Simulator, host: Host,
                 config: Optional[TcpConfig] = None,
                 metrics_cache: Optional[TcpMetricsCache] = None):
        self.sim = sim
        self.host = host
        self.config = config or TcpConfig()
        self.config.validate()
        self.metrics_cache = metrics_cache or TcpMetricsCache(
            enabled=self.config.use_metrics_cache)
        self.probe: Optional[Any] = None  # TcpProbe or None
        self.sanitizer: Optional[Any] = None  # repro.sanity.Sanitizer or None

        self._connections: Dict[ConnKey, Connection] = {}
        self._listeners: Dict[int, Listener] = {}
        self._ephemeral = itertools.count(40000)
        self.all_connections: List[Connection] = []  # history, for metrics

        host.tcp = self

    # ------------------------------------------------------------------
    def connect(self, remote_addr: str, remote_port: int,
                config: Optional[TcpConfig] = None) -> Connection:
        """Active-open a connection; returns it immediately (handshake async)."""
        local_port = next(self._ephemeral)
        conn = Connection(self.sim, self.host, local_port, remote_addr,
                          remote_port, config or self.config, active=True,
                          stack=self)
        conn.probe = self.probe
        conn.sanitizer = self.sanitizer
        key = (local_port, remote_addr, remote_port)
        self._connections[key] = conn
        self.all_connections.append(conn)
        conn.open_active()
        return conn

    def listen(self, port: int,
               on_accept: Callable[[Connection], None]) -> Listener:
        """Register a passive listener on ``port``."""
        if port in self._listeners:
            raise ValueError(f"{self.host.address}: port {port} already listening")
        listener = Listener(port, on_accept)
        self._listeners[port] = listener
        return listener

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Demux an arriving packet to its connection (or a listener)."""
        segment = packet.payload
        if not isinstance(segment, Segment):
            return  # not TCP; ignore
        key = (segment.dport, segment.src, segment.sport)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(segment)
            return
        if segment.syn and not segment.is_ack:
            listener = self._listeners.get(segment.dport)
            if listener is not None:
                conn = Connection(self.sim, self.host, segment.dport,
                                  segment.src, segment.sport, self.config,
                                  active=False, stack=self)
                conn.probe = self.probe
                conn.sanitizer = self.sanitizer
                self._connections[key] = conn
                self.all_connections.append(conn)
                listener.on_accept(conn)
                conn.open_passive(segment)
        # Anything else (stray segment for a closed connection) is dropped;
        # injected resets carry an explicit RST segment (Connection.reset),
        # but we do not generate RSTs for stray traffic.

    # ------------------------------------------------------------------
    def forget(self, conn: Connection) -> None:
        """Remove a closed connection from the demux table."""
        key = (conn.local_port, conn.remote_addr, conn.remote_port)
        if self._connections.get(key) is conn:
            del self._connections[key]

    def abort_all(self) -> None:
        """Hard-stop every live connection (end of an experiment run)."""
        for conn in list(self._connections.values()):
            conn.abort()

    @property
    def open_connections(self) -> List[Connection]:
        return list(self._connections.values())

    def set_probe(self, probe) -> None:
        """Attach a TcpProbe; applies to existing and future connections."""
        self.probe = probe
        for conn in self._connections.values():
            conn.probe = probe

    def set_sanitizer(self, sanitizer) -> None:
        """Attach a sanitizer; applies to existing and future connections."""
        self.sanitizer = sanitizer
        for conn in self._connections.values():
            conn.sanitizer = sanitizer
