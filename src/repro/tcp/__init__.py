"""A from-scratch TCP implementation with the knobs the paper studies.

Public surface: :class:`TcpStack` (install on a host, then ``connect`` /
``listen``), :class:`TcpConfig` (all tunables), :class:`TcpProbe`
(tcp_probe-style tracing) and :class:`TcpMetricsCache` (§6.2.4).
"""

from .config import TcpConfig
from .congestion import Cubic, Reno, make_congestion_control
from .connection import Connection, RESET
from .metrics_cache import TcpMetricsCache
from .rto import RtoEstimator
from .segment import Segment, TCP_HEADER_BYTES
from .stack import Listener, TcpStack
from .trace import IdleRestartEvent, ProbeSample, RetxEvent, TcpProbe

__all__ = [
    "TcpConfig", "Cubic", "Reno", "make_congestion_control", "Connection",
    "TcpMetricsCache", "RtoEstimator", "Segment", "TCP_HEADER_BYTES",
    "Listener", "TcpStack", "TcpProbe", "ProbeSample", "RetxEvent",
    "IdleRestartEvent", "RESET",
]
