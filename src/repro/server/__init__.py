"""Origin web servers: the content side of the measurement setup."""

from .origin import OriginFarm, OriginServer

__all__ = ["OriginFarm", "OriginServer"]
