"""Origin web servers and the wired "Internet" between them and the proxy.

The paper's Figure 8 establishes that the proxy↔origin path is never the
bottleneck: first byte from the web server in ~14 ms on average, object
download in ~4 ms.  :class:`OriginFarm` builds one origin host per
domain, each behind a fast, low-latency wired link sized to land in that
regime, and :class:`OriginServer` answers requests after a small
first-byte delay (plus any long-poll hold the request asks for).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Optional

from ..net import DuplexLink, Host
from ..sim import Simulator
from ..tcp import TcpConfig, TcpStack
from ..web.http1 import HttpRequest, HttpResponseBody, HttpResponseHead

__all__ = ["OriginServer", "OriginFarm"]


class OriginServer:
    """A web server: responds to :class:`HttpRequest` messages on port 80."""

    def __init__(self, sim: Simulator, stack: TcpStack,
                 first_byte_delay: Callable[[], float]):
        self.sim = sim
        self.stack = stack
        self._first_byte_delay = first_byte_delay
        self.requests_served = 0
        stack.listen(80, self._on_accept)

    def _on_accept(self, conn) -> None:
        conn.on_message = self._on_request

    def _on_request(self, conn, message) -> None:
        if not isinstance(message, HttpRequest):
            return  # stray TLS bytes etc.; origins only speak HTTP
        body_bytes = message.response_bytes
        if body_bytes is None and message.context is not None:
            body_bytes = getattr(message.context, "size", None)
        if body_bytes is None:
            body_bytes = 1000
        delay = self._first_byte_delay() + message.server_delay
        self.sim.schedule(delay, self._respond, conn, message, body_bytes)

    def _respond(self, conn, request: HttpRequest, body_bytes: int) -> None:
        if conn.state == "CLOSED":
            return
        head = HttpResponseHead(request, content_length=body_bytes,
                                content_type=request.content_type,
                                push_hints=self._push_hints(request))
        conn.send_message(head, head.wire_size)
        conn.send_message(HttpResponseBody(request, body_bytes), body_bytes)
        self.requests_served += 1

    @staticmethod
    def _push_hints(request: HttpRequest, cap: int = 8):
        """Same-domain children of a document: what this server could push."""
        obj = request.context
        children = getattr(obj, "resolved_children", None)
        if not children:
            return []
        return [c for c in children
                if c.domain == request.domain][:cap]


class OriginFarm:
    """Lazily builds origin hosts (one per domain) wired to the proxy.

    Per-domain latency is deterministic in the domain name, spreading
    origins over a 2-10 ms one-way range so the proxy's measured
    first-byte times have realistic spread.
    """

    def __init__(self, sim: Simulator, proxy_host: Host,
                 bandwidth_bps: float = 100e6,
                 tcp_config: Optional[TcpConfig] = None):
        self.sim = sim
        self.proxy_host = proxy_host
        self.bandwidth_bps = bandwidth_bps
        self.tcp_config = tcp_config or TcpConfig()
        self._origins: Dict[str, OriginServer] = {}
        self.sanitizer: Optional[Any] = None  # repro.sanity.Sanitizer when checks are on

    def ensure_origin(self, domain: str) -> str:
        """Create (once) the origin host for ``domain``; returns its address."""
        if domain not in self._origins:
            host = Host(self.sim, domain)
            # crc32, not hash(): per-process hash salting would give each
            # process different latencies and break cross-process replay.
            latency = 0.002 + (zlib.crc32(domain.encode()) % 9) * 0.001  # 2-10 ms
            duplex = DuplexLink(self.sim, self.proxy_host, host,
                                bandwidth_down_bps=self.bandwidth_bps,
                                bandwidth_up_bps=self.bandwidth_bps,
                                latency=latency,
                                queue_limit_bytes=4 * 1024 * 1024)
            stack = TcpStack(self.sim, host, self.tcp_config)
            if self.sanitizer is not None:
                # Origins are built lazily mid-run; wire checks in as they
                # appear so byte conservation covers the wired hops too.
                duplex.forward.sanitizer = self.sanitizer
                duplex.backward.sanitizer = self.sanitizer
                stack.set_sanitizer(self.sanitizer)
            rng = self.sim.rng(f"origin/{domain}")
            self._origins[domain] = OriginServer(
                self.sim, stack,
                first_byte_delay=lambda r=rng: r.uniform(0.002, 0.010))
        return domain

    def origin_for(self, domain: str) -> OriginServer:
        self.ensure_origin(domain)
        return self._origins[domain]

    @property
    def domains(self) -> list:
        return sorted(self._origins)

    @property
    def total_requests_served(self) -> int:
        return sum(o.requests_served for o in self._origins.values())
