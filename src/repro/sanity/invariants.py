"""Runtime invariant checking: a sanitizer for discrete-event state.

The simulator's results are only as trustworthy as its bookkeeping, and
PR 1's fault injector now deliberately perturbs the cross-layer state
(RTT estimators, cwnd collapse, RRC promotions) the paper's headline
numbers rest on.  This module is the TSan-equivalent for that state: a
:class:`Sanitizer` that components report events to, and pluggable
:class:`Invariant` checks that verify the laws of TCP, the RRC state
graph, and link physics on every event.

Modes
-----
``off``
    No sanitizer is installed; components pay one ``is not None`` test
    per hook and nothing else.  Runs are byte-identical to a build
    without the sanity layer.
``warn``
    Violations are recorded (and counted in ``summarize_run``) but the
    run continues — the right mode for long campaigns, where a
    violation becomes a structured journal entry instead of lost hours.
``strict``
    The first violation raises :class:`InvariantViolation` carrying the
    simulated time, the offending component, and a ring buffer of the
    most recent simulator events for post-mortem context.

The mode comes from ``ExperimentConfig.checks``, falling back to the
``REPRO_CHECKS`` environment variable (how CI runs the whole tier-1
suite under ``strict``), falling back to ``off``.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["CHECK_MODES", "Invariant", "InvariantViolation", "Sanitizer",
           "ViolationRecord", "WedgeError", "resolve_check_mode"]

CHECK_MODES = ("off", "warn", "strict")

#: Environment fallback for the check mode (CI sets REPRO_CHECKS=strict).
CHECKS_ENV_VAR = "REPRO_CHECKS"


def resolve_check_mode(explicit: Optional[str] = None) -> str:
    """Resolve the effective check mode: explicit > $REPRO_CHECKS > off."""
    mode = explicit if explicit is not None else \
        os.environ.get(CHECKS_ENV_VAR, "off").strip().lower()
    if mode not in CHECK_MODES:
        raise ValueError(
            f"unknown check mode {mode!r}; choose from {CHECK_MODES}")
    return mode


class InvariantViolation(RuntimeError):
    """A simulation invariant did not hold.

    Carries enough context for a post-mortem without a debugger: the
    simulated time, the component, and the tail of the simulator's
    event stream leading up to the violation.
    """

    def __init__(self, invariant: str, component: str, message: str,
                 time: float = 0.0, recent_events: Optional[List[str]] = None):
        self.invariant = invariant
        self.component = component
        self.message = message
        self.time = time
        self.recent_events = list(recent_events or [])
        text = f"[t={time:.6f}] {invariant} violated by {component}: {message}"
        if self.recent_events:
            text += "\nrecent events (oldest first):\n" + "\n".join(
                f"  {line}" for line in self.recent_events)
        super().__init__(text)


class WedgeError(RuntimeError):
    """A trial exceeded its event budget without reaching its end time.

    Raised by the wedge watchdog so a pathological run (e.g. an event
    loop re-arming itself at zero delay) aborts one trial instead of
    hanging an entire campaign.
    """

    def __init__(self, events: int, sim_time: float, end_time: float):
        self.events = events
        self.sim_time = sim_time
        self.end_time = end_time
        super().__init__(
            f"trial wedged: {events} events fired but simulated time "
            f"only reached {sim_time:.3f}s of {end_time:.3f}s")


@dataclass
class ViolationRecord:
    """One recorded violation (warn mode keeps a list of these)."""

    invariant: str
    component: str
    message: str
    time: float

    def as_dict(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "component": self.component,
                "message": self.message, "time": self.time}


class Invariant:
    """Base class for pluggable checks.

    An invariant subscribes to one or more *topics* — hook points that
    instrumented components emit — and calls :meth:`Sanitizer.fail`
    when a law is broken.  ``finalize`` runs once at the end of a run
    for whole-run conservation/leak checks.
    """

    name = "invariant"
    topics: Tuple[str, ...] = ()

    def observe(self, sanitizer: "Sanitizer", topic: str, obj,
                info: dict) -> None:
        """React to one emitted event.  Default: nothing."""

    def finalize(self, sanitizer: "Sanitizer") -> None:
        """End-of-run check.  Default: nothing."""


class Sanitizer:
    """Event hub wiring instrumented components to registered invariants.

    Components hold an optional ``sanitizer`` attribute (``None`` when
    checks are off) and call :meth:`emit` at their hook points; the
    sanitizer keeps a ring buffer of recent events and dispatches each
    topic to the invariants subscribed to it.
    """

    def __init__(self, mode: str = "strict", ring_size: int = 64):
        if mode not in ("warn", "strict"):
            raise ValueError(
                f"sanitizer mode must be 'warn' or 'strict', not {mode!r}")
        self.mode = mode
        self.sim: Optional[Any] = None        # set by install_sanitizer
        self.violations: List[ViolationRecord] = []
        self.checks_run = 0
        self._ring = deque(maxlen=ring_size)  # (time, topic, detail)
        self._invariants: List[Invariant] = []
        self._by_topic: Dict[str, List[Invariant]] = {}

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def register(self, invariant: Invariant) -> None:
        """Add a pluggable invariant; it sees every topic it subscribes to."""
        self._invariants.append(invariant)
        for topic in invariant.topics:
            self._by_topic.setdefault(topic, []).append(invariant)

    # ------------------------------------------------------------------
    def emit(self, topic: str, obj, detail=None, **info) -> None:
        """Record a component event and run the invariants watching it.

        ``detail`` may be any object; it is kept as-is and only rendered
        (via ``str``) if a violation report formats the ring, so hot
        paths can pass live objects instead of pre-built strings.
        """
        self._ring.append((self.now, topic, detail))
        handlers = self._by_topic.get(topic)
        if handlers:
            self.checks_run += 1
            for invariant in handlers:
                invariant.observe(self, topic, obj, info)

    def check(self, condition: bool, invariant: str, component,
              message: str) -> bool:
        """Assert ``condition``; on failure record/raise per the mode."""
        if not condition:
            self.fail(invariant, component, message)
        return condition

    def fail(self, invariant, component, message: str) -> None:
        """Report a violation: record it, and raise in strict mode.

        ``invariant`` may be an :class:`Invariant` (the usual caller is
        a check reporting itself) or a bare name string.
        """
        name = getattr(invariant, "name", None) or str(invariant)
        record = ViolationRecord(invariant=name, component=str(component),
                                 message=message, time=self.now)
        self.violations.append(record)
        if self.mode == "strict":
            raise InvariantViolation(name, str(component), message,
                                     self.now, self.format_ring())

    def finalize(self) -> None:
        """Run every invariant's end-of-run checks."""
        for invariant in self._invariants:
            invariant.finalize(self)

    # ------------------------------------------------------------------
    def format_ring(self) -> List[str]:
        """The recent-event ring as readable lines (oldest first)."""
        lines = []
        for time, topic, detail in self._ring:
            suffix = f" {detail}" if detail else ""
            lines.append(f"t={time:.6f} {topic}{suffix}")
        return lines

    def report(self) -> Dict[str, object]:
        """JSON-able summary stored on the RunResult."""
        return {
            "mode": self.mode,
            "checks_run": self.checks_run,
            "invariants": [inv.name for inv in self._invariants],
            "violations": [v.as_dict() for v in self.violations],
        }
