"""Crash-safe, resumable experiment campaigns.

The ROADMAP's north star is production-scale sweeps; the failure mode
that kills those is losing hours of completed trials to one crash — a
wedged event loop, an unhandled exception in a fault-injected run, or
simply the operator's laptop going to sleep.  This module makes a sweep
a *campaign*:

* every trial runs isolated — an exception (including an
  :class:`InvariantViolation`) becomes a structured
  :class:`TrialFailure` record instead of killing the sweep;
* every finished trial is journaled to an append-only JSONL file with
  atomic single-``write`` appends, so a killed campaign loses at most
  the trial in flight;
* ``resume`` skips every (config-digest, seed) pair already journaled —
  including failed ones, which are deterministic and would fail again —
  and reconstructs the aggregate from the journal, so an interrupted
  campaign re-run converges to byte-identical aggregate results;
* a wedge watchdog (``max_events``) bounds every trial, so a
  pathological run aborts as a :class:`WedgeError` record instead of
  hanging the whole campaign.

The config digest deliberately excludes ``seed`` (it is the trial key's
second half), ``checks`` and ``max_events`` (observability knobs that
must not change which trials count as done).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.analysis import summarize_run
from ..experiments.runner import ExperimentConfig, RunResult, run_experiment
from ..faults import FaultPlan, FaultSpecError
from ..guard import (BoundedRing, ResourceBudget, ResourceExhausted,
                     journal_faults_from_env)
from .invariants import InvariantViolation, WedgeError

__all__ = ["CampaignJournal", "CampaignResult", "JournalFormatError",
           "JOURNAL_SCHEMA", "TrialFailure", "config_digest",
           "exhaustion_record", "failure_kind", "is_exhaustion_record",
           "run_campaign", "run_trial", "sweep_configs",
           "DEFAULT_EVENT_BUDGET"]

#: Version stamped into every journal record this code writes.  Loading
#: a record with a *newer* schema is refused loudly (mirroring the
#: corpus's :class:`~repro.chaos.corpus.CorpusFormatError`): a silently
#: misparsed journal would corrupt resume sets and aggregates.  Records
#: with no ``schema`` field predate versioning and load as legacy.
JOURNAL_SCHEMA = 1

#: Default per-trial event budget.  A full 20-site run fires ~225k
#: events; this is ~90x that — generous headroom for faulted runs, tight
#: enough that a zero-delay event loop aborts in seconds, not hours.
DEFAULT_EVENT_BUDGET = 20_000_000

#: Fields that do not change what a trial *measures* and are therefore
#: excluded from the digest: the seed is the trial key's second half,
#: and checks/max_events are observability/watchdog knobs.
_DIGEST_EXCLUDED = ("seed", "checks", "max_events")


def _fault_spec(fault_plan) -> Optional[str]:
    """Exact spec string for a config's fault plan (None if no plan)."""
    if fault_plan is None:
        return None
    try:
        return FaultPlan.parse(fault_plan).to_spec()
    except FaultSpecError:
        return str(fault_plan)


def _canon(value):
    """Canonicalize a config value into JSON-able, process-stable form.

    ``repr`` of callables and plain objects embeds memory addresses, so
    digests built on it would differ across processes and break resume.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canon(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _canon(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json.dumps(_canon(v), sort_keys=True) for v in value)
    if callable(value):
        module = getattr(value, "__module__", "?")
        qualname = getattr(value, "__qualname__", type(value).__qualname__)
        return f"callable:{module}.{qualname}"
    state = getattr(value, "__dict__", None)
    if state is not None:
        canon = {"__class__": type(value).__qualname__}
        for key in sorted(state):
            canon[str(key)] = _canon(state[key])
        return canon
    return repr(value)


def failure_kind(exc: BaseException) -> str:
    """The taxonomy slot for one trial-killing exception."""
    if isinstance(exc, InvariantViolation):
        return "invariant-violation"
    if isinstance(exc, WedgeError):
        return "wedge"
    if isinstance(exc, ResourceExhausted):
        return "resource-exhaustion"
    return "exception"


def config_digest(config: ExperimentConfig) -> str:
    """Process-stable digest identifying one experimental condition."""
    canon = {f.name: _canon(getattr(config, f.name))
             for f in dataclasses.fields(config)
             if f.name not in _DIGEST_EXCLUDED}
    blob = json.dumps(canon, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class TrialFailure:
    """A trial that died — structured, journal-able, and non-fatal.

    The ``kind`` taxonomy now has four members with distinct handling:

    * ``exception`` / ``wedge`` / ``invariant-violation`` — *genuine*
      failures: deterministic, journaled, never retried, skipped on
      resume (they would fail again);
    * ``resource-exhaustion`` — the environment ran out (RSS, disk,
      wall-clock), not the simulation: journaled so the campaign's loss
      is visible, but *excluded* from resume done-sets, because on a
      bigger box (or after freeing disk) the trial may well succeed.
    """

    kind: str                 # "exception" | "wedge" | "invariant-violation"
    #                         # | "resource-exhaustion"
    error_type: str
    message: str
    digest: str
    seed: int
    protocol: str
    network: str
    traceback_tail: List[str] = field(default_factory=list)
    # Replay context: the exact fault spec and (for chaos campaigns) the
    # master seed, so a journaled failure is reproducible from its JSON
    # record alone — `repro chaos --replay <journal-line>`.
    faults: Optional[str] = None
    master_seed: Optional[int] = None

    @classmethod
    def from_exception(cls, config: ExperimentConfig,
                       exc: BaseException,
                       master_seed: Optional[int] = None) -> "TrialFailure":
        tail = traceback.format_exception_only(type(exc), exc)
        return cls(kind=failure_kind(exc), error_type=type(exc).__name__,
                   message=str(exc), digest=config_digest(config),
                   seed=config.seed, protocol=config.protocol,
                   network=config.network,
                   traceback_tail=[line.rstrip("\n") for line in tail][-8:],
                   faults=_fault_spec(config.fault_plan),
                   master_seed=master_seed)

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "error_type": self.error_type,
                "message": self.message, "digest": self.digest,
                "seed": self.seed, "protocol": self.protocol,
                "network": self.network,
                "traceback_tail": list(self.traceback_tail),
                "faults": self.faults, "master_seed": self.master_seed}


class JournalFormatError(ValueError):
    """A journal record this version of the code cannot faithfully read."""


#: Append retry backoff: 0.05s, 0.1s, 0.2s, ... capped at 0.5s — disk
#: faults (ENOSPC after a log rotation, a transient NFS EIO) either
#: clear in well under the ~1s a full retry ladder spends, or they are
#: persistent and the journal should degrade rather than spin.
_APPEND_RETRY_BASE = 0.05
_APPEND_RETRY_CAP = 0.5

#: Default append retries before the journal degrades to its in-memory
#: ring, and the default ring capacity (records, not bytes — campaign
#: records are ~1 KiB, so this bounds the degraded buffer at a few MiB).
DEFAULT_APPEND_RETRIES = 4
DEFAULT_RING_CAPACITY = 4096


class CampaignJournal:
    """Append-only JSONL checkpoint of campaign trial outcomes.

    Each record is one ``json.dumps(..., sort_keys=True)`` line, written
    with a single ``write`` + flush so a crash leaves at most one
    truncated final line — which :meth:`load` tolerates by skipping
    undecodable lines.

    ``fsync_every`` batches durability: the file is fsynced once per N
    appends (and on :meth:`close`/:meth:`sync`) instead of per record.
    The default of 1 keeps the serial per-record discipline; parallel
    workers raise it so a journal-per-worker campaign is not fsync-bound.
    A hard *machine* crash can lose up to N-1 buffered records — a
    killed *process* loses nothing, the OS already has the writes — and
    resume simply re-runs whatever the tail lost.

    **Write-path hardening** (the guard layer): an ``OSError`` mid-append
    (ENOSPC, EIO — injectable via ``REPRO_JOURNAL_FAULTS``) is retried
    with capped exponential backoff; before every retry the file is
    truncated back to the last known-good byte offset, so a torn partial
    write can never leave a half-record for the next append to glue onto.
    If the retries exhaust, the journal *degrades*: records buffer into a
    :class:`~repro.guard.ring.BoundedRing` (evictions counted, never
    unbounded), and every subsequent append first probes the disk —
    the moment a write succeeds, the buffered backlog flushes in order
    and normal appends resume.  :meth:`stats` reports every error,
    retry, degraded append, flush, and drop, so the health report can
    state the campaign's exact loss instead of crashing unclassified.
    """

    def __init__(self, path: str, fsync_every: int = 1,
                 faults=None,
                 max_append_retries: int = DEFAULT_APPEND_RETRIES,
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 retry_sleep: Callable[[float], None] = time.sleep):
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = path
        self.fsync_every = fsync_every
        self._handle = None
        self._pending = 0
        self._new_file_dir: Optional[str] = None
        self._faults = faults if faults is not None \
            else journal_faults_from_env()
        self._max_append_retries = max_append_retries
        self._retry_sleep = retry_sleep
        self._ring: BoundedRing[Dict[str, object]] = \
            BoundedRing(ring_capacity)
        self._degraded = False
        self._good_size = 0        # bytes known to end on a record boundary
        self._write_attempts = 0   # 1-based physical-write counter (faults)
        self.io_errors = 0
        self.io_retries = 0
        self.degraded_appends = 0
        self.ring_flushed = 0
        self.torn_repairs = 0
        self.bytes_written = 0
        self.last_load_stats: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    def _open(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        created = not os.path.exists(self.path)
        torn_tail = False
        if not created and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                torn_tail = handle.read(1) != b"\n"
        self._handle = open(self.path, "a", encoding="utf-8")
        if torn_tail:
            # A crash can leave a torn final line with no newline;
            # without this guard the next append would glue itself onto
            # the torn fragment and both records would be lost.
            self._handle.write("\n")
            self._handle.flush()
        if created:
            self._new_file_dir = directory
        self._good_size = os.path.getsize(self.path)

    def append(self, record: Dict[str, object]) -> int:
        """Append one record; returns the bytes that reached the file.

        Never raises for I/O trouble: after the retry ladder exhausts,
        the record lands in the bounded ring (return value 0) and the
        degradation is visible in :meth:`stats` — campaigns degrade,
        they don't die on a full disk.
        """
        if self._degraded and not self._try_recover():
            self._ring.push(record)
            self.degraded_appends += 1
            return 0
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self._write_with_retry(line)
        except OSError:
            self._degraded = True
            self._ring.push(record)
            self.degraded_appends += 1
            return 0
        return self._note_good_write(line)

    # -- hardened write path -------------------------------------------
    def _write_line(self, line: str) -> None:
        """One physical write attempt (the fault-injection point)."""
        if self._handle is None:
            self._open()
        self._write_attempts += 1
        if self._faults is not None:
            self._faults.on_append(self._write_attempts, self._handle, line)
        self._handle.write(line)
        self._handle.flush()

    def _write_with_retry(self, line: str) -> None:
        attempt = 0
        while True:
            try:
                self._write_line(line)
                return
            except OSError:
                self.io_errors += 1
                self._repair_tail()
                if attempt >= self._max_append_retries:
                    raise
                self._retry_sleep(min(_APPEND_RETRY_CAP,
                                      _APPEND_RETRY_BASE * (2 ** attempt)))
                self.io_retries += 1
                attempt += 1

    def _repair_tail(self) -> None:
        """Truncate back to the last good offset after a failed write.

        A mid-record ``OSError`` can leave any prefix of the line on
        disk; re-writing on top of that prefix would corrupt *two*
        records.  The journal knows the byte offset of the last complete
        record, so repair is one truncate.  The handle is dropped (not
        flushed — its buffer may hold the torn bytes) and lazily
        reopened by the next write.
        """
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
            self._pending = 0
        try:
            if os.path.getsize(self.path) > self._good_size:
                os.truncate(self.path, self._good_size)
                self.torn_repairs += 1
        except OSError:
            pass

    def _try_recover(self) -> bool:
        """Drain the degraded ring back to disk; True when fully clear.

        One probe write per buffered record, oldest first, stopping at
        the first failure (no retry ladder here — a still-broken disk
        should cost one failed write per append, not a backoff storm).
        """
        while self._ring:
            line = json.dumps(self._ring.peek_oldest(),
                              sort_keys=True) + "\n"
            try:
                self._write_line(line)
            except OSError:
                self.io_errors += 1
                self._repair_tail()
                return False
            self._ring.pop_oldest()
            self._note_good_write(line)
            self.ring_flushed += 1
        self._degraded = False
        return True

    def _note_good_write(self, line: str) -> int:
        size = len(line.encode("utf-8"))
        self._good_size += size
        self.bytes_written += size
        self._pending += 1
        if self._pending >= self.fsync_every:
            self._fsync_now()
        return size

    def stats(self) -> Dict[str, object]:
        """Write-path health counters for the campaign health report."""
        return {
            "io_errors": self.io_errors,
            "io_retries": self.io_retries,
            "degraded": self._degraded,
            "degraded_appends": self.degraded_appends,
            "ring_buffered": len(self._ring),
            "ring_flushed": self.ring_flushed,
            "ring_dropped": self._ring.dropped,
            "torn_repairs": self.torn_repairs,
            "bytes_written": self.bytes_written,
            "load": self.last_load_stats,
        }

    def _fsync_now(self) -> None:
        os.fsync(self._handle.fileno())
        self._pending = 0
        if self._new_file_dir is not None:
            # fsyncing the file makes its *bytes* durable; the brand-new
            # directory entry needs its own fsync or a hard kill right
            # after the first append can lose the whole journal file.
            self._fsync_directory(self._new_file_dir)
            self._new_file_dir = None

    def sync(self) -> None:
        """Flush any batched appends to the platter."""
        if self._handle is not None and self._pending:
            self._fsync_now()

    def close(self) -> None:
        if self._degraded or self._ring:
            # Last chance to land the degraded backlog before the
            # campaign ends; anything still buffered after this is
            # genuinely lost and counted in stats()["ring_buffered"].
            self._try_recover()
        if self._handle is not None:
            try:
                self.sync()
            except OSError:
                self.io_errors += 1
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _fsync_directory(directory: str) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - e.g. Windows
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(fd)

    def load(self) -> List[Dict[str, object]]:
        """All decodable records (a truncated tail line is skipped).

        Raises :class:`JournalFormatError` for any record stamped with a
        schema newer than this code's :data:`JOURNAL_SCHEMA` — resuming
        or aggregating through a misread record would silently corrupt
        the campaign, so the refusal is loud and names the line.

        Salvage accounting lands in ``last_load_stats``: an undecodable
        *final* line is the expected crash-truncated tail; an
        undecodable *interior* line is corruption worth shouting about,
        and both counts surface in the campaign health report.
        """
        records: List[Dict[str, object]] = []
        stats = {"records": 0, "torn_tail": 0, "corrupt_lines": 0}
        self.last_load_stats = stats
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    stats["torn_tail"] += 1  # crash-truncated write
                else:
                    stats["corrupt_lines"] += 1
                continue
            if not isinstance(record, dict):
                stats["corrupt_lines"] += 1
                continue
            schema = record.get("schema")
            if isinstance(schema, (int, float)) and schema > JOURNAL_SCHEMA:
                raise JournalFormatError(
                    f"{self.path}:{number}: journal record schema "
                    f"{schema} is newer than this code's "
                    f"{JOURNAL_SCHEMA}; upgrade repro to read it")
            records.append(record)
        stats["records"] = len(records)
        return records

    def completed(self) -> Dict[Tuple[str, int], Dict[str, object]]:
        """(digest, seed) -> last journaled trial record.

        ``resource-exhaustion`` records are deliberately *not* in the
        done-set: a trial the environment killed (OOM, full disk, wall
        clock) is not a verdict on the trial, so resume re-runs it.
        """
        done: Dict[Tuple[str, int], Dict[str, object]] = {}
        for record in self.load():
            if record.get("kind") != "trial":
                continue
            if is_exhaustion_record(record):
                continue
            done[(str(record.get("digest")), int(record.get("seed", 0)))] = \
                record
        return done


def is_exhaustion_record(record: Dict[str, object]) -> bool:
    """True for a journaled trial killed by a resource ceiling."""
    failure = record.get("failure")
    return bool(isinstance(failure, dict)
                and failure.get("kind") == "resource-exhaustion")


def exhaustion_record(config: ExperimentConfig, exc: ResourceExhausted,
                      master_seed: Optional[int] = None
                      ) -> Dict[str, object]:
    """Synthesize the journal record for a resource-exhausted trial.

    Used by the serial campaign loop when the budget trips between
    trials, and by the parallel supervisor when it SIGKILLs a worker
    over its RSS ceiling — in both cases there is no run to summarize,
    only the classified reason it could not happen.
    """
    failure = TrialFailure.from_exception(config, exc,
                                          master_seed=master_seed)
    return {"kind": "trial", "schema": JOURNAL_SCHEMA,
            "digest": config_digest(config), "seed": config.seed,
            "protocol": config.protocol, "network": config.network,
            "status": "failed", "violations": 0, "summary": None,
            "failure": failure.as_dict()}


@dataclass
class CampaignResult:
    """Everything a campaign produced, journaled and live."""

    records: List[Dict[str, object]] = field(default_factory=list)
    results: Dict[Tuple[str, int], RunResult] = field(default_factory=dict)
    journal_path: Optional[str] = None
    stopped_early: bool = False
    #: Supervision counters when the campaign ran under ``--workers``
    #: (see :mod:`repro.parallel`); None for serial runs.
    parallel: Optional[Dict[str, object]] = None
    #: True when a :class:`~repro.guard.ResourceBudget` ceiling stopped
    #: the campaign before every trial ran.
    exhausted: bool = False
    #: Journal write-path health (:meth:`CampaignJournal.stats`); None
    #: when the campaign ran without a journal.
    journal_stats: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.records if r.get("status") == "ok")

    @property
    def failed_count(self) -> int:
        return sum(1 for r in self.records if r.get("status") == "failed")

    @property
    def exhausted_count(self) -> int:
        return sum(1 for r in self.records if is_exhaustion_record(r))

    @property
    def resumed_count(self) -> int:
        return sum(1 for r in self.records if r.get("resumed"))

    @property
    def failures(self) -> List[Dict[str, object]]:
        return [r["failure"] for r in self.records
                if r.get("status") == "failed" and r.get("failure")]

    @property
    def violation_count(self) -> int:
        return sum(int(r.get("violations") or 0) for r in self.records)

    # ------------------------------------------------------------------
    def aggregate(self) -> Dict[str, Dict[str, object]]:
        """Per-(protocol, network) aggregates, computed from the journal
        records only — so a resumed campaign reproduces them exactly."""
        import statistics

        groups: Dict[str, List[Dict[str, object]]] = {}
        for record in self.records:
            key = f"{record.get('protocol')}/{record.get('network')}"
            groups.setdefault(key, []).append(record)
        aggregates: Dict[str, Dict[str, object]] = {}
        for key in sorted(groups):
            records = groups[key]
            medians = [r["summary"]["median_plt"] for r in records
                       if r.get("status") == "ok" and r.get("summary")
                       and r["summary"].get("median_plt") is not None]
            aggregates[key] = {
                "trials": len(records),
                "ok": sum(1 for r in records if r.get("status") == "ok"),
                "failed": sum(1 for r in records
                              if r.get("status") == "failed"),
                "violations": sum(int(r.get("violations") or 0)
                                  for r in records),
                "median_plt": statistics.median(medians) if medians else None,
                "mean_plt": statistics.mean(medians) if medians else None,
            }
        return aggregates


def sweep_configs(base: ExperimentConfig, n_runs: int,
                  protocols: Optional[List[str]] = None
                  ) -> List[ExperimentConfig]:
    """Expand a base condition into per-trial configs (seeded, per protocol)."""
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    configs: List[ExperimentConfig] = []
    for protocol in (protocols or [base.protocol]):
        for i in range(n_runs):
            configs.append(base.with_overrides(protocol=protocol,
                                               seed=base.seed + i))
    return configs


def run_trial(config: ExperimentConfig,
              event_budget: Optional[int] = DEFAULT_EVENT_BUDGET,
              pages=None,
              keep_run: Optional[List[RunResult]] = None
              ) -> Dict[str, object]:
    """Run one isolated trial and return its journal record.

    This is the single place a plain-campaign record is built, shared by
    the serial loop and the parallel workers: a record for a given
    (config, event_budget) is byte-identical no matter which process
    produced it, which is what makes the parallel merge's
    byte-identical-to-serial guarantee possible.  ``keep_run`` (if
    given) receives the live :class:`RunResult` on success.
    """
    trial = config
    if trial.max_events is None and event_budget is not None:
        trial = trial.with_overrides(max_events=event_budget)
    record: Dict[str, object] = {
        "kind": "trial", "schema": JOURNAL_SCHEMA,
        "digest": config_digest(config), "seed": config.seed,
        "protocol": config.protocol, "network": config.network,
    }
    try:
        run = run_experiment(trial, pages)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        failure = TrialFailure.from_exception(trial, exc)
        record.update(status="failed", violations=_exc_violations(exc),
                      summary=None, failure=failure.as_dict())
    else:
        violations = 0
        if run.sanity_report is not None:
            violations = len(run.sanity_report["violations"])
        record.update(status="ok", violations=violations,
                      summary=summarize_run(run), failure=None)
        if keep_run is not None:
            keep_run.append(run)
    return record


def run_campaign(configs: List[ExperimentConfig],
                 journal_path: Optional[str] = None,
                 resume: bool = False,
                 event_budget: Optional[int] = DEFAULT_EVENT_BUDGET,
                 pages=None,
                 should_stop: Optional[Callable[[], bool]] = None,
                 budget: Optional[ResourceBudget] = None
                 ) -> CampaignResult:
    """Run every config as one isolated, journaled, resumable trial.

    ``resume`` (requires ``journal_path``) skips trials whose
    (config-digest, seed) pair is already journaled; skipped records are
    carried into the result with ``resumed: true`` so aggregates match
    an uninterrupted campaign exactly.  ``event_budget`` applies the
    wedge watchdog to configs that do not set ``max_events`` themselves.
    ``should_stop`` is polled between trials (the CLI wires SIGINT/
    SIGTERM to it): the in-flight trial drains to the journal, then the
    campaign returns with ``stopped_early`` set instead of losing work.

    ``budget`` (a :class:`~repro.guard.ResourceBudget`) is checked
    between trials: crossing a ceiling journals one classified
    ``resource-exhaustion`` record for the trial that could not start,
    sets ``result.exhausted``, and stops — the un-run tail stays out of
    the journal, so ``--resume`` picks it up on a healthier box.
    """
    journal = CampaignJournal(journal_path) if journal_path else None
    done: Dict[Tuple[str, int], Dict[str, object]] = {}
    if resume:
        if journal is None:
            raise ValueError("resume requires a journal path")
        if not os.path.exists(journal.path):
            # A missing journal on resume is almost always a typo'd path;
            # silently re-running every trial would defeat the point.
            raise FileNotFoundError(
                f"cannot resume: journal {journal.path!r} does not exist")
        done = journal.completed()

    result = CampaignResult(journal_path=journal_path)
    records = result.records
    try:
        for config in configs:
            if should_stop is not None and should_stop():
                result.stopped_early = True
                break
            digest = config_digest(config)
            key = (digest, config.seed)
            prior = done.get(key)
            if prior is not None:
                record = dict(prior)
                record["resumed"] = True
                records.append(record)  # repro-lint: disable=MEM001 -- one record per trial, bounded by the config sweep
                continue
            if budget is not None:
                try:
                    budget.check()
                except ResourceExhausted as exc:
                    record = exhaustion_record(config, exc)
                    if journal is not None:
                        journal.append(record)
                    records.append(record)  # repro-lint: disable=MEM001 -- one record per trial, bounded by the config sweep
                    result.exhausted = True
                    break
            keep: List[RunResult] = []
            record = run_trial(config, event_budget=event_budget,
                               pages=pages, keep_run=keep)
            if keep:
                result.results[key] = keep[0]
            if journal is not None:
                written = journal.append(record)
                if budget is not None:
                    budget.note_journal_bytes(written)
            records.append(record)  # repro-lint: disable=MEM001 -- one record per trial, bounded by the config sweep
    finally:
        if journal is not None:
            journal.close()
            result.journal_stats = journal.stats()
    return result


def _exc_violations(exc: BaseException) -> int:
    """An InvariantViolation is itself one recorded violation."""
    return 1 if isinstance(exc, InvariantViolation) else 0
