"""Runtime invariant sanitizer and crash-safe campaign orchestration.

Two halves:

* :mod:`repro.sanity.invariants` / :mod:`repro.sanity.checks` — a
  TSan-style runtime checker for discrete-event state: pluggable
  :class:`Invariant` checks over the simulator clock, TCP sequence and
  congestion state, link byte conservation, RRC state-graph legality,
  browser lifecycle, and the SPDY proxy's stream binding, with modes
  ``off | warn | strict`` (``ExperimentConfig.checks``, ``--check``, or
  ``REPRO_CHECKS``).
* :mod:`repro.sanity.campaign` — isolated, journaled, resumable
  experiment sweeps with a wedge watchdog.
"""

from .campaign import (CampaignJournal, CampaignResult, DEFAULT_EVENT_BUDGET,
                       JOURNAL_SCHEMA, JournalFormatError, TrialFailure,
                       config_digest, run_campaign, run_trial, sweep_configs)
from .checks import default_invariants, install_sanitizer
from .invariants import (CHECK_MODES, Invariant, InvariantViolation,
                         Sanitizer, ViolationRecord, WedgeError,
                         resolve_check_mode)

__all__ = [
    "CHECK_MODES", "CampaignJournal", "CampaignResult",
    "DEFAULT_EVENT_BUDGET", "Invariant", "InvariantViolation",
    "JOURNAL_SCHEMA", "JournalFormatError", "Sanitizer", "TrialFailure",
    "ViolationRecord", "WedgeError", "config_digest", "default_invariants",
    "install_sanitizer", "resolve_check_mode", "run_campaign", "run_trial",
    "sweep_configs",
]
