"""The default invariant catalog and testbed wiring.

Each invariant here encodes a law that no correct run — faulted or not —
may break:

* ``sim.monotonic-time`` — the event loop never fires an event before
  the current clock, and event times are finite.
* ``tcp.window-sane`` — cwnd is positive and bounded by the configured
  maximum; ssthresh is positive; ``snd_una`` never passes ``snd_nxt``;
  acked bytes never exceed sent bytes.
* ``tcp.sequence-space`` — no ACK acknowledges data beyond ``snd_nxt``;
  only sent, still-unacked sequence ranges are retransmitted; the
  receiver consumes segments only at or below ``rcv_nxt``.
* ``link.byte-conservation`` — per link, accepted = delivered + lost +
  in-flight, in packets and in bytes, and queues never go negative.
* ``rrc.legal-transition`` — radio state changes follow the machine's
  state graph (promotions, inactivity demotions, forced releases).
* ``rrc.energy-accounting`` — time-in-state totals are non-negative and
  sum to no more than the run duration; power constants are non-negative.
* ``browser.lifecycle`` — at onLoad nothing is outstanding, no stall
  watchdogs leak, and object timelines are ordered; after a page-load
  abandon the fetcher holds zero in-flight requests.
* ``proxy.stream-binding`` — without late binding every frame of a
  stream is written to its home connection, and streams homed on a
  removed connection do not keep queued frames.
* ``tcp.no-connection-leak`` — closed/reset connections do not linger
  in any stack's demux table at end of run.

:func:`install_sanitizer` attaches a :class:`Sanitizer` to a fully
wired testbed (simulator, both TCP stacks, every link, the RRC machine,
the browser, and the SPDY proxy's schedulers) and registers this
catalog.  Installation is passive: hooks only observe, so enabling
checks never perturbs RNG draws or event ordering.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from .invariants import Invariant, Sanitizer

__all__ = ["default_invariants", "install_sanitizer",
           "EventMonotonicity", "TcpWindowSane", "TcpSequenceSpace",
           "LinkConservation", "RrcLegality", "RrcEnergyAccounting",
           "BrowserLifecycle", "SchedulerBinding", "ConnectionLeak"]


class EventMonotonicity(Invariant):
    """Simulated time only moves forward, one finite step at a time."""

    name = "sim.monotonic-time"
    topics = ("sim.event",)

    def observe(self, sanitizer, topic, sim, info) -> None:
        event = info["event"]
        if not math.isfinite(event.time):
            sanitizer.fail(self.name, "Simulator",
                           f"event scheduled at non-finite time {event.time!r}")
        elif event.time < sim.now:
            sanitizer.fail(
                self.name, "Simulator",
                f"event at t={event.time:.6f} fired after clock reached "
                f"t={sim.now:.6f} (heap order corrupted?)")


class TcpWindowSane(Invariant):
    """cwnd/ssthresh positivity and boundedness, sender counters ordered."""

    name = "tcp.window-sane"
    topics = ("tcp.segment",)

    def observe(self, sanitizer, topic, conn, info) -> None:
        cwnd = conn.cc.cwnd
        ssthresh = conn.cc.ssthresh
        max_cwnd = getattr(conn.config, "max_cwnd_segments", None)
        if not (cwnd > 0 and math.isfinite(cwnd)):
            sanitizer.fail(self.name, conn.conn_id,
                           f"cwnd={cwnd!r} is not positive and finite")
        elif max_cwnd is not None and cwnd > max_cwnd:
            sanitizer.fail(self.name, conn.conn_id,
                           f"cwnd={cwnd:.2f} exceeds configured maximum "
                           f"{max_cwnd} segments")
        if not (ssthresh > 0):
            sanitizer.fail(self.name, conn.conn_id,
                           f"ssthresh={ssthresh!r} is not positive")
        if conn.snd_una > conn.snd_nxt:
            sanitizer.fail(self.name, conn.conn_id,
                           f"snd_una={conn.snd_una} ahead of "
                           f"snd_nxt={conn.snd_nxt}")
        if conn.stats.bytes_acked > conn.stats.bytes_sent:
            sanitizer.fail(self.name, conn.conn_id,
                           f"bytes_acked={conn.stats.bytes_acked} exceeds "
                           f"bytes_sent={conn.stats.bytes_sent}")


class TcpSequenceSpace(Invariant):
    """ACKs, retransmissions and receive-side consumption stay in bounds."""

    name = "tcp.sequence-space"
    topics = ("tcp.ack", "tcp.retransmit", "tcp.consume")

    def observe(self, sanitizer, topic, conn, info) -> None:
        if topic == "tcp.ack":
            ack = info["ack"]
            if ack > conn.snd_nxt:
                sanitizer.fail(self.name, conn.conn_id,
                               f"ACK {ack} acknowledges data beyond "
                               f"snd_nxt={conn.snd_nxt}")
        elif topic == "tcp.retransmit":
            record = info["record"]
            if record.end_seq > conn.snd_nxt:
                sanitizer.fail(self.name, conn.conn_id,
                               f"retransmission of [{record.seq}, "
                               f"{record.end_seq}) beyond snd_nxt="
                               f"{conn.snd_nxt} (never sent)")
            if record.acked:
                sanitizer.fail(self.name, conn.conn_id,
                               f"retransmission of already-acked segment "
                               f"seq={record.seq}")
        else:  # tcp.consume
            seq, end_seq = info["seq"], info["end_seq"]
            if not (seq <= conn.rcv_nxt < end_seq):
                sanitizer.fail(self.name, conn.conn_id,
                               f"consumed segment [{seq}, {end_seq}) not "
                               f"anchored at rcv_nxt={conn.rcv_nxt}")


class LinkConservation(Invariant):
    """delivered + dropped + in-flight == injected, per link, always."""

    name = "link.byte-conservation"
    topics = ("link.event",)

    def __init__(self, links: Optional[List] = None,
                 links_fn: Optional[Callable[[], List]] = None):
        # links_fn re-discovers at finalize time, catching links created
        # mid-run (origin hosts are built lazily on first request).
        self.links = list(links or [])
        self.links_fn = links_fn

    def observe(self, sanitizer, topic, link, info) -> None:
        self._check(sanitizer, link)

    def finalize(self, sanitizer) -> None:
        links = self.links_fn() if self.links_fn is not None else self.links
        for link in links:
            self._check(sanitizer, link)

    def _check(self, sanitizer, link) -> None:
        in_flight = link.packets_in_flight
        if in_flight < 0 or link.bytes_in_flight < 0:
            sanitizer.fail(self.name, link.name,
                           f"negative in-flight accounting "
                           f"({in_flight} packets, "
                           f"{link.bytes_in_flight} bytes)")
            return
        if link.backlog_bytes < 0:
            sanitizer.fail(self.name, link.name,
                           f"negative queue backlog {link.backlog_bytes}")
        if link.packets_accepted != (link.packets_delivered
                                     + link.packets_lost + in_flight):
            sanitizer.fail(
                self.name, link.name,
                f"packet conservation broken: accepted="
                f"{link.packets_accepted} != delivered="
                f"{link.packets_delivered} + lost={link.packets_lost} "
                f"+ in-flight={in_flight}")
        elif link.bytes_accepted != (link.bytes_delivered
                                     + link.bytes_lost + link.bytes_in_flight):
            sanitizer.fail(
                self.name, link.name,
                f"byte conservation broken: accepted={link.bytes_accepted} "
                f"!= delivered={link.bytes_delivered} + lost="
                f"{link.bytes_lost} + in-flight={link.bytes_in_flight}")


class RrcLegality(Invariant):
    """Radio state transitions follow the machine's state graph."""

    name = "rrc.legal-transition"
    topics = ("rrc.transition",)

    def observe(self, sanitizer, topic, machine, info) -> None:
        legal = machine.legal_transitions()
        if legal is None:
            return
        old, new = info["old"], info["new"]
        if (old, new) not in legal:
            sanitizer.fail(self.name, machine.name,
                           f"illegal RRC transition {old} -> {new}")


class RrcEnergyAccounting(Invariant):
    """Time-in-state and power accounting stay physical (end of run)."""

    name = "rrc.energy-accounting"
    topics = ()

    def __init__(self, machine=None):
        self.machine = machine

    def finalize(self, sanitizer) -> None:
        machine = self.machine
        if machine is None:
            return
        config = getattr(machine, "config", None)
        totals = machine.time_in_states()
        for state, seconds in totals.items():
            if seconds < 0:
                sanitizer.fail(self.name, machine.name,
                               f"negative time in state {state}: {seconds}")
        duration = sanitizer.now
        if duration > 0 and sum(totals.values()) > duration * (1 + 1e-9) + 1e-6:
            sanitizer.fail(self.name, machine.name,
                           f"time in states sums to {sum(totals.values()):.6f}"
                           f"s over a {duration:.6f}s run")
        power = getattr(config, "power_mw", {})
        for state, mw in power.items():
            if mw < 0:
                sanitizer.fail(self.name, machine.name,
                               f"negative power for state {state}: {mw} mW")


class BrowserLifecycle(Invariant):
    """No orphaned work at page-load end; object timelines are ordered."""

    name = "browser.lifecycle"
    topics = ("browser.onload", "browser.abandon")

    def observe(self, sanitizer, topic, browser, info) -> None:
        if topic == "browser.onload":
            self._check_onload(sanitizer, browser)
        else:
            self._check_abandon(sanitizer, browser, info)

    def _check_onload(self, sanitizer, browser) -> None:
        record = browser._record
        label = f"browser/page{record.site_id}" if record else "browser"
        if browser._outstanding:
            sanitizer.fail(self.name, label,
                           f"onLoad fired with {len(browser._outstanding)} "
                           f"objects still outstanding")
        if browser._watchdogs:
            sanitizer.fail(self.name, label,
                           f"{len(browser._watchdogs)} stall watchdogs "
                           f"leaked past onLoad")
        if record is not None:
            for timing in record.objects:
                if (timing.complete_at is not None
                        and timing.complete_at < timing.discovered_at):
                    sanitizer.fail(self.name, label,
                                   f"object {timing.key} completed at "
                                   f"{timing.complete_at:.6f} before its "
                                   f"discovery at {timing.discovered_at:.6f}")

    def _check_abandon(self, sanitizer, browser, info) -> None:
        fetcher = info["fetcher"]
        inflight = getattr(fetcher, "inflight_count", None)
        if inflight:  # None (no accounting) and 0 both pass
            record = browser._record
            label = f"browser/page{record.site_id}" if record else "browser"
            sanitizer.fail(self.name, label,
                           f"abandoned page load left {inflight} requests "
                           f"in flight in the {fetcher.name} fetcher")


class SchedulerBinding(Invariant):
    """SPDY frame scheduling respects static binding and cleans up."""

    name = "proxy.stream-binding"
    topics = ("proxy.frame", "proxy.conn-removed")

    def observe(self, sanitizer, topic, scheduler, info) -> None:
        if topic == "proxy.frame":
            stream, conn = info["stream"], info["conn"]
            if not scheduler.late_binding and conn is not stream.conn:
                sanitizer.fail(self.name, f"stream{stream.stream_id}",
                               "static binding violated: frame written to a "
                               "connection other than the stream's home")
        else:  # proxy.conn-removed
            conn = info["conn"]
            if scheduler.late_binding:
                return
            for stream in scheduler._streams.values():
                if stream.conn is conn and stream.pending:
                    sanitizer.fail(self.name, f"stream{stream.stream_id}",
                                   "stream kept queued frames after its home "
                                   "connection was removed")


class ConnectionLeak(Invariant):
    """Dead connections must leave the demux table (end of run)."""

    name = "tcp.no-connection-leak"
    topics = ()

    def __init__(self, stacks: Optional[List] = None):
        self.stacks = list(stacks or [])

    def finalize(self, sanitizer) -> None:
        for stack in self.stacks:
            for conn in stack.open_connections:
                if conn.state in ("CLOSED", "RESET"):
                    sanitizer.fail(self.name, conn.conn_id,
                                   f"connection in state {conn.state} still "
                                   f"registered in {stack.host.address}'s "
                                   f"demux table")


class _SchedulerFinalizer(Invariant):
    """End-of-run sweep over every SPDY scheduler created during the run."""

    name = "proxy.no-stranded-streams"
    topics = ()

    def __init__(self, spdy_proxy):
        self.spdy_proxy = spdy_proxy

    def finalize(self, sanitizer) -> None:
        for group in self.spdy_proxy._groups.values():
            scheduler = group.scheduler
            if scheduler.late_binding:
                continue
            for stream in scheduler._streams.values():
                if stream.pending and stream.conn.state == "RESET":
                    sanitizer.fail(self.name, f"stream{stream.stream_id}",
                                   "stream holds queued frames on a reset "
                                   "connection at end of run")


# ----------------------------------------------------------------------
# wiring
# ----------------------------------------------------------------------
def _testbed_links(testbed) -> List:
    """Every link reachable from the testbed's hosts (deduplicated).

    Origin hosts are created lazily during a run, so this is evaluated
    again at finalize time via :class:`LinkConservation`'s ``links_fn``.
    """
    links: List = []
    seen = set()
    hosts = [testbed.client_host, testbed.proxy_host]
    farm = testbed.farm
    for domain in sorted(farm._origins):
        hosts.append(farm._origins[domain].stack.host)
    for host in hosts:
        candidates = list(host._routes.values())
        if host._default_route is not None:
            candidates.append(host._default_route)
        for link in candidates:
            if id(link) not in seen:
                seen.add(id(link))
                links.append(link)
    return links


def default_invariants(testbed, browser=None) -> List[Invariant]:
    """The full catalog, bound to one testbed's components."""
    return [
        EventMonotonicity(),
        TcpWindowSane(),
        TcpSequenceSpace(),
        LinkConservation(links_fn=lambda: _testbed_links(testbed)),
        RrcLegality(),
        RrcEnergyAccounting(machine=testbed.radio),
        BrowserLifecycle(),
        SchedulerBinding(),
        _SchedulerFinalizer(testbed.spdy_proxy),
        ConnectionLeak(stacks=[testbed.client_stack, testbed.proxy_stack]),
    ]


def install_sanitizer(sanitizer: Sanitizer, testbed, browser=None,
                      invariants: Optional[List[Invariant]] = None) -> None:
    """Attach ``sanitizer`` to every instrumented component of a testbed.

    ``invariants=None`` registers the default catalog; pass a list to
    run a custom set (they still see every emitted topic they subscribe
    to).  Safe to call exactly once per testbed.
    """
    sanitizer.sim = testbed.sim
    testbed.sim.sanitizer = sanitizer
    for stack in (testbed.client_stack, testbed.proxy_stack):
        stack.set_sanitizer(sanitizer)
    for link in _testbed_links(testbed):
        link.sanitizer = sanitizer
    # Origin hosts (and their links/stacks) are created lazily during a
    # run; the farm propagates the sanitizer to each as it is built.
    testbed.farm.sanitizer = sanitizer
    for domain in sorted(testbed.farm._origins):
        origin = testbed.farm._origins[domain]
        origin.stack.set_sanitizer(sanitizer)
    if testbed.radio is not None:
        testbed.radio.sanitizer = sanitizer
    testbed.spdy_proxy.sanitizer = sanitizer
    for group in testbed.spdy_proxy._groups.values():
        group.scheduler.sanitizer = sanitizer
    if browser is not None:
        browser.sanitizer = sanitizer
    if invariants is None:
        invariants = default_invariants(testbed, browser)
    for invariant in invariants:
        sanitizer.register(invariant)
