"""Experiment execution: the paper's measurement procedure, §3.

"We generated a random order in which to visit the 20 web sites and used
that same order across all experiments.  Each website was requested 60
seconds apart. ... We alternated our test runs between HTTP and SPDY."

:func:`run_experiment` performs one run (one protocol, one network, one
TCP configuration, all sites once); :func:`run_many` repeats it with
different seeds, our stand-in for the field study's many nights of runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..browser import BrowserConfig, PageLoadRecord
from ..cellular import RadioEnergyModel, make_profile
from ..cellular.profiles import perturb_profile
from ..faults import FaultInjector, FaultPlan
from ..net import Packet
from ..sim import Timer
from ..tcp import TcpConfig
from ..web import WebPage, build_corpus
from .testbed import Testbed

__all__ = ["ExperimentConfig", "RunResult", "run_experiment", "run_many",
           "visit_order"]

DEFAULT_SITES = list(range(1, 21))


@dataclass
class ExperimentConfig:
    """Everything that defines one experimental condition."""

    protocol: str = "http"              # "http" | "spdy"
    network: str = "3g"                 # "3g" | "lte" | "wifi"
    profile: object = None              # explicit AccessProfile override
    seed: int = 0
    site_ids: List[int] = field(default_factory=lambda: list(DEFAULT_SITES))
    think_time: float = 60.0            # §3: websites requested 60 s apart
    shuffle_sites: bool = True          # fixed random order, as in the paper
    tcp: TcpConfig = field(default_factory=TcpConfig)
    client_tcp: Optional[TcpConfig] = None  # defaults to `tcp`
    n_spdy_sessions: int = 1
    late_binding: bool = False
    http_pipelining: bool = False       # Figure 1(c); off in the paper
    keepalive_ping: bool = False        # Figure 14: pin the radio in DCH
    ping_interval: float = 3.0
    ping_bytes: int = 600               # big enough to hold DCH, small enough
                                        # not to disturb the measurements
    background_enabled: bool = True
    load_timeout: float = 55.0
    tail_time: float = 60.0             # drain time after the last page
    # Fault injection: a FaultPlan, a --faults spec string, or None.
    # ``recovery`` gates the graceful-degradation machinery (SPDY session
    # re-establishment and the browser's stall watchdog); the HTTP
    # fetcher's retry-on-reset is always on, like Chrome's.
    fault_plan: object = None
    recovery: bool = True
    # Per-object stall watchdog timeout; None picks a default (10 s) when
    # faults are injected with recovery on, and disables it otherwise so
    # fault-free runs are bit-identical to the pre-fault-injection code.
    stall_timeout: Optional[float] = None
    # Run-to-run environmental variation (signal, cell load): each run
    # draws its own bandwidth/latency scaling.  This is our stand-in for
    # the paper's four months of nightly variability; 0 disables it.
    environment_variability: float = 0.25

    # The paper's proxies had been serving this client for months, so
    # their Linux tcp_metrics caches were warm.  A cold cache makes the
    # very first page a spurious-retransmission storm (initial RTOs far
    # below the loaded-path RTT) that the field study never saw.
    warm_metrics_cache: bool = True
    warm_srtt: float = 0.35             # loaded 3G round-trip estimate
    warm_rttvar: float = 0.25
    warm_ssthresh: float = 40.0

    # Runtime invariant checking: None defers to the REPRO_CHECKS env
    # var (then "off"); "off" | "warn" | "strict" force a mode.
    checks: Optional[str] = None
    # Wedge watchdog: abort the run (WedgeError) if it takes more than
    # this many events to reach the configured end time.  None = no cap.
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.protocol not in ("http", "spdy"):
            raise ValueError(
                f"unknown protocol {self.protocol!r} (expected http or spdy)")
        if self.profile is None and self.network not in ("3g", "lte", "wifi"):
            raise ValueError(
                f"unknown network {self.network!r} (expected 3g, lte or wifi)")
        if not self.site_ids:
            raise ValueError("site_ids must not be empty")
        if not (self.think_time >= 0):
            raise ValueError("think_time must be >= 0")
        if not (self.load_timeout > 0):
            raise ValueError("load_timeout must be positive")
        if not (self.ping_interval > 0):
            raise ValueError("ping_interval must be positive")
        if not (self.tail_time >= 0):
            raise ValueError("tail_time must be >= 0")
        if self.n_spdy_sessions < 1:
            raise ValueError("n_spdy_sessions must be >= 1")
        if self.max_events is not None and self.max_events <= 0:
            raise ValueError("max_events must be positive when set")
        # Mirrors repro.sanity.CHECK_MODES; kept inline so the dataclass
        # does not import the sanity package at module level.
        if self.checks not in (None, "off", "warn", "strict"):
            raise ValueError(
                f"unknown checks mode {self.checks!r} "
                "(expected off, warn or strict)")

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)


@dataclass
class RunResult:
    """All measurement artefacts from one run."""

    config: ExperimentConfig
    pages: List[PageLoadRecord]
    testbed: Testbed
    visit_order: List[int]
    duration: float
    fault_report: Optional[Dict] = None   # FaultInjector.report() or None
    sanity_report: Optional[Dict] = None  # Sanitizer.report() or None

    # ------------------------------------------------------------------
    # convenience accessors used throughout the figure generators
    # ------------------------------------------------------------------
    def plts_by_site(self) -> Dict[int, float]:
        """site_id -> PLT seconds (timeouts capped at the load timeout)."""
        return {p.site_id: p.plt_or(self.config.load_timeout)
                for p in self.pages}

    def proxy_side_connections(self):
        """Proxy-side TCP connections serving the client (our vantage point)."""
        ports = (8080, 8443)
        return [c for c in self.testbed.proxy_stack.all_connections
                if c.local_port in ports]

    def total_retransmissions(self) -> int:
        return sum(c.stats.retransmissions
                   for c in self.proxy_side_connections())

    def spurious_retransmissions(self) -> int:
        return sum(c.stats.spurious_retransmissions
                   for c in self.proxy_side_connections())

    def client_retransmissions(self) -> int:
        return sum(c.stats.retransmissions
                   for c in self.testbed.client_stack.all_connections)

    def radio_energy_mj(self) -> float:
        machine = self.testbed.radio
        if machine is None:
            return 0.0
        power = getattr(machine.config, "power_mw", {})
        return RadioEnergyModel(machine, power).energy_mj(self.duration)


def visit_order(site_ids: List[int], shuffle: bool = True) -> List[int]:
    """The fixed random visit order used across all experiments (§3)."""
    order = list(site_ids)
    if shuffle:
        random.Random("paper/visit-order").shuffle(order)
    return order


def run_experiment(config: ExperimentConfig,
                   pages: Optional[List[WebPage]] = None) -> RunResult:
    """Execute one full run and return its artefacts."""
    profile = config.profile or make_profile(config.network)
    if config.environment_variability > 0:
        env_rng = random.Random(f"environment/{config.seed}")
        profile = perturb_profile(profile, env_rng,
                                  config.environment_variability)
    stall_timeout = config.stall_timeout
    if (stall_timeout is None and config.fault_plan is not None
            and config.recovery):
        stall_timeout = 10.0
    testbed = Testbed(
        profile=profile, seed=config.seed, proxy_tcp=config.tcp,
        client_tcp=config.client_tcp or config.tcp,
        late_binding=config.late_binding,
        browser_config=BrowserConfig(
            load_timeout=config.load_timeout,
            background_enabled=config.background_enabled,
            stall_timeout=stall_timeout))
    sim = testbed.sim

    if config.warm_metrics_cache and config.network != "wifi":
        if config.tcp.use_metrics_cache:
            testbed.proxy_stack.metrics_cache.save(
                "client", config.warm_ssthresh, config.warm_srtt,
                config.warm_rttvar, now=0.0)
        client_cfg = config.client_tcp or config.tcp
        if client_cfg.use_metrics_cache:
            testbed.client_stack.metrics_cache.save(
                "proxy", None, config.warm_srtt, config.warm_rttvar, now=0.0)

    if pages is None:
        pages = build_corpus(site_ids=config.site_ids)
    by_id = {p.site_id: p for p in pages}
    order = visit_order([p.site_id for p in pages], config.shuffle_sites)

    browser = testbed.make_browser(config.protocol,
                                   n_spdy_sessions=config.n_spdy_sessions,
                                   http_pipelining=config.http_pipelining,
                                   recover=config.recovery)

    # Imported lazily: repro.sanity imports this module for the campaign
    # layer, so a module-level import here would be circular.
    from ..sanity import Sanitizer, install_sanitizer, resolve_check_mode
    sanitizer = None
    if resolve_check_mode(config.checks) != "off":
        sanitizer = Sanitizer(mode=resolve_check_mode(config.checks))
        install_sanitizer(sanitizer, testbed, browser=browser)

    for index, site_id in enumerate(order):
        sim.schedule_at(index * config.think_time, browser.load_page,
                        by_id[site_id])

    if config.keepalive_ping and testbed.radio is not None:
        _start_keepalive(testbed, config)

    injector = None
    if config.fault_plan is not None:
        injector = FaultInjector(testbed, FaultPlan.parse(config.fault_plan))
        injector.install()

    end = len(order) * config.think_time + config.tail_time
    sim.run(until=end, max_events=config.max_events)
    if config.max_events is not None and sim.now < end:
        # run() stopped on the event budget with simulated time still to
        # cover: the run is wedged (e.g. a zero-delay event loop).
        from ..sanity import WedgeError
        raise WedgeError(sim.events_processed, sim.now, end)
    if sanitizer is not None:
        sanitizer.finalize()
    return RunResult(config=config, pages=list(browser.records),
                     testbed=testbed, visit_order=order, duration=end,
                     fault_report=injector.report() if injector else None,
                     sanity_report=sanitizer.report() if sanitizer else None)


def _start_keepalive(testbed: Testbed, config: ExperimentConfig) -> None:
    """Figure 14's continual ping: small datagrams that hold the radio in DCH.

    Modeled as raw (non-TCP) packets so they exercise the radio state
    machine without perturbing any TCP connection, like the paper's
    separate ping process.
    """
    sim = testbed.sim

    def ping():
        packet = Packet("client", "proxy", config.ping_bytes,
                        payload=None, created_at=sim.now)
        testbed.client_host.send(packet)
        timer.start(config.ping_interval)

    timer = Timer(sim, ping, name="keepalive-ping")
    timer.start(config.ping_interval)


def run_many(config: ExperimentConfig, n_runs: int,
             pages: Optional[List[WebPage]] = None,
             isolate: bool = False,
             failures: Optional[List] = None) -> List[RunResult]:
    """Repeat a run with seeds ``seed, seed+1, ...`` (the paper's many nights).

    With ``isolate=True`` a crashing trial no longer takes the whole
    sweep down: the exception is converted to a
    :class:`repro.sanity.TrialFailure` (appended to ``failures`` when a
    list is given) and the remaining seeds still run.
    """
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    results: List[RunResult] = []
    for i in range(n_runs):
        trial = config.with_overrides(seed=config.seed + i)
        if not isolate:
            results.append(run_experiment(trial, pages))  # repro-lint: disable=MEM001 -- bounded by n_runs, a figure-sweep knob
            continue
        try:
            results.append(run_experiment(trial, pages))  # repro-lint: disable=MEM001 -- bounded by n_runs, a figure-sweep knob
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            from ..sanity import TrialFailure
            if failures is not None:
                failures.append(TrialFailure.from_exception(trial, exc))  # repro-lint: disable=MEM001 -- at most one failure per run, bounded by n_runs
    return results
