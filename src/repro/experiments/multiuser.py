"""Multiple devices on one tower: the paper's multi-user load experiment.

"We ran experiments with multiple laptops simultaneously accessing the
test web sites to study the effect of multiple users loading the
network" (§3).  :class:`MultiClientTestbed` puts N clients behind one
:class:`~repro.cellular.cell.SharedCell`, each with its own RRC state
machine and radio links, all served by the same proxy pair; and
:func:`run_contention_experiment` measures how PLT degrades as users are
added.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from ..browser import Browser, BrowserConfig, HttpFetcher, SpdyFetcher
from ..cellular import AccessNetwork, make_profile
from ..cellular.cell import SharedCell
from ..metrics import MetricSketch
from ..net import Host
from ..proxy import (HTTP_PROXY_PORT, HttpProxy, ProxyTrace, SPDY_PROXY_PORT,
                     SpdyProxy, UpstreamPool)
from ..server import OriginFarm
from ..sim import Simulator
from ..tcp import TcpConfig, TcpProbe, TcpStack
from ..web import build_corpus

__all__ = ["MultiClientTestbed", "run_contention_experiment"]


class MultiClientTestbed:
    """N clients, one shared cell, one proxy host."""

    def __init__(self, n_clients: int, network: str = "3g", seed: int = 0,
                 cell_downlink_bps: float = 6.0e6,
                 cell_uplink_bps: float = 2.4e6,
                 tcp: Optional[TcpConfig] = None,
                 browser_config: Optional[BrowserConfig] = None):
        if n_clients < 1:
            raise ValueError("need at least one client")
        self.sim = Simulator(seed=seed)
        self.proxy_host = Host(self.sim, "proxy")
        self.proxy_stack = TcpStack(self.sim, self.proxy_host,
                                    tcp or TcpConfig())
        self.proxy_probe = TcpProbe()
        self.proxy_stack.set_probe(self.proxy_probe)
        self.cell = SharedCell(cell_downlink_bps, cell_uplink_bps)

        self.farm = OriginFarm(self.sim, self.proxy_host)
        self.upstream = UpstreamPool(self.sim, self.proxy_stack, self.farm)
        self.proxy_trace = ProxyTrace()
        self.http_proxy = HttpProxy(self.sim, self.proxy_stack,
                                    self.upstream, trace=self.proxy_trace)
        self.spdy_proxy = SpdyProxy(self.sim, self.proxy_stack,
                                    self.upstream, trace=self.proxy_trace)

        self.clients: List[Host] = []
        self.accesses: List[AccessNetwork] = []
        self.client_stacks: List[TcpStack] = []
        profile = make_profile(network)
        for i in range(n_clients):
            client = Host(self.sim, f"client{i}")
            access = AccessNetwork(self.sim, client, self.proxy_host,
                                   profile, cell=self.cell)
            stack = TcpStack(self.sim, client, tcp or TcpConfig())
            self.clients.append(client)  # repro-lint: disable=MEM001 -- bounded by n_clients, a handful of devices (paper sec. 3)
            self.accesses.append(access)
            self.client_stacks.append(stack)
        self.browser_config = browser_config or BrowserConfig()

    def make_browser(self, client_index: int, protocol: str) -> Browser:
        stack = self.client_stacks[client_index]
        if protocol == "http":
            fetcher = HttpFetcher(self.sim, stack, "proxy", HTTP_PROXY_PORT)
        elif protocol == "spdy":
            fetcher = SpdyFetcher(self.sim, stack, "proxy", SPDY_PROXY_PORT)
        else:
            raise ValueError(f"unknown protocol {protocol!r}")
        return Browser(self.sim, fetcher, self.browser_config)


def run_contention_experiment(n_clients: int, protocol: str = "http",
                              network: str = "3g", seed: int = 0,
                              site_ids: Optional[List[int]] = None,
                              think_time: float = 60.0,
                              stagger: float = 7.0,
                              cell_downlink_bps: float = 6.0e6,
                              cell_uplink_bps: float = 2.4e6
                              ) -> Dict[str, object]:
    """All clients browse the same site list, offset by ``stagger`` seconds.

    Returns per-client PLT lists plus aggregate statistics.
    """
    site_ids = site_ids or [5, 9, 12, 13]
    testbed = MultiClientTestbed(n_clients, network=network, seed=seed,
                                 cell_downlink_bps=cell_downlink_bps,
                                 cell_uplink_bps=cell_uplink_bps)
    pages = build_corpus(site_ids=site_ids)
    browsers = []
    for i in range(n_clients):
        browser = testbed.make_browser(i, protocol)
        browsers.append(browser)
        for k, page in enumerate(pages):
            testbed.sim.schedule_at(i * stagger + k * think_time,
                                    browser.load_page, page)
    end = (n_clients - 1) * stagger + len(pages) * think_time + 60.0
    testbed.sim.run(until=end)

    per_client = [[r.plt_or(55.0) for r in b.records] for b in browsers]
    all_plts = [p for plts in per_client for p in plts]
    sketch = MetricSketch()
    for plt in all_plts:
        sketch.add(plt)
    return {
        "n_clients": n_clients,
        "per_client_plts": per_client,
        "median_plt": statistics.median(all_plts),
        "mean_plt": statistics.mean(all_plts),
        "plt_sketch": sketch.summary(),
        "testbed": testbed,
    }
