"""Data generators for every figure in the paper's evaluation (§4-§6).

Each ``figNN_*`` function runs the necessary experiments and returns a
plain-dict dataset shaped like the figure's axes, so benches, tests and
the ASCII renderer all consume the same structure.  Absolute numbers
come from our simulated testbed, not the authors' network — the claims
these functions are checked against are the *shapes* recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
from collections import Counter
from typing import Dict, List, Optional

from ..metrics import (box_stats, cdf_points, mean_confidence_interval,
                       throughput_bins, bytes_in_flight_series)
from ..tcp import TcpConfig
from ..web import build_test_page
from .runner import ExperimentConfig, RunResult, run_experiment, run_many

__all__ = [
    "fig03_plt_3g", "fig04_plt_wifi", "fig05_object_breakdown",
    "fig06_request_patterns", "fig07_test_pages", "fig08_proxy_queueing",
    "fig09_throughput", "fig10_bytes_in_flight", "fig11_cwnd_run",
    "fig12_idle_zoom", "fig13_retx_bursts", "fig14_dch_pinning",
    "fig15_ss_after_idle", "fig16_plt_lte", "fig17_lte_cwnd",
]

PLT_CAP = 55.0


def _collect_plts(runs: List[RunResult]) -> Dict[int, List[float]]:
    """site_id -> PLT samples across runs."""
    plts: Dict[int, List[float]] = {}
    for run in runs:
        for site, plt in run.plts_by_site().items():
            plts.setdefault(site, []).append(plt)
    return plts


def _access_retransmissions(run: RunResult) -> int:
    """Retransmitted packets seen on the access links (the tcpdump count)."""
    return (len(run.testbed.downlink_trace.retransmitted_deliveries())
            + len(run.testbed.uplink_trace.retransmitted_deliveries()))


def _plt_boxes(network: str, n_runs: int, site_ids: Optional[List[int]],
               base: Optional[ExperimentConfig] = None) -> dict:
    result: dict = {"network": network, "n_runs": n_runs, "sites": {}}
    base = base or ExperimentConfig()
    for protocol in ("http", "spdy"):
        config = base.with_overrides(protocol=protocol, network=network,
                                     site_ids=site_ids or list(range(1, 21)))
        runs = run_many(config, n_runs)
        plts = _collect_plts(runs)
        for site, values in plts.items():
            entry = result["sites"].setdefault(site, {})
            entry[protocol] = box_stats(values).__dict__
        result.setdefault("retransmissions", {})[protocol] = statistics.mean(
            _access_retransmissions(r) for r in runs)
    # headline comparison
    medians = {p: statistics.median(
        result["sites"][s][p]["median"] for s in result["sites"])
        for p in ("http", "spdy")}
    result["median_plt"] = medians
    result["spdy_wins"] = sum(
        1 for s in result["sites"]
        if result["sites"][s]["spdy"]["mean"] < result["sites"][s]["http"]["mean"])
    return result


# ----------------------------------------------------------------------
# Figure 3: PLT box plots over 3G — no clear winner
# ----------------------------------------------------------------------
def fig03_plt_3g(n_runs: int = 3,
                 site_ids: Optional[List[int]] = None,
                 base: Optional[ExperimentConfig] = None) -> dict:
    """Paper: 'do not show a convincing winner between HTTP and SPDY'."""
    return _plt_boxes("3g", n_runs, site_ids, base=base)


# ----------------------------------------------------------------------
# Figure 4: average PLT + 95% CI over 802.11g/broadband — SPDY wins
# ----------------------------------------------------------------------
def fig04_plt_wifi(n_runs: int = 3,
                   site_ids: Optional[List[int]] = None) -> dict:
    """Paper: SPDY better 'consistently, with improvements from 4% to 56%'."""
    result: dict = {"network": "wifi", "n_runs": n_runs, "sites": {}}
    for protocol in ("http", "spdy"):
        config = ExperimentConfig(protocol=protocol, network="wifi",
                                  site_ids=site_ids or list(range(1, 21)))
        runs = run_many(config, n_runs)
        for site, values in _collect_plts(runs).items():
            m, lo, hi = mean_confidence_interval(values)
            entry = result["sites"].setdefault(site, {})
            entry[protocol] = {"mean": m, "ci_lo": lo, "ci_hi": hi}
    improvements = {}
    for site, entry in result["sites"].items():
        h, s = entry["http"]["mean"], entry["spdy"]["mean"]
        improvements[site] = 100.0 * (h - s) / h if h > 0 else 0.0
    result["improvement_pct"] = improvements
    result["mean_improvement_pct"] = statistics.mean(improvements.values())
    result["spdy_wins"] = sum(1 for v in improvements.values() if v > 0)
    return result


# ----------------------------------------------------------------------
# Figure 5: object download time split into init/send/wait/receive
# ----------------------------------------------------------------------
def fig05_object_breakdown(n_runs: int = 1,
                           site_ids: Optional[List[int]] = None) -> dict:
    """Paper: HTTP pays in *init* (connection wait), SPDY pays in *wait*."""
    result: dict = {"network": "3g", "sites": {}}
    components = ("init", "send", "wait", "receive")
    for protocol in ("http", "spdy"):
        config = ExperimentConfig(protocol=protocol, network="3g",
                                  site_ids=site_ids or list(range(1, 21)))
        runs = run_many(config, n_runs)
        acc: Dict[int, Dict[str, List[float]]] = {}
        for run in runs:
            for page in run.pages:
                by_site = acc.setdefault(page.site_id, {c: [] for c in components})
                for c in components:
                    by_site[c].append(page.mean_component(c))
        for site, comps in acc.items():
            entry = result["sites"].setdefault(site, {})
            entry[protocol] = {c: statistics.mean(v) for c, v in comps.items()}
    # aggregates for the headline claims
    result["mean"] = {}
    for protocol in ("http", "spdy"):
        result["mean"][protocol] = {
            c: statistics.mean(result["sites"][s][protocol][c]
                               for s in result["sites"])
            for c in components}
    return result


# ----------------------------------------------------------------------
# Figure 6: object request patterns over time
# ----------------------------------------------------------------------
def fig06_request_patterns(site_ids: Optional[List[int]] = None,
                           seed: int = 0) -> dict:
    """Paper: SPDY requests objects 'in steps', not all at once, because
    of JS/CSS interdependencies; HTTP requests continuously."""
    sites = site_ids or [7, 15, 18, 12]  # two news, two photo/video-ish
    result: dict = {"sites": {}}
    for protocol in ("http", "spdy"):
        config = ExperimentConfig(protocol=protocol, network="3g",
                                  site_ids=sites, seed=seed)
        run = run_experiment(config)
        for page in run.pages:
            entry = result["sites"].setdefault(page.site_id, {})
            entry[protocol] = page.request_times()
    # step metric: longest gap between consecutive SPDY request times
    result["spdy_step_gaps"] = {}
    for site, entry in result["sites"].items():
        times = entry.get("spdy", [])
        gaps = [b - a for a, b in zip(times, times[1:])]
        result["spdy_step_gaps"][site] = max(gaps) if gaps else 0.0
    return result


# ----------------------------------------------------------------------
# Figure 7: the 50-object test pages, same vs different domains
# ----------------------------------------------------------------------
def fig07_test_pages(n_runs: int = 3, seed: int = 0) -> dict:
    """Paper: HTTP 5.29 s (same domain) vs 6.80 s (different); SPDY 7.22 s
    vs 8.38 s — removing interdependencies does not rescue SPDY on 3G."""
    result: dict = {"plt": {}, "schedules": {}}
    for protocol in ("http", "spdy"):
        for same in (True, False):
            page = build_test_page(same_domain=same)
            key = f"{protocol}/{'same' if same else 'different'}"
            values = []
            for i in range(n_runs):
                config = ExperimentConfig(
                    protocol=protocol, network="3g", seed=seed + i,
                    site_ids=[page.site_id], shuffle_sites=False,
                    think_time=60.0, background_enabled=False)
                run = run_experiment(config, pages=[page])
                values.append(run.pages[0].plt_or(PLT_CAP))
                if i == 0:
                    record = run.pages[0]
                    result["schedules"][key] = {
                        "request_times": record.request_times(),
                        "first_bytes": sorted(
                            t.first_byte_at - record.started_at
                            for t in record.objects if t.first_byte_at),
                    }
            result["plt"][key] = statistics.mean(values)
    return result


# ----------------------------------------------------------------------
# Figure 8: proxy-side queueing (origin never the bottleneck)
# ----------------------------------------------------------------------
def fig08_proxy_queueing(site_id: int = 7, seed: int = 0) -> dict:
    """Paper: origin first byte ~14 ms avg (max 46 ms), download ~4 ms,
    but a long delay before the proxy can push data to the client."""
    config = ExperimentConfig(protocol="spdy", network="3g", seed=seed,
                              site_ids=[site_id], shuffle_sites=False)
    run = run_experiment(config)
    records = [r for r in run.testbed.proxy_trace.completed()
               if not r.is_long_poll]
    objects = []
    for r in sorted(records, key=lambda x: x.order):
        objects.append({
            "order": r.order,
            "origin_wait": r.origin_wait,
            "origin_download": r.origin_download,
            "queueing_delay": r.queueing_delay,
            "client_transfer": r.client_transfer,
            "bytes": r.response_bytes,
        })
    waits = [o["origin_wait"] for o in objects]
    downloads = [o["origin_download"] for o in objects]
    transfers = [o["client_transfer"] for o in objects]
    return {
        "objects": objects,
        "mean_origin_wait": statistics.mean(waits) if waits else 0.0,
        "max_origin_wait": max(waits) if waits else 0.0,
        "mean_origin_download": statistics.mean(downloads) if downloads else 0.0,
        "mean_client_transfer": statistics.mean(transfers) if transfers else 0.0,
    }


# ----------------------------------------------------------------------
# Figure 9: average data transferred per second, aligned across runs
# ----------------------------------------------------------------------
def fig09_throughput(n_runs: int = 3, bin_seconds: float = 1.0,
                     site_ids: Optional[List[int]] = None) -> dict:
    """Paper: HTTP achieves higher instantaneous transfers, sometimes 2x."""
    result: dict = {"bin_seconds": bin_seconds, "series": {}}
    duration = None
    for protocol in ("http", "spdy"):
        config = ExperimentConfig(protocol=protocol, network="3g",
                                  site_ids=site_ids or list(range(1, 21)))
        runs = run_many(config, n_runs)
        duration = runs[0].duration
        acc: Dict[float, List[float]] = {}
        for run in runs:
            bins = throughput_bins(run.testbed.downlink_trace.records,
                                   bin_seconds, until=run.duration)
            for t, b in bins:
                acc.setdefault(t, []).append(b)
        result["series"][protocol] = [
            (t, statistics.mean(vals)) for t, vals in sorted(acc.items())]
    # headline: mean of per-bin HTTP/SPDY ratio where both active
    http = dict(result["series"]["http"])
    spdy = dict(result["series"]["spdy"])
    ratios = [http[t] / spdy[t] for t in http
              if spdy.get(t, 0) > 1000 and http[t] > 1000]
    result["mean_active_ratio"] = statistics.mean(ratios) if ratios else 1.0
    result["peak"] = {p: max(b for _, b in result["series"][p])
                      for p in ("http", "spdy")}
    result["duration"] = duration
    return result


# ----------------------------------------------------------------------
# Figure 10: unacknowledged bytes over time
# ----------------------------------------------------------------------
def fig10_bytes_in_flight(seed: int = 0,
                          site_ids: Optional[List[int]] = None) -> dict:
    """Paper: whoever has more outstanding bytes loads the page faster."""
    result: dict = {"series": {}, "plt": {}}
    for protocol in ("http", "spdy"):
        config = ExperimentConfig(protocol=protocol, network="3g", seed=seed,
                                  site_ids=site_ids or list(range(1, 21)))
        run = run_experiment(config)
        samples = [s for s in run.testbed.proxy_probe.samples
                   if s.conn_id.startswith(("proxy:8080-", "proxy:8443-"))]
        result["series"][protocol] = bytes_in_flight_series(samples)
        result["plt"][protocol] = run.plts_by_site()
        result.setdefault("visit_order", run.visit_order)
        result.setdefault("think_time", run.config.think_time)
    # correlation check: per site, does more average in-flight data during
    # its window coincide with the lower PLT?
    agree = 0
    order = result["visit_order"]
    think = result["think_time"]
    for index, site in enumerate(order):
        t0, t1 = index * think, (index + 1) * think
        means = {}
        for protocol in ("http", "spdy"):
            window = [v for t, v in result["series"][protocol]
                      if t0 <= t < t1]
            means[protocol] = statistics.mean(window) if window else 0.0
        flight_winner = max(means, key=means.get)
        plt_winner = min(("http", "spdy"),
                         key=lambda p: result["plt"][p][site])
        if flight_winner == plt_winner:
            agree += 1
    result["flight_plt_agreement"] = agree / len(order)
    return result


# ----------------------------------------------------------------------
# Figures 11 & 12: cwnd / ssthresh / outstanding + retransmissions (SPDY)
# ----------------------------------------------------------------------
def fig11_cwnd_run(seed: int = 0,
                   site_ids: Optional[List[int]] = None) -> dict:
    """Paper: cwnd and ssthresh fluctuate all run; retransmission bursts."""
    config = ExperimentConfig(protocol="spdy", network="3g", seed=seed,
                              site_ids=site_ids or list(range(1, 21)))
    run = run_experiment(config)
    conn = next(c for c in run.testbed.proxy_stack.all_connections
                if c.local_port == 8443)
    probe = run.testbed.proxy_probe
    samples = probe.samples_for(conn.conn_id)
    return {
        "samples": [(s.time, s.cwnd, min(s.ssthresh, 1e6),
                     s.inflight_segments) for s in samples],
        "retransmissions": [(r.time, r.seq, r.spurious, r.kind)
                            for r in probe.retransmissions_for(conn.conn_id)],
        "idle_restarts": [(e.time, e.idle_time)
                          for e in probe.idle_restarts
                          if e.conn_id == conn.conn_id],
        "visit_order": run.visit_order,
        "duration": run.duration,
        "spurious_fraction": (
            sum(1 for r in probe.retransmissions_for(conn.conn_id)
                if r.spurious)
            / max(1, len(probe.retransmissions_for(conn.conn_id)))),
    }


def fig12_idle_zoom(seed: int = 0, window: tuple = (40.0, 190.0),
                    site_ids: Optional[List[int]] = None) -> dict:
    """Zoom into a few consecutive sites: idle -> cwnd reset -> spurious
    RTO -> ssthresh collapse (the paper's §5.5.1 narrative)."""
    data = fig11_cwnd_run(seed=seed, site_ids=site_ids)
    t0, t1 = window
    zoom = {
        "window": window,
        "samples": [s for s in data["samples"] if t0 <= s[0] <= t1],
        "retransmissions": [r for r in data["retransmissions"]
                            if t0 <= r[0] <= t1],
        "idle_restarts": [e for e in data["idle_restarts"]
                          if t0 <= e[0] <= t1],
    }
    # the causal chain distilled: ssthresh before and after the first
    # spurious *timeout* retransmission inside the window (timeouts are
    # the events that slash ssthresh; SACK fast-retransmits of genuine
    # random losses merely trim it)
    anchor = next((r for r in zoom["retransmissions"]
                   if r[2] and r[3] == "timeout"),
                  next(iter(zoom["retransmissions"]), None))
    if anchor is not None and zoom["samples"]:
        t_retx = anchor[0]
        before = [s for s in zoom["samples"] if s[0] < t_retx]
        after = [s for s in zoom["samples"] if s[0] >= t_retx]
        if before and after:
            zoom["ssthresh_before_retx"] = before[-1][2]
            zoom["ssthresh_after_retx"] = min(s[2] for s in after[:50])
    return zoom


# ----------------------------------------------------------------------
# Figure 13: retransmission bursts affect a single TCP stream (HTTP)
# ----------------------------------------------------------------------
def fig13_retx_bursts(seed: int = 0,
                      site_ids: Optional[List[int]] = None) -> dict:
    """Paper: HTTP's retransmissions are bursty and usually confined to
    one connection while the others keep the path busy."""
    config = ExperimentConfig(protocol="http", network="3g", seed=seed,
                              site_ids=site_ids or list(range(1, 21)))
    run = run_experiment(config)
    probe = run.testbed.proxy_probe
    # Client-facing connections only (port 8080): the proxy<->device path
    # is where the paper's Figure 13 looks.
    client_facing = [r for r in probe.retransmissions
                     if ":8080-" in r.conn_id]
    by_conn: Dict[str, int] = {}
    for r in client_facing:
        by_conn[r.conn_id] = by_conn.get(r.conn_id, 0) + 1
    events = [(r.time, r.conn_id, r.seq) for r in client_facing]
    total_client_conns = sum(
        1 for c in run.testbed.proxy_stack.all_connections
        if c.local_port == 8080)
    # burst isolation: among 1-second windows with >=2 retransmissions,
    # the average share owned by the window's dominant connection.
    windows: Dict[int, List[str]] = {}
    for t, conn_id, _ in events:
        windows.setdefault(int(t), []).append(conn_id)
    dense = [conns for conns in windows.values() if len(conns) >= 2]
    shares = [max(Counter(conns).values()) / len(conns)
              for conns in dense]
    return {
        "events": events,
        "retx_by_connection": by_conn,
        "connections_total": total_client_conns,
        "connections_with_retx": len(by_conn),
        "burst_isolation_fraction": (
            statistics.mean(shares) if shares else 1.0),
    }


# ----------------------------------------------------------------------
# Figure 14: pinning the radio in DCH with a continual ping
# ----------------------------------------------------------------------
def fig14_dch_pinning(n_runs: int = 2,
                      site_ids: Optional[List[int]] = None) -> dict:
    """Paper: with pings, most pages load <8 s and retransmissions fall
    ~91% (HTTP) / ~96% (SPDY)."""
    result: dict = {"cdf": {}, "retransmissions": {}, "energy_mj": {}}
    for protocol in ("http", "spdy"):
        for ping in (False, True):
            key = f"{protocol}/{'ping' if ping else 'noping'}"
            config = ExperimentConfig(protocol=protocol, network="3g",
                                      keepalive_ping=ping,
                                      site_ids=site_ids or list(range(1, 21)))
            runs = run_many(config, n_runs)
            plts = [p for run in runs
                    for p in run.plts_by_site().values()]
            result["cdf"][key] = cdf_points(plts)
            result["retransmissions"][key] = statistics.mean(
                _access_retransmissions(r) for r in runs)
            result["energy_mj"][key] = statistics.mean(
                r.radio_energy_mj() for r in runs)
    for protocol in ("http", "spdy"):
        base = result["retransmissions"][f"{protocol}/noping"]
        pinned = result["retransmissions"][f"{protocol}/ping"]
        result[f"{protocol}_retx_reduction_pct"] = (
            100.0 * (base - pinned) / base if base else 0.0)
        result[f"{protocol}_frac_under_8s"] = {
            mode: sum(1 for v, _ in result["cdf"][f"{protocol}/{mode}"]
                      if v < 8.0) / len(result["cdf"][f"{protocol}/{mode}"])
            for mode in ("noping", "ping")}
    return result


# ----------------------------------------------------------------------
# Figure 15: disabling tcp_slow_start_after_idle
# ----------------------------------------------------------------------
def fig15_ss_after_idle(n_runs: int = 2,
                        site_ids: Optional[List[int]] = None) -> dict:
    """Paper: benefits vary across websites; no clear winner either way."""
    result: dict = {"sites": {}}
    for protocol in ("http", "spdy"):
        plts: Dict[bool, Dict[int, float]] = {}
        for enabled in (True, False):
            tcp = TcpConfig(slow_start_after_idle=enabled)
            config = ExperimentConfig(protocol=protocol, network="3g",
                                      tcp=tcp,
                                      site_ids=site_ids or list(range(1, 21)))
            runs = run_many(config, n_runs)
            collected = _collect_plts(runs)
            plts[enabled] = {s: statistics.mean(v)
                             for s, v in collected.items()}
        for site in plts[True]:
            entry = result["sites"].setdefault(site, {})
            # negative = disabling helps (as plotted in the paper)
            entry[protocol] = (plts[False][site] - plts[True][site]) * 1000.0
    diffs = [entry[p] for entry in result["sites"].values()
             for p in entry]
    result["mean_difference_ms"] = statistics.mean(diffs)
    result["sites_helped"] = sum(1 for d in diffs if d < 0)
    result["sites_hurt"] = sum(1 for d in diffs if d > 0)
    return result


# ----------------------------------------------------------------------
# Figure 16: PLT over LTE
# ----------------------------------------------------------------------
def fig16_plt_lte(n_runs: int = 3,
                  site_ids: Optional[List[int]] = None,
                  base: Optional[ExperimentConfig] = None) -> dict:
    """Paper: both much faster than 3G; SPDY better after the initial
    pages; retransmissions drop to ~8.9 (HTTP) / 7.5 (SPDY)."""
    data = _plt_boxes("lte", n_runs, site_ids, base=base)
    return data


# ----------------------------------------------------------------------
# Figure 17: SPDY cwnd + retransmissions over LTE
# ----------------------------------------------------------------------
def fig17_lte_cwnd(seed: int = 0,
                   site_ids: Optional[List[int]] = None) -> dict:
    """Paper: idle-exit retransmissions persist on LTE, just rarer."""
    config = ExperimentConfig(protocol="spdy", network="lte", seed=seed,
                              site_ids=site_ids or list(range(1, 21)))
    run = run_experiment(config)
    conn = next(c for c in run.testbed.proxy_stack.all_connections
                if c.local_port == 8443)
    probe = run.testbed.proxy_probe
    retx = probe.retransmissions_for(conn.conn_id)
    return {
        "samples": [(s.time, s.cwnd, s.inflight_segments)
                    for s in probe.samples_for(conn.conn_id)],
        "retransmissions": [(r.time, r.seq, r.spurious) for r in retx],
        "spurious_after_idle": sum(1 for r in retx if r.spurious),
        "duration": run.duration,
    }
