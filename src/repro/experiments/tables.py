"""Data generators for the paper's tables and §6 text experiments.

* Table 1 — corpus characteristics (checked against the published row).
* Table 2 — Reno vs CUBIC for HTTP and SPDY.
* §6.1    — multiple SPDY connections, with and without late binding.
* §6.2.1  — resetting the RTT estimate after idle (the paper's remedy).
* §6.2.4  — disabling the TCP metrics cache.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from ..metrics import throughput_bins
from ..tcp import TcpConfig
from ..web import TABLE1_SITES, build_corpus, corpus_statistics
from .runner import ExperimentConfig, RunResult, run_many

__all__ = ["table1_corpus", "table2_tcp_variants", "sec61_multi_connection",
           "sec621_rtt_reset", "sec624_metrics_cache"]

PLT_CAP = 55.0


def table1_corpus() -> dict:
    """Synthesized corpus statistics next to the published Table 1 row."""
    rows = corpus_statistics(build_corpus())
    table = []
    for row, spec in zip(rows, TABLE1_SITES):
        table.append({
            "site_id": spec.site_id,
            "category": spec.category,
            "built_objects": row["total_objects"],
            "paper_objects": spec.total_objects,
            "built_kb": row["total_kb"],
            "paper_kb": spec.total_kb,
            "built_domains": row["domains"],
            "paper_domains": spec.domains,
            "built_js_css": row["js_css_objects"],
            "paper_js_css": spec.js_css_objects,
            "built_images": row["image_objects"],
            "paper_images": spec.image_objects,
            "max_depth": row["max_depth"],
        })
    return {"rows": table}


def _run_stats(runs: List[RunResult]) -> dict:
    """PLT / throughput / cwnd statistics in Table 2's shape."""
    plts = [p for run in runs for p in
            (page.plt_or(PLT_CAP) for page in run.pages)]
    throughputs: List[float] = []
    peaks: List[float] = []
    cwnd_means: List[float] = []
    cwnd_maxes: List[float] = []
    for run in runs:
        bins = throughput_bins(run.testbed.downlink_trace.records, 1.0,
                               until=run.duration)
        active = [b for _, b in bins if b > 1000]
        if active:
            throughputs.append(statistics.mean(active))
            peaks.append(max(active))
        samples = [s for s in run.testbed.proxy_probe.samples
                   if s.conn_id.startswith(("proxy:8080-", "proxy:8443-"))]
        if samples:
            cwnd_means.append(statistics.mean(s.cwnd for s in samples))
            cwnd_maxes.append(max(s.cwnd for s in samples))
    return {
        "avg_plt_ms": statistics.mean(plts) * 1000.0,
        "avg_throughput_kbps": statistics.mean(throughputs) / 1024.0
        if throughputs else 0.0,
        "max_throughput_kbps": max(peaks) / 1024.0 if peaks else 0.0,
        "avg_cwnd": statistics.mean(cwnd_means) if cwnd_means else 0.0,
        "max_cwnd": max(cwnd_maxes) if cwnd_maxes else 0.0,
    }


def table2_tcp_variants(n_runs: int = 2,
                        site_ids: Optional[List[int]] = None) -> dict:
    """Paper: 'little to distinguish between Reno and Cubic'; SPDY+Cubic
    grows cwnd largest (max 197 vs Reno's 48 in their Table 2)."""
    result: Dict[str, dict] = {}
    for variant in ("reno", "cubic"):
        for protocol in ("http", "spdy"):
            tcp = TcpConfig(congestion_control=variant)
            config = ExperimentConfig(protocol=protocol, network="3g",
                                      tcp=tcp,
                                      site_ids=site_ids or list(range(1, 21)))
            runs = run_many(config, n_runs)
            result[f"{protocol}/{variant}"] = _run_stats(runs)
    result["cubic_grows_cwnd_larger_for_spdy"] = (
        result["spdy/cubic"]["max_cwnd"] > result["spdy/reno"]["max_cwnd"])
    return result


def sec61_multi_connection(n_runs: int = 2,
                           site_ids: Optional[List[int]] = None) -> dict:
    """Paper §6.1: 20 SPDY connections alone do not help; the missing
    piece is late binding of responses to available connections."""
    result: Dict[str, dict] = {}
    variants = [
        ("single", dict(n_spdy_sessions=1, late_binding=False)),
        ("multi20", dict(n_spdy_sessions=20, late_binding=False)),
        ("multi20-late-binding", dict(n_spdy_sessions=20, late_binding=True)),
    ]
    for name, overrides in variants:
        config = ExperimentConfig(protocol="spdy", network="3g",
                                  site_ids=site_ids or list(range(1, 21)),
                                  **overrides)
        runs = run_many(config, n_runs)
        plts = [page.plt_or(PLT_CAP) for run in runs for page in run.pages]
        result[name] = {
            "mean_plt": statistics.mean(plts),
            "median_plt": statistics.median(plts),
            "retransmissions": statistics.mean(
                r.total_retransmissions() for r in runs),
        }
    return result


def sec621_rtt_reset(n_runs: int = 2,
                     site_ids: Optional[List[int]] = None) -> dict:
    """Paper §6.2.1 (the proposal): resetting the RTT estimate after idle
    makes the RTO outlast the promotion delay, eliminating the spurious
    timeouts and letting cwnd grow normally."""
    result: Dict[str, dict] = {}
    for protocol in ("http", "spdy"):
        for remedy in (False, True):
            tcp = TcpConfig(reset_rtt_after_idle=remedy)
            config = ExperimentConfig(protocol=protocol, network="3g",
                                      tcp=tcp, client_tcp=tcp,
                                      site_ids=site_ids or list(range(1, 21)))
            runs = run_many(config, n_runs)
            plts = [page.plt_or(PLT_CAP) for run in runs
                    for page in run.pages]
            key = f"{protocol}/{'reset-rtt' if remedy else 'default'}"
            result[key] = {
                "mean_plt": statistics.mean(plts),
                "median_plt": statistics.median(plts),
                "spurious": statistics.mean(
                    r.spurious_retransmissions() for r in runs),
            }
    for protocol in ("http", "spdy"):
        base = result[f"{protocol}/default"]["spurious"]
        fixed = result[f"{protocol}/reset-rtt"]["spurious"]
        result[f"{protocol}_spurious_reduction_pct"] = (
            100.0 * (base - fixed) / base if base else 0.0)
    return result


def sec624_metrics_cache(n_runs: int = 2,
                         site_ids: Optional[List[int]] = None) -> dict:
    """Paper §6.2.4: disabling the Linux destination metrics cache reduces
    page load times for both protocols (one damaged connection no longer
    poisons every successor)."""
    result: Dict[str, dict] = {}
    for protocol in ("http", "spdy"):
        for cache in (True, False):
            tcp = TcpConfig(use_metrics_cache=cache)
            config = ExperimentConfig(protocol=protocol, network="3g",
                                      tcp=tcp, client_tcp=tcp,
                                      site_ids=site_ids or list(range(1, 21)))
            runs = run_many(config, n_runs)
            plts = [page.plt_or(PLT_CAP) for run in runs
                    for page in run.pages]
            key = f"{protocol}/{'cache' if cache else 'no-cache'}"
            result[key] = {
                "mean_plt": statistics.mean(plts),
                "median_plt": statistics.median(plts),
            }
    for protocol in ("http", "spdy"):
        on = result[f"{protocol}/cache"]["median_plt"]
        off = result[f"{protocol}/no-cache"]["median_plt"]
        result[f"{protocol}_improvement_pct"] = 100.0 * (on - off) / on
    return result
