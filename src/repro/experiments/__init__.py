"""Experiment harness: testbed wiring, runners, figure/table generators."""

from . import figures, tables
from .population import (SectorConfig, aggregate_sector, run_sector_campaign,
                         run_sector_trial, run_shard, sector_digest)
from .runner import (ExperimentConfig, RunResult, run_experiment, run_many,
                     visit_order)
from .testbed import Testbed

__all__ = ["figures", "tables", "ExperimentConfig", "RunResult",
           "SectorConfig", "aggregate_sector", "run_experiment", "run_many",
           "run_sector_campaign", "run_sector_trial", "run_shard",
           "sector_digest", "visit_order", "Testbed"]
