"""Experiment harness: testbed wiring, runners, figure/table generators."""

from . import figures, tables
from .runner import (ExperimentConfig, RunResult, run_experiment, run_many,
                     visit_order)
from .testbed import Testbed

__all__ = ["figures", "tables", "ExperimentConfig", "RunResult",
           "run_experiment", "run_many", "visit_order", "Testbed"]
