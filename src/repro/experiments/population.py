"""Population-scale sector campaigns in constant memory.

The paper measures tens of page loads per night on a handful of
laptops; a carrier asking "what would SPDY do to the PLT distribution
across a sector" needs 10^5-10^6 users.  Simulating each user with the
full event-driven testbed at that scale is days of CPU, so a *sector
campaign* runs an analytic per-user model calibrated against the
simulator's own distributions: each user draws a page-load time and
radio-energy figure from the (network, protocol) regime the testbed
reproduces — 3G DCH promotion and tail energy from Appendix A's
constants, SPDY's 3G improvement in the paper's 4-23% band — with
heavy-tailed page-complexity and air-interface multipliers.

The memory discipline is the point of the module: a shard of users
streams through :class:`~repro.metrics.stats.MetricSketch` accumulators
(log-binned quantiles + fixed-point moments), so peak RSS is O(shard
chunk), independent of the user count, and shard records merge
associatively — ``repro sector --workers N`` aggregates byte-identically
to a serial run.  Every user's draw is seeded by
``random.Random(f"sector/{seed}/{uid}")`` (sha512-based string seeding,
``PYTHONHASHSEED``-independent), so user ``uid`` measures the same thing
no matter which shard chunking, worker, or retry computed it.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import traceback
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from ..guard import ResourceBudget
from ..metrics.stats import MetricSketch
from ..sanity.campaign import (JOURNAL_SCHEMA, TrialFailure, failure_kind)

__all__ = ["SectorConfig", "aggregate_sector", "run_sector_campaign",
           "run_sector_trial", "run_shard", "sector_digest",
           "sector_exhaustion_record", "simulate_user",
           "DEFAULT_SHARD_CHUNK", "REDUCED_SHARD_CHUNK"]

#: Users buffered per sketch-feed chunk.  This is the *only* per-user
#: allocation in a shard, so it is also the knob the supervisor's
#: reduced-scale retry turns down after an RSS kill.
DEFAULT_SHARD_CHUNK = 4096
REDUCED_SHARD_CHUNK = 256

#: Page-load timeout clamp, matching the testbed's ``plt_or`` cap.
_PLT_TIMEOUT_S = 55.0

#: Per-(network, protocol) regime constants, grounded in the testbed:
#: median PLT in the band the simulator reproduces (3G HTTP ~11 s over
#: the 20-site corpus; SPDY 4-23% faster on 3G, less on LTE where the
#: radio is not the bottleneck) and radio energy from the Appendix A
#: power model (promotion energy + active draw + demotion-tail energy,
#: all in mJ / mW so plt*power integrates directly).
_REGIMES: Dict[Tuple[str, str], Dict[str, float]] = {
    ("3g", "http"):  {"base_plt": 11.0, "active_mw": 800.0,
                      "promo_mj": 1600.0, "tail_mj": 9520.0},
    ("3g", "spdy"):  {"base_plt": 9.6, "active_mw": 800.0,
                      "promo_mj": 1600.0, "tail_mj": 9520.0},
    ("lte", "http"): {"base_plt": 5.0, "active_mw": 1000.0,
                      "promo_mj": 400.0, "tail_mj": 7700.0},
    ("lte", "spdy"): {"base_plt": 4.7, "active_mw": 1000.0,
                      "promo_mj": 400.0, "tail_mj": 7700.0},
    ("wifi", "http"): {"base_plt": 2.8, "active_mw": 0.0,
                       "promo_mj": 0.0, "tail_mj": 0.0},
    ("wifi", "spdy"): {"base_plt": 2.6, "active_mw": 0.0,
                       "promo_mj": 0.0, "tail_mj": 0.0},
}

#: Lognormal sigmas: page complexity varies across the web far more
#: (sites span two orders of magnitude of objects/bytes) than one
#: user's air interface does run to run.
_COMPLEXITY_SIGMA = 0.45
_AIR_SIGMA = 0.22


@dataclass(frozen=True)
class SectorConfig:
    """One sector-scale condition: who, how many, on what network."""

    users: int = 100_000
    shard_size: int = 10_000
    protocol: str = "http"
    network: str = "3g"
    seed: int = 0
    #: Sketch relative-error target (quantiles accurate to ±alpha).
    alpha: float = 0.01

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        key = (self.network, self.protocol)
        if key not in _REGIMES:
            raise ValueError(
                f"no sector regime for network={self.network!r} "
                f"protocol={self.protocol!r}; choose from "
                f"{sorted(set(k for k, _ in _REGIMES))} x "
                f"{sorted(set(p for _, p in _REGIMES))}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")

    @property
    def n_shards(self) -> int:
        return -(-self.users // self.shard_size)  # ceil division

    def shard_range(self, shard_index: int) -> Tuple[int, int]:
        """[start, end) user ids of one shard."""
        if not 0 <= shard_index < self.n_shards:
            raise ValueError(
                f"shard_index {shard_index} out of range "
                f"(sector has {self.n_shards} shards)")
        start = shard_index * self.shard_size
        return start, min(start + self.shard_size, self.users)


def sector_digest(config: SectorConfig) -> str:
    """Process-stable digest of one sector condition.

    Unlike :func:`~repro.sanity.campaign.config_digest`, the seed is
    *included*: a sector's seed selects its population, so a different
    seed is a different experiment.  The shard index plays the trial
    key's second half instead.
    """
    blob = json.dumps(asdict(config), sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def simulate_user(config: SectorConfig, uid: int) -> Tuple[float, float]:
    """(plt_seconds, radio_energy_mj) for one user — pure and stable.

    The string-seeded RNG makes the draw a function of (seed, uid)
    alone: chunking, sharding, retries, and workers cannot change it.
    """
    regime = _REGIMES[(config.network, config.protocol)]
    rng = random.Random(f"sector/{config.seed}/{uid}")
    complexity = math.exp(rng.gauss(0.0, _COMPLEXITY_SIGMA))
    air = math.exp(rng.gauss(0.0, _AIR_SIGMA))
    # Sector load: cell contention grows slowly with population (the
    # multiuser experiment's sub-linear PLT degradation), deterministic
    # per sector so it cannot break shard/worker byte-identity.
    contention = 1.0 + 0.06 * math.log10(max(1, config.users))
    plt = min(_PLT_TIMEOUT_S, regime["base_plt"] * complexity
              * air * contention)
    energy = (regime["promo_mj"] + plt * regime["active_mw"]
              + regime["tail_mj"])
    return plt, energy


def run_shard(config: SectorConfig, shard_index: int,
              budget: Optional[ResourceBudget] = None,
              chunk: int = DEFAULT_SHARD_CHUNK
              ) -> Dict[str, MetricSketch]:
    """Stream one shard's users into PLT/energy sketches.

    Memory is O(chunk): users buffer into a small list, feed the
    sketches, and are dropped — never a per-user list the size of the
    shard.  ``budget`` (when given) is checked once per chunk with the
    chunk's user count reported as events, so a wall-clock/RSS/event
    ceiling trips between chunks as a classified
    :class:`~repro.guard.ResourceExhausted`, not an OOM kill.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    start, end = config.shard_range(shard_index)
    plt_sketch = MetricSketch(alpha=config.alpha)
    energy_sketch = MetricSketch(alpha=config.alpha)
    buffered: List[Tuple[float, float]] = []

    def feed() -> None:
        for plt, energy in buffered:
            plt_sketch.add(plt)
            energy_sketch.add(energy)
        if budget is not None:
            budget.check(events=len(buffered))
        buffered.clear()

    for uid in range(start, end):
        buffered.append(simulate_user(config, uid))
        if len(buffered) >= chunk:
            feed()
    if buffered:
        feed()
    return {"plt": plt_sketch, "energy": energy_sketch}


def run_sector_trial(config: SectorConfig, shard_index: int,
                     budget: Optional[ResourceBudget] = None,
                     chunk: int = DEFAULT_SHARD_CHUNK
                     ) -> Dict[str, object]:
    """One shard as an isolated, classified, journal-able trial record.

    The record mirrors :func:`repro.sanity.campaign.run_trial` exactly
    (kind ``trial``, digest + seed identity, status/summary/failure), so
    the journal, resume, merge, and health-report machinery all apply
    unchanged — a sector shard *is* a campaign trial whose "seed" is its
    shard index.
    """
    record: Dict[str, object] = {
        "kind": "trial", "schema": JOURNAL_SCHEMA,
        "digest": sector_digest(config), "seed": shard_index,
        "protocol": config.protocol, "network": config.network,
    }
    try:
        sketches = run_shard(config, shard_index, budget=budget, chunk=chunk)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        tail = traceback.format_exception_only(type(exc), exc)
        failure = TrialFailure(
            kind=failure_kind(exc), error_type=type(exc).__name__,
            message=str(exc), digest=sector_digest(config),
            seed=shard_index, protocol=config.protocol,
            network=config.network,
            traceback_tail=[line.rstrip("\n") for line in tail][-8:])
        record.update(status="failed", violations=0, summary=None,
                      failure=failure.as_dict())
    else:
        start, end = config.shard_range(shard_index)
        record.update(
            status="ok", violations=0, failure=None,
            summary={"users": end - start,
                     "plt": sketches["plt"].to_dict(),
                     "energy": sketches["energy"].to_dict()})
    return record


def run_sector_campaign(config: SectorConfig,
                        journal_path: Optional[str] = None,
                        resume: bool = False,
                        should_stop=None,
                        budget: Optional[ResourceBudget] = None,
                        chunk: int = DEFAULT_SHARD_CHUNK):
    """Serially run every shard as a journaled, resumable campaign.

    Same contract as :func:`repro.sanity.campaign.run_campaign` (journal
    / resume / graceful stop / budget degradation) with shards in place
    of configs; the parallel path (``repro sector --workers N``) plans
    the same shard order, so the merged journal is byte-identical.
    """
    # Local import: campaign.py must not depend on the experiments layer.
    from ..sanity.campaign import (CampaignJournal, CampaignResult,
                                   exhaustion_record)
    from ..guard import ResourceExhausted

    journal = CampaignJournal(journal_path) if journal_path else None
    done: Dict[Tuple[str, int], Dict[str, object]] = {}
    if resume:
        if journal is None:
            raise ValueError("resume requires a journal path")
        import os
        if not os.path.exists(journal.path):
            raise FileNotFoundError(
                f"cannot resume: journal {journal.path!r} does not exist")
        done = journal.completed()

    digest = sector_digest(config)
    result = CampaignResult(journal_path=journal_path)
    records = result.records
    try:
        for shard_index in range(config.n_shards):
            if should_stop is not None and should_stop():
                result.stopped_early = True
                break
            prior = done.get((digest, shard_index))
            if prior is not None:
                record = dict(prior)
                record["resumed"] = True
                records.append(record)  # repro-lint: disable=MEM001 -- one record per shard, not per user; users stream through sketches
                continue
            if budget is not None:
                try:
                    budget.check(force_rss=True)
                except ResourceExhausted as exc:
                    record = sector_exhaustion_record(config, shard_index, exc)
                    if journal is not None:
                        journal.append(record)
                    records.append(record)  # repro-lint: disable=MEM001 -- one record per shard, not per user; users stream through sketches
                    result.exhausted = True
                    break
            record = run_sector_trial(config, shard_index, budget=budget,
                                      chunk=chunk)
            if is_sector_exhaustion(record):
                result.exhausted = True
            if journal is not None:
                written = journal.append(record)
                if budget is not None:
                    budget.note_journal_bytes(written)
            records.append(record)  # repro-lint: disable=MEM001 -- one record per shard, not per user; users stream through sketches
            if result.exhausted:
                break
    finally:
        if journal is not None:
            journal.close()
            result.journal_stats = journal.stats()
    return result


def is_sector_exhaustion(record: Dict[str, object]) -> bool:
    from ..sanity.campaign import is_exhaustion_record
    return is_exhaustion_record(record)


def sector_exhaustion_record(config: SectorConfig, shard_index: int,
                       exc) -> Dict[str, object]:
    """An exhaustion record for a shard that could not start."""
    tail = traceback.format_exception_only(type(exc), exc)
    failure = TrialFailure(
        kind="resource-exhaustion", error_type=type(exc).__name__,
        message=str(exc), digest=sector_digest(config), seed=shard_index,
        protocol=config.protocol, network=config.network,
        traceback_tail=[line.rstrip("\n") for line in tail][-8:])
    return {"kind": "trial", "schema": JOURNAL_SCHEMA,
            "digest": sector_digest(config), "seed": shard_index,
            "protocol": config.protocol, "network": config.network,
            "status": "failed", "violations": 0, "summary": None,
            "failure": failure.as_dict()}


def aggregate_sector(records) -> Dict[str, object]:
    """Merge shard sketches into the sector-level aggregate.

    Associative sketch merges mean the result is identical for any
    grouping of the same records — serial, resumed, or per-worker.
    """
    plt = MetricSketch()
    energy = MetricSketch()
    users = ok = failed = exhausted = 0
    first = True
    for record in records:
        if record.get("kind") != "trial":
            continue
        if record.get("status") != "ok" or not record.get("summary"):
            failed += 1
            if is_sector_exhaustion(record):
                exhausted += 1
            continue
        summary = record["summary"]
        plt_part = MetricSketch.from_dict(summary["plt"])
        energy_part = MetricSketch.from_dict(summary["energy"])
        if first:
            plt, energy, first = plt_part, energy_part, False
        else:
            plt.merge(plt_part)
            energy.merge(energy_part)
        users += int(summary.get("users", 0))
        ok += 1
    return {"users": users, "shards_ok": ok, "shards_failed": failed,
            "shards_exhausted": exhausted,
            "plt": plt.summary(), "energy": energy.summary()}
