"""The full measurement testbed: client, access network, proxies, origins.

Builds the paper's Figure 2 setup in one object::

    laptop client --(3G/LTE/WiFi access)--> proxy cloud --(wired)--> origins

The proxy host runs both the HTTP proxy and the SPDY proxy ("we run a
SPDY and an HTTP proxy on the same machine for a fair comparison"); an
experiment configures a browser against one of them.  All the paper's
instrumentation is attached here: tcp_probe on the proxy, tcpdump-style
taps on the access links, proxy request records, and the RRC state log.
"""

from __future__ import annotations

from typing import Optional

from ..browser import Browser, BrowserConfig, HttpFetcher, SpdyFetcher
from ..cellular import AccessNetwork, AccessProfile, make_profile
from ..net import Host, LinkTap
from ..proxy import (HTTP_PROXY_PORT, HttpProxy, ProxyTrace, SPDY_PROXY_PORT,
                     SpdyProxy, UpstreamPool)
from ..server import OriginFarm
from ..sim import Simulator
from ..tcp import TcpConfig, TcpProbe, TcpStack
from ..metrics import PacketTraceTap

__all__ = ["Testbed"]


class Testbed:
    """One fully wired simulation instance."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, profile: Optional[AccessProfile] = None,
                 seed: int = 0,
                 proxy_tcp: Optional[TcpConfig] = None,
                 client_tcp: Optional[TcpConfig] = None,
                 late_binding: bool = False,
                 browser_config: Optional[BrowserConfig] = None):
        self.sim = Simulator(seed=seed)
        self.profile = profile or make_profile("3g")
        self.client_host = Host(self.sim, "client")
        self.proxy_host = Host(self.sim, "proxy")
        self.access = AccessNetwork(self.sim, self.client_host,
                                    self.proxy_host, self.profile)

        self.proxy_tcp_config = proxy_tcp or TcpConfig()
        self.client_tcp_config = client_tcp or TcpConfig()
        self.client_stack = TcpStack(self.sim, self.client_host,
                                     self.client_tcp_config)
        self.proxy_stack = TcpStack(self.sim, self.proxy_host,
                                    self.proxy_tcp_config)

        # tcp_probe on the proxy (the paper's vantage point) and client.
        self.proxy_probe = TcpProbe()
        self.proxy_stack.set_probe(self.proxy_probe)
        self.client_probe = TcpProbe()
        self.client_stack.set_probe(self.client_probe)

        # tcpdump on the access links.
        self.downlink_trace = PacketTraceTap(self.sim)
        self.uplink_trace = PacketTraceTap(self.sim)
        self.access.downlink.add_tap(LinkTap(self.downlink_trace.notify))
        self.access.uplink.add_tap(LinkTap(self.uplink_trace.notify))

        # Origins and proxies.
        self.farm = OriginFarm(self.sim, self.proxy_host)
        self.upstream = UpstreamPool(self.sim, self.proxy_stack, self.farm)
        self.proxy_trace = ProxyTrace()
        self.http_proxy = HttpProxy(self.sim, self.proxy_stack, self.upstream,
                                    trace=self.proxy_trace)
        self.spdy_proxy = SpdyProxy(self.sim, self.proxy_stack, self.upstream,
                                    trace=self.proxy_trace,
                                    late_binding=late_binding)
        self.browser_config = browser_config or BrowserConfig()

    # ------------------------------------------------------------------
    def make_browser(self, protocol: str, n_spdy_sessions: int = 1,
                     max_per_domain: int = 6, max_total: int = 32,
                     http_pipelining: bool = False,
                     recover: bool = True) -> Browser:
        """Build a browser speaking ``protocol`` ("http" or "spdy").

        ``recover=False`` disables SPDY session re-establishment after a
        connection reset (the resilience benchmark's fragile baseline).
        """
        if protocol == "http":
            fetcher = HttpFetcher(self.sim, self.client_stack, "proxy",
                                  HTTP_PROXY_PORT,
                                  max_per_domain=max_per_domain,
                                  max_total=max_total,
                                  pipelining=http_pipelining)
        elif protocol == "spdy":
            fetcher = SpdyFetcher(self.sim, self.client_stack, "proxy",
                                  SPDY_PROXY_PORT,
                                  n_sessions=n_spdy_sessions,
                                  recover=recover)
        else:
            raise ValueError(f"unknown protocol {protocol!r}")
        return Browser(self.sim, fetcher, self.browser_config)

    # ------------------------------------------------------------------
    @property
    def radio(self):
        """The device's RRC machine (None on WiFi)."""
        return self.access.machine
