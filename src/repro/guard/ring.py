"""A bounded in-memory ring with loud drop accounting.

When :class:`~repro.sanity.campaign.CampaignJournal` loses its disk
(persistent ENOSPC/EIO), records degrade into a :class:`BoundedRing`
instead of an unbounded list — the whole point of the guard layer is
that an out-of-disk campaign must not *also* go out of memory.  The
ring keeps the most recent ``capacity`` records in arrival order and
counts every record it had to evict, so the health report can say
exactly how much was lost rather than pretending the tail survived.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, TypeVar

__all__ = ["BoundedRing"]

T = TypeVar("T")


class BoundedRing(Generic[T]):
    """Fixed-capacity FIFO: newest wins, evictions are counted."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self.total_pushed = 0
        self._items: Deque[T] = deque()

    def push(self, item: T) -> None:
        """Append; evict (and count) the oldest item when full."""
        self.total_pushed += 1
        if len(self._items) >= self.capacity:
            self._items.popleft()
            self.dropped += 1
        self._items.append(item)

    def peek_oldest(self) -> T:
        """The oldest buffered item, without removing it."""
        return self._items[0]

    def pop_oldest(self) -> T:
        """Remove and return the oldest buffered item."""
        return self._items.popleft()

    def drain(self) -> List[T]:
        """Remove and return everything, oldest first."""
        items = list(self._items)
        self._items.clear()
        return items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)
