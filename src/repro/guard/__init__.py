"""Resource-exhaustion guards: budgets, bounded buffers, I/O faults.

Campaigns at population scale (ROADMAP item 3) die three ways that the
fault/chaos/supervision stack of earlier PRs cannot survive: the kernel
OOM-kills the process, the journal disk fills, or a runaway loop eats
the wall clock.  This package turns each of those into a *classified,
resumable* outcome instead of an unclassified crash:

* :mod:`repro.guard.budget` — :class:`ResourceBudget` tracks wall-clock,
  RSS (lightweight ``/proc`` self-sampling), event counts, and journal
  bytes against configured ceilings, raising :class:`ResourceExhausted`
  — a failure *kind* of its own, distinct from ``infra`` (retried) and
  genuine simulator failures (journaled, never retried).
* :mod:`repro.guard.ring` — :class:`BoundedRing`, the fixed-capacity
  buffer a degraded journal falls back to, with loud drop accounting.
* :mod:`repro.guard.iofaults` — ENOSPC/EIO fault injection for
  :class:`~repro.sanity.campaign.CampaignJournal.append`, driven by the
  ``REPRO_JOURNAL_FAULTS`` env hook (the same self-chaos discipline as
  ``REPRO_PARALLEL_KILL``).
"""

from .budget import (ResourceBudget, ResourceExhausted, rss_bytes,
                     DEFAULT_RSS_SAMPLE_EVERY)
from .iofaults import (JournalFaultSpecError, JournalFaults,
                       journal_faults_from_env)
from .ring import BoundedRing

__all__ = ["BoundedRing", "DEFAULT_RSS_SAMPLE_EVERY", "JournalFaultSpecError",
           "JournalFaults", "ResourceBudget", "ResourceExhausted",
           "journal_faults_from_env", "rss_bytes"]
