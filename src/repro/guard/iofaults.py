"""Injectable journal I/O faults: ENOSPC, EIO, and torn partial writes.

The fault-injection discipline the simulator applies to radio links
(:mod:`repro.faults`) and the parallel harness applies to itself
(``REPRO_PARALLEL_KILL``), turned on the journal's write path.  A spec
names which appends fail and how::

    REPRO_JOURNAL_FAULTS="enospc@3-6,partial@9,eio@12"

* ``enospc@N[-M]`` — appends N..M (1-based, counted per journal) raise
  ``OSError(ENOSPC)`` before any byte lands;
* ``eio@N[-M]``    — same with ``EIO``;
* ``partial@N[-M]``— half the record's bytes land, *then* the write
  raises ``ENOSPC`` — the mid-record torn tail that
  :class:`~repro.sanity.campaign.CampaignJournal` must repair by
  truncating back to the last good offset.

Specs parse strictly (a typo'd injection that silently never fires is a
test that tests nothing).
"""

from __future__ import annotations

import errno
import os
from typing import List, Tuple

__all__ = ["JournalFaultSpecError", "JournalFaults",
           "journal_faults_from_env"]

ENV_VAR = "REPRO_JOURNAL_FAULTS"

_KINDS = {
    "enospc": errno.ENOSPC,
    "eio": errno.EIO,
    "partial": errno.ENOSPC,
}


class JournalFaultSpecError(ValueError):
    """An unparsable ``REPRO_JOURNAL_FAULTS`` spec."""


def _parse_range(text: str) -> Tuple[int, int]:
    if "-" in text:
        lo_text, hi_text = text.split("-", 1)
    else:
        lo_text = hi_text = text
    try:
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise JournalFaultSpecError(
            f"bad append range {text!r} (expected N or N-M)")
    if lo < 1 or hi < lo:
        raise JournalFaultSpecError(
            f"bad append range {text!r} (1-based, N <= M)")
    return lo, hi


class JournalFaults:
    """Parsed fault plan for one journal's append stream."""

    def __init__(self, spec: str):
        self.spec = spec
        self._clauses: List[Tuple[str, int, int]] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "@" not in part:
                raise JournalFaultSpecError(
                    f"bad journal fault clause {part!r} "
                    f"(expected kind@N or kind@N-M)")
            kind, _, rng = part.partition("@")
            kind = kind.strip().lower()
            if kind not in _KINDS:
                raise JournalFaultSpecError(
                    f"unknown journal fault kind {kind!r} "
                    f"(choose from {', '.join(sorted(_KINDS))})")
            lo, hi = _parse_range(rng.strip())
            self._clauses.append((kind, lo, hi))
        if not self._clauses:
            raise JournalFaultSpecError(f"empty journal fault spec {spec!r}")

    def kind_for(self, index: int) -> str:
        """The fault kind armed for 1-based append ``index``, or ''."""
        for kind, lo, hi in self._clauses:
            if lo <= index <= hi:
                return kind
        return ""

    def on_append(self, index: int, handle, line: str) -> None:
        """Fire the fault for this append, if one is armed.

        ``partial`` writes a torn prefix through the real handle first,
        so the journal's truncate-repair path is exercised against
        bytes that genuinely hit the file.
        """
        kind = self.kind_for(index)
        if not kind:
            return
        if kind == "partial" and handle is not None:
            torn = line[:max(1, len(line) // 2)]
            handle.write(torn)
            handle.flush()
        code = _KINDS[kind]
        raise OSError(code, f"injected {kind} ({os.strerror(code)}) "
                            f"on journal append #{index}")


def journal_faults_from_env(environ=os.environ):
    """The process-wide fault plan, or None when the hook is unset."""
    spec = environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    return JournalFaults(spec)
