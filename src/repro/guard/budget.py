"""Resource budgets: wall-clock, RSS, event-count, journal-byte ceilings.

A :class:`ResourceBudget` is checked at safe points (between trials,
every N users inside a population shard) and raises
:class:`ResourceExhausted` when a ceiling is crossed.  The exception
carries *which* resource ran out, and the trial-classification machinery
(:class:`repro.sanity.campaign.TrialFailure`) maps it to the
``resource-exhaustion`` failure kind: unlike a genuine failure it is
environment-dependent, so resume re-runs it; unlike an infra failure it
is not blindly retried in place — the campaign degrades and reports.

RSS sampling reads ``/proc/<pid>/statm`` (two integer parses, no
allocation to speak of), falling back to ``resource.getrusage`` peak RSS
where ``/proc`` is unavailable.  The clock and the sampler are injected
so budget logic is testable without real time or real memory pressure.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

__all__ = ["DEFAULT_RSS_SAMPLE_EVERY", "ResourceBudget",
           "ResourceExhausted", "rss_bytes"]

#: Check RSS once per this many :meth:`ResourceBudget.check` calls —
#: per-user loops call ``check`` millions of times and a /proc read per
#: call would dominate the shard.
DEFAULT_RSS_SAMPLE_EVERY = 256

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


class ResourceExhausted(RuntimeError):
    """A resource ceiling was crossed; the campaign must degrade.

    ``resource`` names which ceiling: ``wall-clock`` | ``rss`` |
    ``events`` | ``journal-bytes``.
    """

    def __init__(self, resource: str, message: str):
        super().__init__(message)
        self.resource = resource


def rss_bytes(pid: Optional[int] = None) -> Optional[int]:
    """Current resident set size in bytes, or None if unmeasurable.

    ``/proc/<pid>/statm`` field 2 is resident pages; multiplying by the
    page size gives bytes with two syscalls and no subprocess.  For the
    calling process the fallback is ``resource.getrusage`` — note that
    reports *peak* RSS, which is still the right thing to compare
    against a ceiling (memory that was resident once was paid for).
    """
    target = "self" if pid is None else str(pid)
    try:
        with open(f"/proc/{target}/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    if pid is not None:
        return None  # cannot getrusage an arbitrary pid
    try:
        import resource
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except (ImportError, OSError, ValueError):  # pragma: no cover
        return None


class ResourceBudget:
    """Ceilings over wall-clock, RSS, events, and journal bytes.

    All ceilings are optional; an all-``None`` budget never trips.  The
    wall clock starts at construction (or :meth:`restart`).  ``events``
    and ``journal_bytes`` are *reported* by the caller via
    :meth:`note_events` / :meth:`check` arguments — the budget holds the
    running totals so call sites stay one-liners.
    """

    def __init__(self,
                 max_wall_seconds: Optional[float] = None,
                 max_rss_bytes: Optional[int] = None,
                 max_events: Optional[int] = None,
                 max_journal_bytes: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic,
                 rss_sampler: Callable[..., Optional[int]] = rss_bytes,
                 rss_sample_every: int = DEFAULT_RSS_SAMPLE_EVERY):
        if rss_sample_every < 1:
            raise ValueError("rss_sample_every must be >= 1")
        self.max_wall_seconds = max_wall_seconds
        self.max_rss_bytes = max_rss_bytes
        self.max_events = max_events
        self.max_journal_bytes = max_journal_bytes
        self._clock = clock
        self._rss_sampler = rss_sampler
        self._rss_sample_every = rss_sample_every
        self._checks = 0
        self.events = 0
        self.journal_bytes = 0
        self.last_rss: Optional[int] = None
        self._started = self._clock()

    @classmethod
    def from_limits(cls, max_wall_seconds: Optional[float] = None,
                    max_rss_mb: Optional[float] = None,
                    max_events: Optional[int] = None,
                    max_journal_mb: Optional[float] = None
                    ) -> Optional["ResourceBudget"]:
        """A budget from CLI-flavoured limits, or None if none are set."""
        if (max_wall_seconds is None and max_rss_mb is None
                and max_events is None and max_journal_mb is None):
            return None
        return cls(
            max_wall_seconds=max_wall_seconds,
            max_rss_bytes=(None if max_rss_mb is None
                           else int(max_rss_mb * (1 << 20))),
            max_events=max_events,
            max_journal_bytes=(None if max_journal_mb is None
                               else int(max_journal_mb * (1 << 20))))

    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Re-anchor the wall clock (a resumed campaign starts fresh)."""
        self._started = self._clock()

    def elapsed(self) -> float:
        return self._clock() - self._started

    def note_events(self, count: int) -> None:
        """Accumulate processed events/users toward ``max_events``."""
        self.events += count

    def note_journal_bytes(self, count: int) -> None:
        self.journal_bytes += count

    # ------------------------------------------------------------------
    def check(self, events: Optional[int] = None,
              journal_bytes: Optional[int] = None,
              force_rss: bool = False) -> None:
        """Raise :class:`ResourceExhausted` if any ceiling is crossed.

        ``events``/``journal_bytes`` (when given) are added to the
        running totals first.  RSS is sampled every
        ``rss_sample_every``-th call (or when ``force_rss``), so the
        check is cheap enough for per-user loops.
        """
        if events:
            self.events += events
        if journal_bytes:
            self.journal_bytes += journal_bytes
        self._checks += 1
        if self.max_wall_seconds is not None:
            elapsed = self.elapsed()
            if elapsed > self.max_wall_seconds:
                raise ResourceExhausted(
                    "wall-clock",
                    f"wall-clock budget exhausted: {elapsed:.1f}s elapsed "
                    f"> {self.max_wall_seconds:.1f}s ceiling")
        if self.max_events is not None and self.events > self.max_events:
            raise ResourceExhausted(
                "events",
                f"event budget exhausted: {self.events:,} events "
                f"> {self.max_events:,} ceiling")
        if (self.max_journal_bytes is not None
                and self.journal_bytes > self.max_journal_bytes):
            raise ResourceExhausted(
                "journal-bytes",
                f"journal budget exhausted: {self.journal_bytes:,} bytes "
                f"> {self.max_journal_bytes:,} ceiling")
        if self.max_rss_bytes is not None and (
                force_rss or self._checks % self._rss_sample_every == 0
                or self._checks == 1):
            rss = self._rss_sampler()
            self.last_rss = rss
            if rss is not None and rss > self.max_rss_bytes:
                raise ResourceExhausted(
                    "rss",
                    f"RSS budget exhausted: {rss / (1 << 20):.0f} MiB "
                    f"resident > {self.max_rss_bytes / (1 << 20):.0f} "
                    f"MiB ceiling")
