"""Web page model: objects, dependency DAG, background activity.

A page is a DAG of objects.  The main HTML reveals its first wave of
children only after it has been downloaded and parsed; Javascript and
CSS objects reveal further objects after *they* are processed — the
interdependency structure the paper identifies (§5.2, Figure 6) as the
reason SPDY cannot actually request everything at once.

``BackgroundTransfer`` models the periodic activity ("ads, tracking
cookies, web analytics, page refreshes") that keeps poking the radio
during think time and sets up the idle→promotion→spurious-RTO cycle of
Figures 11-12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["WebObject", "WebPage", "BackgroundTransfer",
           "KIND_HTML", "KIND_JS", "KIND_CSS", "KIND_IMAGE", "KIND_OTHER"]

KIND_HTML = "html"
KIND_JS = "js"
KIND_CSS = "css"
KIND_IMAGE = "image"
KIND_OTHER = "other"

#: Object kinds that the browser must download *and process* before the
#: objects they reference become visible.
BLOCKING_KINDS = (KIND_HTML, KIND_JS, KIND_CSS)

#: SPDY priorities by kind (0 = highest), mirroring Figure 1(d): critical
#: resources (markup, scripts, styles) beat images.
SPDY_PRIORITY = {KIND_HTML: 0, KIND_CSS: 1, KIND_JS: 1,
                 KIND_OTHER: 2, KIND_IMAGE: 3}


@dataclass
class WebObject:
    """One fetchable resource."""

    object_id: str
    domain: str
    path: str
    size: int
    kind: str
    children: List[str] = field(default_factory=list)
    processing_delay: float = 0.0  # parse/execute time after download
    # Filled by WebPage: the child WebObjects themselves (push hints).
    resolved_children: List["WebObject"] = field(default_factory=list,
                                                 repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"{self.object_id}: size must be positive")
        if self.kind not in (KIND_HTML, KIND_JS, KIND_CSS, KIND_IMAGE,
                             KIND_OTHER):
            raise ValueError(f"{self.object_id}: unknown kind {self.kind!r}")

    @property
    def blocking(self) -> bool:
        """Must be processed before its children are discovered."""
        return self.kind in BLOCKING_KINDS

    @property
    def priority(self) -> int:
        return SPDY_PRIORITY[self.kind]

    @property
    def content_type(self) -> str:
        return {KIND_HTML: "text/html; charset=UTF-8",
                KIND_JS: "application/x-javascript",
                KIND_CSS: "text/css",
                KIND_IMAGE: "image/jpeg",
                KIND_OTHER: "application/octet-stream"}[self.kind]


@dataclass
class BackgroundTransfer:
    """Periodic or long-poll activity after the page has loaded.

    ``kind="beacon"``: client-initiated analytics request at
    ``start_offset`` seconds after onLoad.  ``kind="poll"``: a long-poll
    issued right after onLoad whose *response* arrives ``server_delay``
    seconds later — i.e. server-initiated downlink data that may find
    the radio demoted (the proxy-side spurious-RTO trigger).
    """

    kind: str                 # "beacon" | "poll"
    start_offset: float       # seconds after onLoad the client acts
    request_bytes: int = 350
    response_bytes: int = 2000
    server_delay: float = 0.0  # poll: how long the server holds the request

    def __post_init__(self) -> None:
        if self.kind not in ("beacon", "poll"):
            raise ValueError(f"unknown background transfer kind {self.kind!r}")
        if self.start_offset < 0 or self.server_delay < 0:
            raise ValueError("offsets must be non-negative")


class WebPage:
    """A complete page: objects keyed by id, rooted at ``main_id``."""

    def __init__(self, site_id: int, name: str, category: str,
                 objects: Dict[str, WebObject], main_id: str,
                 background: Optional[List[BackgroundTransfer]] = None):
        if main_id not in objects:
            raise ValueError(f"main object {main_id!r} not in page")
        self.site_id = site_id
        self.name = name
        self.category = category
        self.objects = objects
        self.main_id = main_id
        self.background = background or []
        self._validate()

    def _validate(self) -> None:
        for obj in self.objects.values():
            for child in obj.children:
                if child not in self.objects:
                    raise ValueError(
                        f"{obj.object_id}: unknown child {child!r}")
            # Resolved references let an origin server see its own
            # same-domain children (the basis for SPDY server push).
            obj.resolved_children = [self.objects[c] for c in obj.children]
        reachable = set(self.reachable_from(self.main_id))
        orphans = set(self.objects) - reachable
        if orphans:
            raise ValueError(f"unreachable objects: {sorted(orphans)[:5]}")

    # ------------------------------------------------------------------
    def reachable_from(self, object_id: str) -> Iterable[str]:
        """DFS over the dependency DAG."""
        seen = set()
        stack = [object_id]
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            yield oid
            stack.extend(self.objects[oid].children)

    @property
    def main(self) -> WebObject:
        return self.objects[self.main_id]

    @property
    def total_objects(self) -> int:
        return len(self.objects)

    @property
    def total_bytes(self) -> int:
        return sum(o.size for o in self.objects.values())

    @property
    def domains(self) -> List[str]:
        return sorted({o.domain for o in self.objects.values()})

    def count_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for obj in self.objects.values():
            counts[obj.kind] = counts.get(obj.kind, 0) + 1
        return counts

    def max_dependency_depth(self) -> int:
        """Longest chain of blocking objects (drives stepped discovery)."""
        depth: Dict[str, int] = {}

        def visit(oid: str) -> int:
            if oid in depth:
                return depth[oid]
            obj = self.objects[oid]
            depth[oid] = 0  # break cycles defensively (DAG expected)
            best = 0
            for child in obj.children:
                best = max(best, 1 + visit(child))
            depth[oid] = best
            return best

        return visit(self.main_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WebPage #{self.site_id} {self.name!r} "
                f"{self.total_objects} objs {self.total_bytes / 1024:.0f}KB>")
