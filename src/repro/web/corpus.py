"""The 20-site corpus of Table 1, plus the §5.2 synthetic test pages.

The paper publishes, per site: category, average object count, total
bytes, domain spread, and the text / JS+CSS / image object mix
(Table 1).  We synthesise a deterministic page for each row matching
those marginals:

* object counts and kind mix — taken directly from the row;
* object sizes — lognormal, rescaled to hit the row's total bytes;
* domains — objects spread over the row's domain count with a Zipf
  popularity law (a couple of first-party domains dominate);
* dependency DAG — the main HTML reveals roughly half the objects;
  scripts and stylesheets reveal the rest in chains, deeper for
  script-heavy sites (this produces the stepped request patterns of
  Figure 6);
* background activity — news/portal/radio-style sites carry periodic
  beacons and long-polls ("ads, tracking cookies, web analytics, page
  refreshes") that interact with the RRC idle timers between page loads.

Pages are deterministic in ``site_id`` alone, so every experiment run
(HTTP vs SPDY, any seed) loads byte-identical pages, as in the field
study where the same URLs were fetched throughout.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from .resources import (BackgroundTransfer, KIND_CSS, KIND_HTML, KIND_IMAGE,
                        KIND_JS, KIND_OTHER, WebObject, WebPage)

__all__ = ["SiteSpec", "TABLE1_SITES", "build_page", "build_corpus",
           "build_test_page", "corpus_statistics"]


@dataclass(frozen=True)
class SiteSpec:
    """One row of Table 1."""

    site_id: int
    category: str
    total_objects: float
    total_kb: float
    domains: float
    text_objects: float
    js_css_objects: float
    image_objects: float


#: Table 1 of the paper, verbatim.
TABLE1_SITES: List[SiteSpec] = [
    SiteSpec(1, "Finance", 134.8, 626.9, 37.6, 28.6, 41.3, 64.9),
    SiteSpec(2, "Entertainment", 160.6, 2197.3, 36.3, 16.5, 28.0, 116.1),
    SiteSpec(3, "Shopping", 143.8, 1563.1, 15.8, 13.3, 36.8, 93.7),
    SiteSpec(4, "Portal", 121.6, 963.3, 27.5, 9.6, 18.3, 93.7),
    SiteSpec(5, "Technology", 45.2, 602.8, 3.0, 2.0, 18.0, 25.2),
    SiteSpec(6, "ISP", 163.4, 1594.5, 13.2, 13.2, 36.4, 113.8),
    SiteSpec(7, "News", 115.8, 1130.6, 28.5, 9.1, 49.5, 57.2),
    SiteSpec(8, "News", 157.7, 1184.5, 27.3, 29.6, 28.3, 99.8),
    SiteSpec(9, "Shopping", 5.1, 56.2, 2.0, 3.1, 2.0, 0.0),
    SiteSpec(10, "Auction", 59.3, 719.7, 17.9, 6.8, 7.0, 45.5),
    SiteSpec(11, "Online Radio", 122.1, 1489.1, 17.9, 24.1, 21.0, 77.0),
    SiteSpec(12, "Photo Sharing", 29.4, 688.0, 4.0, 2.3, 10.0, 17.1),
    SiteSpec(13, "Technology", 63.4, 895.1, 9.0, 4.1, 15.0, 44.3),
    SiteSpec(14, "Baseball", 167.8, 1130.5, 12.5, 19.5, 94.0, 54.3),
    SiteSpec(15, "News", 323.0, 1722.7, 84.7, 73.4, 73.6, 176.0),
    SiteSpec(16, "Football", 267.1, 2311.0, 75.0, 60.3, 56.9, 149.9),
    SiteSpec(17, "News", 218.5, 4691.3, 37.0, 19.0, 56.3, 143.2),
    SiteSpec(18, "Photo Sharing", 33.6, 1664.8, 9.1, 3.3, 6.7, 23.6),
    SiteSpec(19, "Online Radio", 68.7, 2908.9, 15.5, 5.2, 23.8, 39.7),
    SiteSpec(20, "Weather", 163.2, 1653.8, 48.7, 19.7, 45.3, 98.2),
]

#: Categories whose sites carry heavy periodic background activity.
_ACTIVE_CATEGORIES = {"News", "Portal", "Online Radio", "Weather", "Finance",
                      "Baseball", "Football"}

#: Median size (bytes) and lognormal sigma by object kind, before rescale.
_SIZE_SHAPE = {
    KIND_HTML: (30_000, 0.8),
    KIND_JS: (12_000, 0.9),
    KIND_CSS: (9_000, 0.8),
    KIND_IMAGE: (8_000, 1.1),
    KIND_OTHER: (5_000, 1.0),
}


def _zipf_assignment(rng: random.Random, count: int, n_domains: int) -> List[int]:
    """Assign ``count`` objects to domains 0..n_domains-1 Zipf-style,
    guaranteeing every domain gets at least one object."""
    weights = [1.0 / (rank ** 0.9) for rank in range(1, n_domains + 1)]
    total = sum(weights)
    assignment = list(range(n_domains))  # one each, to honour the row count
    for _ in range(max(0, count - n_domains)):
        x = rng.random() * total
        acc = 0.0
        for idx, w in enumerate(weights):
            acc += w
            if x < acc:
                assignment.append(idx)
                break
        else:
            assignment.append(n_domains - 1)
    rng.shuffle(assignment)
    return assignment[:count]


def _sizes_for(rng: random.Random, kinds: List[str], total_bytes: int) -> List[int]:
    """Draw lognormal sizes per kind, rescaled so they sum to total_bytes."""
    raw = []
    for kind in kinds:
        median, sigma = _SIZE_SHAPE[kind]
        raw.append(rng.lognormvariate(math.log(median), sigma))
    scale = total_bytes / sum(raw)
    sizes = [max(120, int(r * scale)) for r in raw]
    # Exact-total correction on the largest object.
    drift = total_bytes - sum(sizes)
    big = max(range(len(sizes)), key=lambda i: sizes[i])
    sizes[big] = max(120, sizes[big] + drift)
    return sizes


def _background_for(spec: SiteSpec, rng: random.Random) -> List[BackgroundTransfer]:
    """Periodic activity profile by category."""
    background: List[BackgroundTransfer] = []
    if spec.category in _ACTIVE_CATEGORIES:
        # Analytics beacons through the think-time window.
        for offset in (12.0, 27.0, 42.0):
            background.append(BackgroundTransfer(
                kind="beacon", start_offset=offset + rng.uniform(-2, 2),
                request_bytes=rng.randint(300, 500),
                response_bytes=rng.randint(400, 3000)))
        # A long-poll whose response lands after the radio has demoted:
        # server-initiated downlink data into an idle radio (Fig. 12).
        background.append(BackgroundTransfer(
            kind="poll", start_offset=1.0,
            request_bytes=rng.randint(300, 500),
            response_bytes=rng.randint(4000, 20000),
            server_delay=rng.uniform(18.0, 30.0)))
    elif spec.total_objects >= 40:
        background.append(BackgroundTransfer(
            kind="beacon", start_offset=25.0 + rng.uniform(-3, 3),
            request_bytes=400, response_bytes=rng.randint(300, 1500)))
    return background


def build_page(spec: SiteSpec) -> WebPage:
    """Deterministically synthesise the page for one Table 1 row."""
    rng = random.Random(f"corpus/site/{spec.site_id}")

    n_total = max(1, round(spec.total_objects))
    n_domains = max(1, round(spec.domains))
    n_imgs = min(n_total - 1, round(spec.image_objects)) if n_total > 1 else 0
    n_js_css = min(n_total - 1 - n_imgs, round(spec.js_css_objects))
    n_text = max(1, n_total - n_imgs - n_js_css)  # includes the main HTML

    kinds: List[str] = [KIND_HTML] * n_text
    for i in range(n_js_css):
        kinds.append(KIND_JS if i % 2 == 0 else KIND_CSS)
    kinds.extend([KIND_IMAGE] * n_imgs)
    kinds = kinds[:n_total]

    sizes = _sizes_for(rng, kinds, int(spec.total_kb * 1024))
    domain_idx = _zipf_assignment(rng, n_total, n_domains)

    objects: Dict[str, WebObject] = {}
    for i, (kind, size, didx) in enumerate(zip(kinds, sizes, domain_idx)):
        oid = f"s{spec.site_id}/o{i}"
        if i == 0:
            didx = 0  # main document lives on the first-party domain
        processing = 0.0
        if kind == KIND_HTML:
            # The main document pays a full parse; subsidiary text
            # objects (fragments, iframes, JSON) are much lighter.
            processing = (0.030 + size / 4e6) if i == 0 else \
                (0.004 + size / 10e6)
        elif kind == KIND_JS:
            processing = 0.010 + size / 4e6      # compile+execute
        elif kind == KIND_CSS:
            processing = 0.004 + size / 8e6      # style recalc
        objects[oid] = WebObject(
            object_id=oid, domain=f"site{spec.site_id}-d{didx}.example",
            path=f"/{kind}/{i}", size=size, kind=kind,
            processing_delay=processing)

    # --- dependency DAG -------------------------------------------------
    ids = list(objects)
    main_id = ids[0]
    rest = ids[1:]
    rng.shuffle(rest)
    blocking = [oid for oid in rest if objects[oid].blocking]
    # Roughly half of everything is visible in the main HTML; the rest
    # hides behind scripts/stylesheets, in chains up to depth ~3.
    first_wave_count = max(1, int(len(rest) * 0.55))
    first_wave = rest[:first_wave_count]
    hidden = rest[first_wave_count:]
    objects[main_id].children.extend(first_wave)

    revealers = [oid for oid in first_wave if objects[oid].blocking] or [main_id]
    for i, oid in enumerate(hidden):
        parent = revealers[i % len(revealers)]
        objects[parent].children.append(oid)
        # Script-heavy sites chain deeper: a hidden script may itself
        # reveal later objects.
        if objects[oid].blocking and rng.random() < 0.5:
            revealers.append(oid)

    return WebPage(spec.site_id, f"site{spec.site_id}", spec.category,
                   objects, main_id, background=_background_for(spec, rng))


def build_corpus(site_ids: Optional[List[int]] = None) -> List[WebPage]:
    """Build the full 20-page corpus (or a subset by site id)."""
    wanted = set(site_ids) if site_ids is not None else None
    pages = []
    for spec in TABLE1_SITES:
        if wanted is None or spec.site_id in wanted:
            pages.append(build_page(spec))
    return pages


def build_test_page(same_domain: bool, n_images: int = 50,
                    image_bytes: int = 20_000) -> WebPage:
    """The §5.2 controlled test pages: main HTML + 50 images, no deps.

    ``same_domain=True`` puts every image on one domain (browser capped
    at 6 connections); ``False`` gives every image its own domain
    (browser opens up to 32 connections).  SPDY requests everything at
    once in both cases — Figure 7.
    """
    objects: Dict[str, WebObject] = {}
    main = WebObject(object_id="test/main", domain="testserver-d0.example",
                     path="/index.html", size=12_000, kind=KIND_HTML,
                     processing_delay=0.02)
    objects[main.object_id] = main
    for i in range(n_images):
        domain = ("testserver-d0.example" if same_domain
                  else f"testserver-d{i + 1}.example")
        oid = f"test/img{i}"
        objects[oid] = WebObject(object_id=oid, domain=domain,
                                 path=f"/img/{i}.jpg", size=image_bytes,
                                 kind=KIND_IMAGE)
        main.children.append(oid)
    label = "same-domain" if same_domain else "different-domains"
    return WebPage(100 if same_domain else 101, f"testpage-{label}",
                   "Test", objects, main.object_id)


def corpus_statistics(pages: List[WebPage]) -> List[dict]:
    """Per-page statistics in the shape of Table 1 (for the bench)."""
    rows = []
    for page in pages:
        counts = page.count_by_kind()
        rows.append({
            "site_id": page.site_id,
            "category": page.category,
            "total_objects": page.total_objects,
            "total_kb": page.total_bytes / 1024.0,
            "domains": len(page.domains),
            "text_objects": counts.get(KIND_HTML, 0) + counts.get(KIND_OTHER, 0),
            "js_css_objects": counts.get(KIND_JS, 0) + counts.get(KIND_CSS, 0),
            "image_objects": counts.get(KIND_IMAGE, 0),
            "max_depth": page.max_dependency_depth(),
        })
    return rows
