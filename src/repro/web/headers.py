"""HTTP header generation and SPDY header compression.

Header sizes matter to the comparison: HTTP/1.1 resends full plaintext
headers (cookies included) per request, while SPDY compresses each
header block with a *connection-lifetime* zlib context primed with the
SPDY dictionary — so the first request costs a few hundred bytes and
later ones a few dozen.  We build realistic header text and use the real
:mod:`zlib` so compression ratios are earned, not assumed.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

__all__ = ["build_request_headers", "build_response_headers",
           "SpdyHeaderCodec", "SPDY_DICTIONARY"]

# The SPDY/2 compression dictionary (abbreviated but representative: the
# real one is a concatenation of common header names/values like this).
SPDY_DICTIONARY = (
    b"optionsgetheadpostputdeletetraceacceptaccept-charsetaccept-encoding"
    b"accept-languageauthorizationexpectfromhostif-modified-sinceif-match"
    b"if-none-matchif-rangeif-unmodified-sincemax-forwardsproxy-authorization"
    b"rangerefererteuser-agent100101200201202203204205206300301302303304305"
    b"306307400401402403404405406407408409410411412413414415416417500501502"
    b"503504505accept-rangesageetaglocationproxy-authenticatepublicretry-after"
    b"servervarywarningwww-authenticateallowcontent-basecontent-encodingcache-"
    b"controlconnectiondatetrailertransfer-encodingupgradeviawarningcontent-"
    b"languagecontent-lengthcontent-locationcontent-md5content-rangecontent-"
    b"typeexpireslast-modifiedset-cookieMondayTuesdayWednesdayThursdayFriday"
    b"SaturdaySundayJanFebMarAprMayJunJulAugSepOctNovDecchunkedtext/html"
    b"image/pngimage/jpgimage/gifapplication/xmlapplication/xhtmltext/plain"
    b"publicmax-agecharset=iso-8859-1utf-8gzipdeflateHTTP/1.1statusversionurl"
)

_USER_AGENT = ("Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.11 "
               "(KHTML, like Gecko) Chrome/23.0.1271.97 Safari/537.11")


def _domain_hash(domain: str) -> int:
    """Process-stable 63-bit hash of a domain name.

    ``hash()`` is salted per process (PYTHONHASHSEED), which would make
    header byte counts — and hence every wire timing — differ between
    two runs of the same experiment.  Two crc32 passes give us enough
    stable bits.
    """
    lo = zlib.crc32(domain.encode())
    hi = zlib.crc32(domain.encode(), lo)
    return ((hi << 32) | lo) % (1 << 63)


def _cookie_for(domain: str) -> str:
    """Deterministic pseudo-cookie: session + tracking ids, realistic length."""
    h = _domain_hash(domain)
    return (f"sid={h:016x}{h >> 3:016x}; __utma={h % 10 ** 9}."
            f"{(h >> 7) % 10 ** 9}.{(h >> 11) % 10 ** 9}.1; "
            f"__utmz={(h >> 13) % 10 ** 9}.1.1.1.utmcsr=(direct); "
            f"pref=l={h % 997}&t={(h >> 5) % 9973}")


def build_request_headers(method: str, domain: str, path: str,
                          via_proxy: bool = True,
                          extra: Optional[Dict[str, str]] = None) -> bytes:
    """Serialize an HTTP/1.1 request head (what Chrome 23 would send)."""
    target = f"http://{domain}{path}" if via_proxy else path
    lines = [
        f"{method} {target} HTTP/1.1",
        f"Host: {domain}",
        "Connection: keep-alive",
        f"User-Agent: {_USER_AGENT}",
        "Accept: text/html,application/xhtml+xml,application/xml;q=0.9,"
        "*/*;q=0.8",
        "Accept-Encoding: gzip,deflate,sdch",
        "Accept-Language: en-US,en;q=0.8",
        "Accept-Charset: ISO-8859-1,utf-8;q=0.7,*;q=0.3",
        f"Cookie: {_cookie_for(domain)}",
    ]
    for key, value in (extra or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


def build_response_headers(status: int, content_type: str,
                           content_length: int, domain: str,
                           extra: Optional[Dict[str, str]] = None) -> bytes:
    """Serialize an HTTP/1.1 response head."""
    lines = [
        f"HTTP/1.1 {status} OK" if status == 200 else f"HTTP/1.1 {status}",
        "Server: Apache/2.2.22 (Unix)",
        "Date: Mon, 09 Dec 2013 08:00:00 GMT",
        f"Content-Type: {content_type}",
        f"Content-Length: {content_length}",
        "Cache-Control: private, max-age=0",
        "Expires: Mon, 09 Dec 2013 08:00:00 GMT",
        "Last-Modified: Sun, 08 Dec 2013 23:59:59 GMT",
        f"Set-Cookie: srv={_domain_hash(domain) % 97}; path=/",
        "Vary: Accept-Encoding",
        "Connection: keep-alive",
    ]
    for key, value in (extra or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


class SpdyHeaderCodec:
    """Per-SPDY-session zlib header compressor (shared context).

    One codec instance lives for the lifetime of a SPDY connection, so
    its dictionary adapts: the measured compressed size of the N-th
    header block reflects everything sent before it — the "header
    compression" advantage the SPDY whitepaper claims.
    """

    def __init__(self, level: int = 9):
        self._compress = zlib.compressobj(level, zlib.DEFLATED, 15, 8,
                                          zlib.Z_DEFAULT_STRATEGY,
                                          SPDY_DICTIONARY)
        self.blocks = 0
        self.raw_bytes = 0
        self.compressed_bytes = 0

    def compressed_size(self, raw: bytes) -> int:
        """Compressed size of ``raw`` in this session's context, in bytes."""
        data = self._compress.compress(raw)
        data += self._compress.flush(zlib.Z_SYNC_FLUSH)
        self.blocks += 1
        self.raw_bytes += len(raw)
        self.compressed_bytes += len(data)
        return max(1, len(data))

    @property
    def overall_ratio(self) -> float:
        """Compression ratio achieved so far (compressed / raw)."""
        if self.raw_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.raw_bytes
