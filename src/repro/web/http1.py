"""HTTP/1.1 message objects as exchanged over simulated TCP.

A request is one message; a response is two (head, then body) so the
receiver observes distinct first-byte and last-byte times — the "wait"
vs "receive" split of Figure 5.  Sizes are computed from real serialized
header text (see :mod:`repro.web.headers`); bodies are sized, not
materialised.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from .headers import build_request_headers, build_response_headers

__all__ = ["HttpRequest", "HttpResponseHead", "HttpResponseBody"]

_request_ids = itertools.count(1)


class HttpRequest:
    """A GET request for one object (or background transfer)."""

    __slots__ = ("request_id", "method", "domain", "path", "header_bytes",
                 "context", "server_delay", "response_bytes",
                 "content_type")

    def __init__(self, domain: str, path: str, method: str = "GET",
                 context: Any = None, via_proxy: bool = True,
                 server_delay: float = 0.0,
                 response_bytes: Optional[int] = None,
                 content_type: str = "text/html"):
        self.request_id = next(_request_ids)
        self.method = method
        self.domain = domain
        self.path = path
        self.header_bytes = len(build_request_headers(
            method, domain, path, via_proxy=via_proxy))
        self.context = context              # WebObject / background marker
        self.server_delay = server_delay    # long-poll hold at the origin
        self.response_bytes = response_bytes  # override for non-object fetches
        self.content_type = content_type

    @property
    def wire_size(self) -> int:
        return self.header_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HttpRequest #{self.request_id} {self.domain}{self.path}>"


class HttpResponseHead:
    """Status line + headers; its delivery is the response's first byte.

    ``push_hints`` carries the server's knowledge of associated
    resources (same-domain children of an HTML document) that a
    push-capable SPDY proxy may push without waiting for requests.
    """

    __slots__ = ("request", "status", "header_bytes", "content_length",
                 "push_hints")

    def __init__(self, request: HttpRequest, content_length: int,
                 status: int = 200,
                 content_type: str = "application/octet-stream",
                 push_hints=None):
        self.request = request
        self.status = status
        self.content_length = content_length
        self.push_hints = push_hints or []
        self.header_bytes = len(build_response_headers(
            status, content_type, content_length, request.domain))

    @property
    def wire_size(self) -> int:
        return self.header_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HttpResponseHead #{self.request.request_id} "
                f"{self.status} len={self.content_length}>")


class HttpResponseBody:
    """The entity body; its delivery is the response's last byte."""

    __slots__ = ("request", "length")

    def __init__(self, request: HttpRequest, length: int):
        self.request = request
        self.length = length

    @property
    def wire_size(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HttpResponseBody #{self.request.request_id} {self.length}B>"
