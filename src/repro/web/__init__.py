"""Web content and protocol models: pages, the Table 1 corpus, HTTP/1.1, SPDY."""

from .corpus import (SiteSpec, TABLE1_SITES, build_corpus, build_page,
                     build_test_page, corpus_statistics)
from .headers import SpdyHeaderCodec, build_request_headers, \
    build_response_headers
from .http1 import HttpRequest, HttpResponseBody, HttpResponseHead
from .resources import (BackgroundTransfer, KIND_CSS, KIND_HTML, KIND_IMAGE,
                        KIND_JS, KIND_OTHER, WebObject, WebPage)
from .spdy import (DEFAULT_DATA_FRAME_BYTES, SpdyDataFrame, SpdyPing,
                   SpdyStreamIds, SpdySynReply, SpdySynStream,
                   TlsHandshakeMessage)

__all__ = [
    "SiteSpec", "TABLE1_SITES", "build_corpus", "build_page",
    "build_test_page", "corpus_statistics", "SpdyHeaderCodec",
    "build_request_headers", "build_response_headers", "HttpRequest",
    "HttpResponseBody", "HttpResponseHead", "BackgroundTransfer", "KIND_CSS",
    "KIND_HTML", "KIND_IMAGE", "KIND_JS", "KIND_OTHER", "WebObject",
    "WebPage", "DEFAULT_DATA_FRAME_BYTES", "SpdyDataFrame", "SpdyPing",
    "SpdyStreamIds", "SpdySynReply", "SpdySynStream", "TlsHandshakeMessage",
]
