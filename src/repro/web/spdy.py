"""SPDY framing: streams, priorities, compressed headers, TLS setup.

We model the SPDY/2-era protocol the paper's proxy spoke:

* one SSL-encrypted TCP connection, multiplexing unlimited concurrent
  streams;
* ``SYN_STREAM`` / ``SYN_REPLY`` carry zlib-compressed header blocks
  (real compression against a session-lifetime context — see
  :class:`repro.web.headers.SpdyHeaderCodec`);
* ``DATA`` frames chunk response bodies so the sender can interleave
  streams by priority (Figure 1(d): objects 3 and 4 overtake 2 and 5);
* a short TLS handshake (2 round trips) when the session opens.

Frame objects carry their wire size; the 8-byte SPDY frame header and
a small TLS record overhead are included.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from .headers import SpdyHeaderCodec, build_request_headers, \
    build_response_headers

__all__ = ["SpdySynStream", "SpdySynReply", "SpdyDataFrame", "SpdyPing",
           "SpdyPushStream", "TlsHandshakeMessage", "SpdyStreamIds",
           "FRAME_HEADER_BYTES", "TLS_RECORD_OVERHEAD",
           "DEFAULT_DATA_FRAME_BYTES"]

FRAME_HEADER_BYTES = 8
#: Amortised TLS record overhead added to every frame (MAC + padding).
TLS_RECORD_OVERHEAD = 29
DEFAULT_DATA_FRAME_BYTES = 2800  # two MSS of payload per scheduling unit


class SpdyStreamIds:
    """Client-initiated stream ids: odd, monotonically increasing."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def next_id(self) -> int:
        return next(self._counter) * 2 - 1


class TlsHandshakeMessage:
    """One flight of the TLS handshake (sizes typical of RSA-2048 + resumption off)."""

    SIZES = {"client_hello": 300, "server_hello_cert": 3500,
             "client_finished": 350, "server_finished": 250}

    __slots__ = ("stage",)

    def __init__(self, stage: str):
        if stage not in self.SIZES:
            raise ValueError(f"unknown TLS stage {stage!r}")
        self.stage = stage

    @property
    def wire_size(self) -> int:
        return self.SIZES[self.stage]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TLS {self.stage}>"


class SpdySynStream:
    """Open a stream: compressed request headers + priority."""

    __slots__ = ("stream_id", "priority", "header_bytes", "context",
                 "server_delay", "response_bytes", "content_type", "domain",
                 "path")

    def __init__(self, stream_id: int, codec: SpdyHeaderCodec, domain: str,
                 path: str, priority: int = 0, context: Any = None,
                 server_delay: float = 0.0,
                 response_bytes: Optional[int] = None,
                 content_type: str = "text/html"):
        self.stream_id = stream_id
        self.priority = priority
        self.domain = domain
        self.path = path
        raw = build_request_headers("GET", domain, path, via_proxy=True)
        self.header_bytes = codec.compressed_size(raw)
        self.context = context
        self.server_delay = server_delay
        self.response_bytes = response_bytes
        self.content_type = content_type

    @property
    def wire_size(self) -> int:
        return (FRAME_HEADER_BYTES + 10 + self.header_bytes
                + TLS_RECORD_OVERHEAD)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SYN_STREAM #{self.stream_id} pri={self.priority} "
                f"{self.domain}{self.path}>")


class SpdySynReply:
    """Response headers for a stream (compressed in the server's context)."""

    __slots__ = ("stream_id", "header_bytes", "content_length")

    def __init__(self, stream_id: int, codec: SpdyHeaderCodec, domain: str,
                 content_length: int, content_type: str, status: int = 200):
        self.stream_id = stream_id
        self.content_length = content_length
        raw = build_response_headers(status, content_type, content_length,
                                     domain)
        self.header_bytes = codec.compressed_size(raw)

    @property
    def wire_size(self) -> int:
        return (FRAME_HEADER_BYTES + 6 + self.header_bytes
                + TLS_RECORD_OVERHEAD)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SYN_REPLY #{self.stream_id} len={self.content_length}>"


class SpdyDataFrame:
    """A chunk of response body; ``last`` carries the FIN flag."""

    __slots__ = ("stream_id", "length", "last")

    def __init__(self, stream_id: int, length: int, last: bool = False):
        if length <= 0:
            raise ValueError("data frame length must be positive")
        self.stream_id = stream_id
        self.length = length
        self.last = last

    @property
    def wire_size(self) -> int:
        return FRAME_HEADER_BYTES + self.length + TLS_RECORD_OVERHEAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fin = " FIN" if self.last else ""
        return f"<DATA #{self.stream_id} {self.length}B{fin}>"


class SpdyPushStream:
    """Server-initiated stream (SYN_STREAM with an associated stream id).

    SPDY allows the server to push resources it knows the client will
    need ("Server-initiated data exchange", §2.2 of the paper) — here,
    objects referenced by a page the proxy just relayed.
    """

    __slots__ = ("stream_id", "associated_stream_id", "header_bytes",
                 "context", "content_length", "domain", "path")

    def __init__(self, stream_id: int, associated_stream_id: int,
                 codec: SpdyHeaderCodec, domain: str, path: str,
                 content_length: int, context: Any = None):
        self.stream_id = stream_id
        self.associated_stream_id = associated_stream_id
        self.domain = domain
        self.path = path
        self.content_length = content_length
        self.context = context
        raw = build_response_headers(200, "application/octet-stream",
                                     content_length, domain,
                                     extra={"X-Associated-Content":
                                            f"https://{domain}{path}"})
        self.header_bytes = codec.compressed_size(raw)

    @property
    def wire_size(self) -> int:
        return (FRAME_HEADER_BYTES + 10 + self.header_bytes
                + TLS_RECORD_OVERHEAD)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PUSH #{self.stream_id} assoc={self.associated_stream_id} "
                f"{self.domain}{self.path}>")


class SpdyPing:
    """PING frame (used by the Figure 14 keepalive workload)."""

    __slots__ = ("ping_id",)

    def __init__(self, ping_id: int):
        self.ping_id = ping_id

    @property
    def wire_size(self) -> int:
        return FRAME_HEADER_BYTES + 4 + TLS_RECORD_OVERHEAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PING #{self.ping_id}>"
