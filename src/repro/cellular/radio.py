"""Radio links: network links gated by an RRC state machine.

A :class:`RadioLink` behaves like a normal :class:`~repro.net.link.Link`
except that serialization cannot begin until the shared RRC machine
grants the channel — which may involve a multi-second promotion — and
the rate/latency depend on the state the packet is served in (DCH vs
FACH on 3G).  Both directions of a device's access path share one
machine, so uplink requests wake the radio for downlink responses and
vice versa.

Critically for the paper's story, TCP's retransmission timers keep
running while packets sit in the promotion gate: the radio is invisible
to the transport layer.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..net.link import Link
from ..net.node import Host
from ..net.packet import Packet
from ..sim import Simulator
from .rrc import RrcStateMachine

__all__ = ["RadioLink", "AccessNetwork"]

RateMap = Union[float, Dict[str, float]]


def _resolve(mapping: RateMap, state: str) -> float:
    if isinstance(mapping, dict):
        try:
            return mapping[state]
        except KeyError:
            raise KeyError(f"no value configured for radio state {state!r}") from None
    return mapping


class RadioLink(Link):
    """One direction of a cellular access path."""

    def __init__(self, sim: Simulator, name: str, dst: Host,
                 machine: RrcStateMachine,
                 rate_by_state: RateMap,
                 latency_by_state: RateMap,
                 jitter: Optional[Callable] = None,
                 loss_rate: float = 0.0,
                 queue_limit_bytes: Optional[int] = 512 * 1024,
                 cell=None, direction: str = "down"):
        super().__init__(sim, name, dst, bandwidth_bps=None, latency=0.0,
                         jitter=jitter, loss_rate=loss_rate,
                         queue_limit_bytes=queue_limit_bytes)
        self.machine = machine
        self.rate_by_state = rate_by_state
        self.latency_by_state = latency_by_state
        self._serving_state = machine.state
        self.cell = cell
        self.direction = direction
        if cell is not None:
            cell.register(self, direction)

    # -- Link hooks ------------------------------------------------------
    def _gate_time(self, packet: Packet) -> float:
        pending = self.backlog_bytes + packet.size
        self._serving_state = self.machine.serving_state(pending)
        return self.machine.request_channel(pending)

    def _rate(self, packet: Packet) -> Optional[float]:
        state_rate = _resolve(self.rate_by_state, self._serving_state)
        if self.cell is not None:
            return self.cell.share_for(self, self.direction, state_rate)
        return state_rate

    def _latency_for(self, packet: Packet) -> float:
        return _resolve(self.latency_by_state, self._serving_state)

    def _finish_serialization(self, packet: Packet) -> None:
        super()._finish_serialization(packet)
        self.machine.touch()


class AccessNetwork:
    """The client's access path to the proxy: radio (or WiFi) both ways.

    For cellular profiles, builds two :class:`RadioLink` directions
    sharing one RRC machine.  For WiFi/broadband, builds plain links.
    The one-way latencies here include the core-network path from the
    radio access network to the proxy's cloud datacenter.
    """

    def __init__(self, sim: Simulator, client: Host, proxy: Host, profile,
                 cell=None):
        self.sim = sim
        self.profile = profile
        self.cell = cell
        self.machine: Optional[RrcStateMachine] = None
        if profile.machine_factory is not None:
            self.machine = profile.machine_factory(sim)
            self.downlink = RadioLink(
                sim, f"{profile.name}:down:{client.address}", client,
                self.machine,
                profile.downlink_bps, profile.latency_by_state,
                jitter=profile.jitter, loss_rate=profile.loss_rate,
                queue_limit_bytes=profile.queue_limit_bytes,
                cell=cell, direction="down")
            self.uplink = RadioLink(
                sim, f"{profile.name}:up:{client.address}", proxy,
                self.machine,
                profile.uplink_bps, profile.latency_by_state,
                jitter=profile.jitter, loss_rate=profile.loss_rate,
                queue_limit_bytes=profile.queue_limit_bytes,
                cell=cell, direction="up")
        else:
            self.downlink = Link(
                sim, f"{profile.name}:down", client,
                bandwidth_bps=profile.downlink_bps,
                latency=profile.latency_by_state,
                jitter=profile.jitter, loss_rate=profile.loss_rate,
                queue_limit_bytes=profile.queue_limit_bytes)
            self.uplink = Link(
                sim, f"{profile.name}:up", proxy,
                bandwidth_bps=profile.uplink_bps,
                latency=profile.latency_by_state,
                jitter=profile.jitter, loss_rate=profile.loss_rate,
                queue_limit_bytes=profile.queue_limit_bytes)
        # Client reaches everything (proxy, and origins in no-proxy setups)
        # through its access uplink; the proxy routes back via the downlink.
        client.set_default_route(self.uplink)
        proxy.add_route(client.address, self.downlink)
