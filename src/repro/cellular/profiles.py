"""Access-network profiles: 3G UMTS, LTE, and 802.11g/broadband.

Each profile bundles the RRC machine (if any), per-state rates and
one-way latencies (radio + core network to the proxy's datacenter),
jitter, loss and buffering.  The constants are chosen to land in the
ranges the paper reports:

* 3G: active-state RTTs around 150-250 ms ("high latencies — hundreds of
  milliseconds are not unheard of"), ~2 s idle→DCH promotion, a slow
  FACH channel; downlink throughput ~2 Mbps.
* LTE: "lower round-trip times compared to 3G, which has the
  corresponding effect of having much smaller RTO values"; 400 ms
  promotion.
* WiFi: the paper's control experiment — 802.11g behind a 15/2 Mbps
  residential broadband line, stable latency, no state machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Union

from ..sim import Simulator
from ..sim.distributions import bounded_lognormal
from .rrc import (LTE_CRX, LTE_IDLE, LTE_LDRX, LTE_SDRX, LteRrc,
                  LteRrcConfig, UMTS_DCH, UMTS_FACH, UMTS_IDLE, UmtsRrc,
                  UmtsRrcConfig)

__all__ = ["AccessProfile", "three_g_profile", "lte_profile", "wifi_profile",
           "PROFILES", "make_profile", "perturb_profile"]


@dataclass
class AccessProfile:
    """Everything :class:`~repro.cellular.radio.AccessNetwork` needs."""

    name: str
    machine_factory: Optional[Callable[[Simulator], object]]
    downlink_bps: Union[float, Dict[str, float]]
    uplink_bps: Union[float, Dict[str, float]]
    latency_by_state: Union[float, Dict[str, float]]
    jitter: Optional[Callable] = None
    loss_rate: float = 0.0
    queue_limit_bytes: int = 512 * 1024

    def with_overrides(self, **kwargs) -> "AccessProfile":
        return replace(self, **kwargs)


def _cellular_jitter(median: float, sigma: float, cap: float):
    """Heavy-tailed additive latency jitter (cellular air interface)."""

    def jitter(rng):
        return bounded_lognormal(rng, median=median, sigma=sigma,
                                 lo=0.0, hi=cap)

    return jitter


def three_g_profile(rrc_config: Optional[UmtsRrcConfig] = None,
                    loss_rate: float = 0.0003) -> AccessProfile:
    """The paper's primary test network: production 3G UMTS.

    One-way DCH latency of 80 ms plus ~10 ms of jitter median gives an
    active-state RTT just under 200 ms before serialization — matching
    the regime in which the proxy's RTO sits far below the 2 s promotion
    delay.
    """
    config = rrc_config or UmtsRrcConfig()
    return AccessProfile(
        name="3g",
        machine_factory=lambda sim: UmtsRrc(sim, config),
        downlink_bps={UMTS_DCH: 2.0e6, UMTS_FACH: 32e3, UMTS_IDLE: 32e3},
        uplink_bps={UMTS_DCH: 0.8e6, UMTS_FACH: 16e3, UMTS_IDLE: 16e3},
        latency_by_state={UMTS_DCH: 0.080, UMTS_FACH: 0.180,
                          UMTS_IDLE: 0.180},
        jitter=_cellular_jitter(median=0.010, sigma=0.8, cap=0.400),
        loss_rate=loss_rate,
        # Per-device RNC buffering: 3G networks were deep-buffered
        # (seconds of bufferbloat at DCH rate), so bursts queue rather
        # than drop and almost all retransmissions end up spurious, as
        # the paper observed ("all 442 retransmissions were in fact
        # spurious").
        queue_limit_bytes=640 * 1024,
    )


def lte_profile(rrc_config: Optional[LteRrcConfig] = None,
                loss_rate: float = 0.0002) -> AccessProfile:
    """LTE: faster radio, gentler (but still present) state machine."""
    config = rrc_config or LteRrcConfig()
    return AccessProfile(
        name="lte",
        machine_factory=lambda sim: LteRrc(sim, config),
        downlink_bps={LTE_CRX: 20e6, LTE_SDRX: 20e6, LTE_LDRX: 20e6,
                      LTE_IDLE: 20e6},
        uplink_bps={LTE_CRX: 8e6, LTE_SDRX: 8e6, LTE_LDRX: 8e6,
                    LTE_IDLE: 8e6},
        latency_by_state={LTE_CRX: 0.028, LTE_SDRX: 0.032, LTE_LDRX: 0.032,
                          LTE_IDLE: 0.032},
        jitter=_cellular_jitter(median=0.004, sigma=0.6, cap=0.120),
        loss_rate=loss_rate,
        queue_limit_bytes=1024 * 1024,
    )


def wifi_profile(loss_rate: float = 0.00002) -> AccessProfile:
    """802.11g + 15/2 Mbps residential broadband (the paper's §4.0.1 control).

    Residual loss is near zero: 802.11 link-layer retransmission hides
    radio loss from TCP, and the wired broadband segment is clean.
    """
    return AccessProfile(
        name="wifi",
        machine_factory=None,
        downlink_bps=15e6,
        uplink_bps=2e6,
        latency_by_state=0.020,
        jitter=_cellular_jitter(median=0.002, sigma=0.5, cap=0.040),
        loss_rate=loss_rate,
        queue_limit_bytes=256 * 1024,
    )


PROFILES: Dict[str, Callable[[], AccessProfile]] = {
    "3g": three_g_profile,
    "lte": lte_profile,
    "wifi": wifi_profile,
}


def make_profile(name: str) -> AccessProfile:
    """Profile factory by name ("3g", "lte", "wifi")."""
    try:
        factory = PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown access profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
    return factory()


def perturb_profile(profile: AccessProfile, rng,
                    variability: float = 0.25) -> AccessProfile:
    """Run-to-run environmental variation (signal strength, cell load).

    The paper ran for four months precisely because production cellular
    conditions vary night to night; each simulated run draws its own
    bandwidth/latency scaling so box plots get realistic whiskers.
    Rates scale by U(1-v, 1+v) and latencies by an independent
    U(1-v/2, 1+v) (congestion inflates delay more than it deflates it).
    """
    if variability <= 0:
        return profile

    rate_scale = rng.uniform(1.0 - variability, 1.0 + variability)
    lat_scale = rng.uniform(1.0 - variability / 2.0, 1.0 + variability)

    def scale(mapping, factor):
        if isinstance(mapping, dict):
            return {k: v * factor for k, v in mapping.items()}
        return mapping * factor

    return profile.with_overrides(
        downlink_bps=scale(profile.downlink_bps, rate_scale),
        uplink_bps=scale(profile.uplink_bps, rate_scale),
        latency_by_state=scale(profile.latency_by_state, lat_scale),
    )
