"""Shared cell capacity: multiple devices on one tower.

The paper's setup ran "experiments with multiple laptops simultaneously
accessing the test web sites to study the effect of multiple users
loading the network", and chose a tower with "sufficient backhaul
capacity" to mitigate it.  :class:`SharedCell` models the tower's
air-interface capacity being divided among the devices that are actively
transferring (an equal-share approximation of the proportional-fair
scheduler), so adding users degrades everyone's effective rate.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["SharedCell"]


class SharedCell:
    """A cell tower whose downlink/uplink capacity is shared.

    Radio links register themselves; at serialization time each asks for
    its current share.  A device counts as *active* while its link has
    backlog (queued or serializing bytes).  Each device's rate is
    additionally capped by its own radio-state ceiling (a device in FACH
    cannot use a DCH-sized share).
    """

    def __init__(self, downlink_capacity_bps: float,
                 uplink_capacity_bps: float):
        if downlink_capacity_bps <= 0 or uplink_capacity_bps <= 0:
            raise ValueError("cell capacities must be positive")
        self.downlink_capacity_bps = downlink_capacity_bps
        self.uplink_capacity_bps = uplink_capacity_bps
        self._links: Dict[str, List] = {"down": [], "up": []}

    def register(self, link, direction: str) -> None:
        """Attach a radio link ("down" or "up") to this cell."""
        if direction not in ("down", "up"):
            raise ValueError(f"direction must be 'down' or 'up', "
                             f"got {direction!r}")
        self._links[direction].append(link)

    def active_count(self, direction: str) -> int:
        """Devices with data in flight on this direction right now."""
        return sum(1 for link in self._links[direction]
                   if link.backlog_bytes > 0)

    def share_for(self, link, direction: str, state_rate: float) -> float:
        """The effective rate for ``link``: min(own ceiling, fair share)."""
        capacity = (self.downlink_capacity_bps if direction == "down"
                    else self.uplink_capacity_bps)
        # Count the requester as active even if its packet is the first.
        others = sum(1 for other in self._links[direction]
                     if other is not link and other.backlog_bytes > 0)
        share = capacity / (others + 1)
        return min(state_rate, share)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SharedCell {self.downlink_capacity_bps / 1e6:.1f}/"
                f"{self.uplink_capacity_bps / 1e6:.1f} Mbps "
                f"{len(self._links['down'])} devices>")
