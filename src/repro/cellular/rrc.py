"""Radio Resource Control (RRC) state machines for 3G UMTS and LTE.

These implement the state machines of the paper's Appendix A (Figure 18).
The device radio transitions between low-power states and an active,
high-bandwidth state; moving from idle to active incurs a *promotion
delay* during which no data flows — ~2 s on 3G, ~400 ms on LTE.  TCP's
retransmission timer, tuned to the active-state RTT, fires well inside
that window: the spurious retransmissions at the heart of the paper.

The machines are shared by both directions of a device's radio link:
uplink requests and downlink deliveries both count as activity for the
inactivity (demotion) timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..sim import Simulator, Timer

__all__ = [
    "UMTS_IDLE", "UMTS_FACH", "UMTS_DCH",
    "LTE_IDLE", "LTE_CRX", "LTE_SDRX", "LTE_LDRX",
    "UmtsRrcConfig", "LteRrcConfig", "UmtsRrc", "LteRrc", "RrcStateMachine",
]

# --- 3G UMTS states (Fig. 18 left) -------------------------------------
UMTS_IDLE = "IDLE"
UMTS_FACH = "CELL_FACH"
UMTS_DCH = "CELL_DCH"

# --- LTE states (Fig. 18 right) -----------------------------------------
LTE_IDLE = "RRC_IDLE"
LTE_CRX = "CONTINUOUS_RX"
LTE_SDRX = "SHORT_DRX"
LTE_LDRX = "LONG_DRX"


@dataclass
class UmtsRrcConfig:
    """3G UMTS timer/power constants, values from the paper's Appendix A.

    "The delay for this promotion is typically ~2 seconds. ... if a device
    is inactive for ~5 seconds, it is demoted from CELL_DCH to CELL_FACH.
    It is further demoted to IDLE if there is no data exchange for another
    ~12 secs."
    """

    idle_to_dch_delay: float = 2.0       # the promotion delay
    fach_to_dch_delay: float = 1.5       # queue-size-threshold promotion
    dch_to_fach_timeout: float = 5.0     # inactivity demotion
    fach_to_idle_timeout: float = 12.0   # further demotion
    fach_queue_threshold: int = 512      # bytes servable without promotion
    power_mw: dict = field(default_factory=lambda: {
        UMTS_IDLE: 0.0, UMTS_FACH: 460.0, UMTS_DCH: 800.0})


@dataclass
class LteRrcConfig:
    """LTE timer/power constants, values from the paper's Appendix A."""

    idle_to_crx_delay: float = 0.4       # RRC_IDLE -> CONNECTED ("~400 msec")
    sdrx_wake_delay: float = 0.02        # short-DRX cycle wake
    # In long DRX the UE still monitors the control channel once per DRX
    # cycle, so data waits at most a cycle or two (~150 ms), far less
    # than a full idle promotion.
    ldrx_wake_delay: float = 0.15
    crx_to_sdrx_timeout: float = 0.1     # inactivity: continuous -> short DRX
    sdrx_to_ldrx_timeout: float = 1.0    # short -> long DRX
    ldrx_to_idle_timeout: float = 11.5   # "~11.5 seconds" -> RRC_IDLE
    power_mw: dict = field(default_factory=lambda: {
        LTE_IDLE: 15.0, LTE_CRX: 1000.0, LTE_SDRX: 700.0, LTE_LDRX: 600.0})


class RrcStateMachine:
    """Common machinery: promotion gating, inactivity demotion, state log."""

    def __init__(self, sim: Simulator, name: str = "rrc"):
        self.sim = sim
        self.name = name
        self.state: str = self._initial_state()
        self.state_log: List[Tuple[float, str]] = [(sim.now, self.state)]
        self.promotions = 0
        self.demotions = 0
        self._promotion_target: Optional[str] = None
        self._promotion_done_at: Optional[float] = None
        self._promo_timer = Timer(sim, self._complete_promotion, name=f"{name}/promo")
        self._demote_timer = Timer(sim, self._demote, name=f"{name}/demote")
        self.on_state_change: Optional[Callable[[float, str, str], None]] = None
        self.handovers = 0
        self.sanitizer = None  # repro.sanity.Sanitizer when checks are on

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _initial_state(self) -> str:
        raise NotImplementedError

    def _active_state(self) -> str:
        raise NotImplementedError

    def _promotion_delay_from(self, state: str, pending_bytes: int) -> Optional[float]:
        """Delay to reach the active state, or None when ``state`` can serve."""
        raise NotImplementedError

    def _demotion_after(self, state: str) -> Optional[Tuple[float, str]]:
        """(inactivity timeout, next state) for ``state``, or None."""
        raise NotImplementedError

    def legal_transitions(self) -> Optional[frozenset]:
        """The machine's state graph as (old, new) pairs, or None.

        ``None`` disables graph checking (a custom machine without a
        declared graph); subclasses return the edges of Figure 18.
        """
        return None

    # ------------------------------------------------------------------
    # public interface used by the radio link
    # ------------------------------------------------------------------
    @property
    def promoting(self) -> bool:
        return self._promotion_done_at is not None

    def request_channel(self, pending_bytes: int) -> float:
        """Return the earliest absolute time data may be serialized.

        Starts a promotion if the radio is in a state that cannot serve
        ``pending_bytes``.  While a promotion is in progress, all callers
        share its completion time.
        """
        if self.promoting:
            return self._promotion_done_at
        delay = self._promotion_delay_from(self.state, pending_bytes)
        if delay is None:
            self.touch()
            return self.sim.now
        self._promotion_target = self._active_state()
        self._promotion_done_at = self.sim.now + delay
        self._demote_timer.stop()
        self._promo_timer.start(delay)
        self.promotions += 1
        return self._promotion_done_at

    def touch(self) -> None:
        """Record data activity: restart the inactivity/demotion timer."""
        if self.promoting:
            return
        demotion = self._demotion_after(self.state)
        if demotion is not None:
            timeout, _ = demotion
            self._demote_timer.start(timeout)

    def force_release(self) -> None:
        """Drop the radio straight back to the initial (idle) state.

        Models a cell handover / signalling release: any in-progress
        promotion is abandoned, inactivity timers stop, and the next
        ``request_channel`` pays a full idle promotion again.  Used by the
        fault injector; packets already granted a gate time are unaffected.
        """
        self._promo_timer.stop()
        self._demote_timer.stop()
        self._promotion_target = None
        self._promotion_done_at = None
        self._set_state(self._initial_state())
        self.handovers += 1

    def serving_state(self, pending_bytes: int) -> str:
        """State in which a request made *now* would be served."""
        if self.promoting:
            return self._promotion_target or self._active_state()
        if self._promotion_delay_from(self.state, pending_bytes) is None:
            return self.state
        return self._active_state()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _set_state(self, new_state: str) -> None:
        old = self.state
        if old == new_state:
            return
        self.state = new_state
        self.state_log.append((self.sim.now, new_state))
        if self.sanitizer is not None:
            self.sanitizer.emit("rrc.transition", self,
                                detail=f"{self.name} {old}->{new_state}",
                                old=old, new=new_state)
        if self.on_state_change is not None:
            self.on_state_change(self.sim.now, old, new_state)

    def _complete_promotion(self) -> None:
        target = self._promotion_target or self._active_state()
        self._promotion_target = None
        self._promotion_done_at = None
        self._set_state(target)
        self.touch()

    def _demote(self) -> None:
        demotion = self._demotion_after(self.state)
        if demotion is None:
            return
        _, next_state = demotion
        self._set_state(next_state)
        self.demotions += 1
        # Chain to the next demotion stage, if any.
        further = self._demotion_after(next_state)
        if further is not None:
            self._demote_timer.start(further[0])

    # ------------------------------------------------------------------
    def time_in_states(self, until: Optional[float] = None) -> dict:
        """Total seconds spent in each state up to ``until`` (default: now)."""
        end = self.sim.now if until is None else until
        totals: dict = {}
        for (t0, state), (t1, _) in zip(self.state_log,
                                        self.state_log[1:] + [(end, "")]):
            if t0 >= end:
                break
            totals[state] = totals.get(state, 0.0) + min(t1, end) - t0
        return totals


class UmtsRrc(RrcStateMachine):
    """The 3G state machine: IDLE <-> CELL_FACH <-> CELL_DCH."""

    def __init__(self, sim: Simulator, config: Optional[UmtsRrcConfig] = None,
                 name: str = "umts"):
        self.config = config or UmtsRrcConfig()
        super().__init__(sim, name)

    def _initial_state(self) -> str:
        return UMTS_IDLE

    def _active_state(self) -> str:
        return UMTS_DCH

    def _promotion_delay_from(self, state: str, pending_bytes: int) -> Optional[float]:
        if state == UMTS_DCH:
            return None
        if state == UMTS_FACH:
            if pending_bytes <= self.config.fach_queue_threshold:
                return None  # small transfers are served on the FACH
            return self.config.fach_to_dch_delay
        return self.config.idle_to_dch_delay

    def _demotion_after(self, state: str) -> Optional[Tuple[float, str]]:
        if state == UMTS_DCH:
            return (self.config.dch_to_fach_timeout, UMTS_FACH)
        if state == UMTS_FACH:
            return (self.config.fach_to_idle_timeout, UMTS_IDLE)
        return None

    def legal_transitions(self) -> Optional[frozenset]:
        # Promotions target CELL_DCH; demotions step DCH->FACH->IDLE; a
        # forced release (handover) drops any state straight to IDLE.
        return frozenset({
            (UMTS_IDLE, UMTS_DCH), (UMTS_FACH, UMTS_DCH),
            (UMTS_DCH, UMTS_FACH), (UMTS_FACH, UMTS_IDLE),
            (UMTS_DCH, UMTS_IDLE),
        })


class LteRrc(RrcStateMachine):
    """The LTE state machine: RRC_IDLE <-> RRC_CONNECTED {CRX, short/long DRX}."""

    def __init__(self, sim: Simulator, config: Optional[LteRrcConfig] = None,
                 name: str = "lte"):
        self.config = config or LteRrcConfig()
        super().__init__(sim, name)

    def _initial_state(self) -> str:
        return LTE_IDLE

    def _active_state(self) -> str:
        return LTE_CRX

    def _promotion_delay_from(self, state: str, pending_bytes: int) -> Optional[float]:
        if state == LTE_CRX:
            return None
        if state == LTE_SDRX:
            return self.config.sdrx_wake_delay
        if state == LTE_LDRX:
            return self.config.ldrx_wake_delay
        return self.config.idle_to_crx_delay

    def _demotion_after(self, state: str) -> Optional[Tuple[float, str]]:
        if state == LTE_CRX:
            return (self.config.crx_to_sdrx_timeout, LTE_SDRX)
        if state == LTE_SDRX:
            return (self.config.sdrx_to_ldrx_timeout, LTE_LDRX)
        if state == LTE_LDRX:
            return (self.config.ldrx_to_idle_timeout, LTE_IDLE)
        return None

    def legal_transitions(self) -> Optional[frozenset]:
        # Promotions (from idle or either DRX level) land in continuous
        # RX; demotions step CRX->short DRX->long DRX->IDLE; a forced
        # release drops any connected state straight to IDLE.
        return frozenset({
            (LTE_IDLE, LTE_CRX), (LTE_SDRX, LTE_CRX), (LTE_LDRX, LTE_CRX),
            (LTE_CRX, LTE_SDRX), (LTE_SDRX, LTE_LDRX), (LTE_LDRX, LTE_IDLE),
            (LTE_CRX, LTE_IDLE), (LTE_SDRX, LTE_IDLE),
        })
