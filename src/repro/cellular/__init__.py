"""Cellular access-network models: RRC state machines, radio links, energy.

The 3G/LTE machines implement the paper's Appendix A (Figure 18); the
profiles in :mod:`repro.cellular.profiles` bundle them with rates and
latencies matching the paper's measurement environment.
"""

from .power import RadioEnergyModel
from .profiles import (AccessProfile, PROFILES, lte_profile, make_profile,
                       three_g_profile, wifi_profile)
from .radio import AccessNetwork, RadioLink
from .rrc import (LTE_CRX, LTE_IDLE, LTE_LDRX, LTE_SDRX, LteRrc,
                  LteRrcConfig, RrcStateMachine, UMTS_DCH, UMTS_FACH,
                  UMTS_IDLE, UmtsRrc, UmtsRrcConfig)

__all__ = [
    "RadioEnergyModel", "AccessProfile", "PROFILES", "lte_profile",
    "make_profile", "three_g_profile", "wifi_profile", "AccessNetwork",
    "RadioLink", "LTE_CRX", "LTE_IDLE", "LTE_LDRX", "LTE_SDRX", "LteRrc",
    "LteRrcConfig", "RrcStateMachine", "UMTS_DCH", "UMTS_FACH", "UMTS_IDLE",
    "UmtsRrc", "UmtsRrcConfig",
]
