"""Radio energy accounting from the RRC state log.

The paper's Figure 14 discussion notes that pinning the radio in DCH
"wastes cellular resources and drains device battery"; this model
quantifies that trade-off, turning the state-residency log into consumed
energy using the per-state power draws of Figure 18.
"""

from __future__ import annotations

from typing import Dict, Optional

from .rrc import RrcStateMachine

__all__ = ["RadioEnergyModel"]


class RadioEnergyModel:
    """Integrates per-state power draw over the machine's state log."""

    def __init__(self, machine: RrcStateMachine, power_mw: Dict[str, float]):
        self.machine = machine
        self.power_mw = power_mw

    def energy_mj(self, until: Optional[float] = None) -> float:
        """Total radio energy in millijoules up to ``until`` (default: now)."""
        totals = self.machine.time_in_states(until)
        energy = 0.0
        for state, seconds in totals.items():
            energy += self.power_mw.get(state, 0.0) * seconds
        return energy

    def average_power_mw(self, until: Optional[float] = None) -> float:
        """Mean power draw over the observed interval."""
        totals = self.machine.time_in_states(until)
        duration = sum(totals.values())
        if duration <= 0:
            return 0.0
        return self.energy_mj(until) / duration

    def breakdown(self, until: Optional[float] = None) -> Dict[str, float]:
        """Energy per state in millijoules."""
        totals = self.machine.time_in_states(until)
        return {state: self.power_mw.get(state, 0.0) * seconds
                for state, seconds in totals.items()}
