"""Squid-style HTTP proxy: persistent connections, no pipelining.

Matches the paper's Squid 3.1 configuration: persistent connections to
both client and origin, one request outstanding per client connection
("we did not run experiments of HTTP with pipelining turned on"), and
store-and-forward relaying of each response (head, then body).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..sim import Simulator
from ..tcp import TcpStack
from ..web.http1 import HttpRequest, HttpResponseBody, HttpResponseHead
from .trace import ProxyTrace
from .upstream import UpstreamPool

__all__ = ["HttpProxy", "HTTP_PROXY_PORT"]

HTTP_PROXY_PORT = 8080


class HttpProxy:
    """The HTTP side of the paper's dual-proxy deployment."""

    def __init__(self, sim: Simulator, stack: TcpStack,
                 upstream: UpstreamPool, port: int = HTTP_PROXY_PORT,
                 trace: Optional[ProxyTrace] = None):
        self.sim = sim
        self.stack = stack
        self.upstream = upstream
        self.port = port
        self.trace = trace if trace is not None else ProxyTrace()
        self.requests_relayed = 0
        # Per client connection: FIFO of requests not yet dispatched
        # upstream, and whether one is currently being served.
        self._queues: Dict[object, Deque[HttpRequest]] = {}
        self._serving: Dict[object, bool] = {}
        stack.listen(port, self._on_accept)

    # ------------------------------------------------------------------
    def _on_accept(self, conn) -> None:
        self._queues[conn] = deque()
        self._serving[conn] = False
        conn.on_message = self._on_request
        conn.on_close = self._on_client_close

    def _on_client_close(self, conn) -> None:
        self._queues.pop(conn, None)
        self._serving.pop(conn, None)

    def _on_request(self, conn, message) -> None:
        if not isinstance(message, HttpRequest):
            return
        queue = self._queues.get(conn)
        if queue is None:
            return
        queue.append(message)
        self._serve_next(conn)

    def _serve_next(self, conn) -> None:
        queue = self._queues.get(conn)
        if queue is None or self._serving.get(conn) or not queue:
            return
        request = queue.popleft()
        self._serving[conn] = True
        record = self.trace.new_record("http", f"req{request.request_id}",
                                       request.domain, request.path,
                                       self.sim.now)
        record.is_long_poll = request.server_delay > 0

        def on_head(head: HttpResponseHead) -> None:
            record.t_origin_first_byte = self.sim.now

        def on_body(body: HttpResponseBody) -> None:
            record.t_origin_done = self.sim.now
            record.response_bytes = body.length
            self._relay(conn, request, body, record)

        self.upstream.fetch(request, on_head, on_body)

    def _relay(self, conn, request: HttpRequest, body: HttpResponseBody,
               record) -> None:
        if conn.state in ("CLOSED", "RESET"):
            return  # client connection died while the origin was fetching
        record.t_send_start = self.sim.now
        head = HttpResponseHead(request, content_length=body.length,
                                content_type=request.content_type)
        conn.send_message(head, head.wire_size)
        conn.send_message(body, body.length)

        def acked() -> None:
            record.t_client_acked = self.sim.now

        conn.notify_when_acked(acked)
        self.requests_relayed += 1
        self._serving[conn] = False
        self._serve_next(conn)
