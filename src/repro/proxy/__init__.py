"""The dual-proxy deployment: Squid-style HTTP proxy and SPDY proxy."""

from .http_proxy import HTTP_PROXY_PORT, HttpProxy
from .scheduler import PriorityScheduler, StreamOutput
from .spdy_proxy import SPDY_PROXY_PORT, SpdyProxy
from .trace import ProxyRequestRecord, ProxyTrace
from .upstream import UpstreamFetch, UpstreamPool

__all__ = ["HTTP_PROXY_PORT", "HttpProxy", "PriorityScheduler",
           "StreamOutput", "SPDY_PROXY_PORT", "SpdyProxy",
           "ProxyRequestRecord", "ProxyTrace", "UpstreamFetch",
           "UpstreamPool"]
