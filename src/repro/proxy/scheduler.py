"""Priority frame scheduler for SPDY responses.

The SPDY proxy must interleave many response streams onto one (or, for
the §6.1 experiment, several) client TCP connections.  The scheduler
holds per-stream frame queues, serves strictly by SPDY priority with
round-robin among equal priorities, and respects TCP backpressure: it
only commits a frame to a socket whose unsent buffer is below a
watermark, so high-priority frames are never stuck behind megabytes of
already-committed low-priority data.

With ``late_binding=True`` a frame may go out on *any* connection in
the group — the remedy sketched at the end of §6.1 ("late binding of
the response to an 'available' TCP connection").  The default (static)
mode pins every stream to the connection it arrived on, which is what
actual SPDY requires and why the paper found 20 connections alone did
not help.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..sim import Simulator

__all__ = ["StreamOutput", "PriorityScheduler"]


class StreamOutput:
    """Outbound frame queue for one stream."""

    def __init__(self, stream_id: int, priority: int, conn,
                 on_first_write: Optional[Callable[[], None]] = None,
                 on_last_write: Optional[Callable[[object], None]] = None):
        self.stream_id = stream_id
        self.priority = priority
        self.conn = conn                     # static-binding home connection
        self.frames: Deque = deque()
        self.finished_enqueueing = False
        self.started = False
        self.last_conn = None                # where the last frame went
        self.on_first_write = on_first_write
        self.on_last_write = on_last_write
        self._last_write_fired = False

    def maybe_fire_last_write(self) -> None:
        if (self._last_write_fired or not self.finished_enqueueing
                or self.pending or self.last_conn is None):
            return
        self._last_write_fired = True
        if self.on_last_write is not None:
            self.on_last_write(self.last_conn)

    @property
    def pending(self) -> bool:
        return bool(self.frames)


class PriorityScheduler:
    """Serves stream frames onto client connections by priority."""

    def __init__(self, sim: Simulator, late_binding: bool = False,
                 watermark: int = 16 * 1024):
        self.sim = sim
        self.late_binding = late_binding
        self.watermark = watermark
        self._conns: List = []
        self._streams: Dict[int, StreamOutput] = {}
        # Per-priority round-robin rings of stream ids with pending frames.
        self._rings: Dict[int, Deque[int]] = {}
        self.frames_sent = 0
        self.sanitizer = None  # repro.sanity.Sanitizer when checks are on

    # ------------------------------------------------------------------
    def add_connection(self, conn) -> None:
        conn.writable_watermark = self.watermark
        conn.on_writable = lambda c: self.pump()
        self._conns.append(conn)

    def remove_connection(self, conn) -> None:
        if conn in self._conns:
            self._conns.remove(conn)
        if not self.late_binding:
            # Static binding: streams homed on the dead connection can
            # never be served — drop them so their frames don't sit in
            # the rings forever (the client re-issues on a new session).
            dead = [sid for sid, s in self._streams.items() if s.conn is conn]
            for sid in dead:
                self._streams.pop(sid).frames.clear()
        if self.sanitizer is not None:
            self.sanitizer.emit("proxy.conn-removed", self,
                                detail=f"conn removed ({len(self._conns)} left)",
                                conn=conn)

    def open_stream(self, stream: StreamOutput) -> None:
        self._streams[stream.stream_id] = stream

    def enqueue(self, stream_id: int, frame, wire_size: int) -> None:
        """Queue one frame (with its wire size) for a stream."""
        stream = self._streams.get(stream_id)
        if stream is None:
            return  # stream's connection died; the response is discarded
        was_pending = stream.pending
        stream.frames.append((frame, wire_size))
        if not was_pending:
            ring = self._rings.setdefault(stream.priority, deque())
            ring.append(stream_id)
        self.pump()

    def finish_stream(self, stream_id: int) -> None:
        """Mark that no more frames will be enqueued for this stream."""
        stream = self._streams.get(stream_id)
        if stream is not None:
            stream.finished_enqueueing = True
            stream.maybe_fire_last_write()

    # ------------------------------------------------------------------
    def _writable_conn(self, stream: StreamOutput):
        """Pick the connection this stream's next frame should use."""
        if not self.late_binding:
            conn = stream.conn
            if (conn.state == "ESTABLISHED"
                    and conn.unsent_bytes < self.watermark):
                return conn
            return None
        candidates = [c for c in self._conns
                      if c.state == "ESTABLISHED"
                      and c.unsent_bytes < self.watermark]
        if not candidates:
            return None
        return min(candidates, key=lambda c: (c.unsent_bytes,
                                              c.inflight_bytes))

    def pump(self) -> None:
        """Send frames while priority queues and socket budgets allow."""
        progress = True
        while progress:
            progress = False
            for priority in sorted(self._rings):
                ring = self._rings[priority]
                for _ in range(len(ring)):
                    stream_id = ring[0]
                    stream = self._streams.get(stream_id)
                    if stream is None or not stream.pending:
                        ring.popleft()
                        continue
                    conn = self._writable_conn(stream)
                    if conn is None:
                        ring.rotate(-1)
                        continue
                    frame, wire_size = stream.frames.popleft()
                    conn.send_message(frame, wire_size)
                    self.frames_sent += 1
                    if self.sanitizer is not None:
                        self.sanitizer.emit("proxy.frame", self,
                                            detail=f"stream{stream_id}",
                                            stream=stream, conn=conn)
                    progress = True
                    stream.last_conn = conn
                    if not stream.started:
                        stream.started = True
                        if stream.on_first_write is not None:
                            stream.on_first_write()
                    stream.maybe_fire_last_write()
                    ring.rotate(-1)
                    break  # restart from the highest priority
                if progress:
                    break
        self._gc_rings()

    def _gc_rings(self) -> None:
        for priority in list(self._rings):
            ring = self._rings[priority]
            while ring and (ring[0] not in self._streams
                            or not self._streams[ring[0]].pending):
                ring.popleft()
            if not ring:
                del self._rings[priority]

    # ------------------------------------------------------------------
    @property
    def backlog_frames(self) -> int:
        return sum(len(s.frames) for s in self._streams.values())
