"""The SPDY proxy: one SSL connection per client, multiplexed streams.

Mirrors the Chromium-tree SPDY proxy the paper deployed: the browser
opens a single SSL-encrypted TCP connection and reuses it for every
website; the proxy fetches objects from origins over persistent HTTP
and schedules response frames back by stream priority.

The proxy also implements the two §6.1 variants:

* multiple sessions per client (the browser side opens N connections,
  PAC-file style) with **static** stream→connection binding — the
  configuration the paper measured and found wanting;
* ``late_binding=True`` — responses may return on any available
  connection of the client's group, the fix the paper advocates.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Simulator
from ..tcp import TcpStack
from ..web.headers import SpdyHeaderCodec
from ..web.http1 import HttpRequest, HttpResponseBody, HttpResponseHead
from ..web.spdy import (DEFAULT_DATA_FRAME_BYTES, SpdyDataFrame, SpdyPing,
                        SpdySynReply, SpdySynStream, TlsHandshakeMessage)
from .scheduler import PriorityScheduler, StreamOutput
from .trace import ProxyTrace
from .upstream import UpstreamPool

__all__ = ["SpdyProxy", "SPDY_PROXY_PORT"]

SPDY_PROXY_PORT = 8443


class _ClientGroup:
    """All SPDY sessions belonging to one client device."""

    def __init__(self, sim: Simulator, late_binding: bool):
        self.scheduler = PriorityScheduler(sim, late_binding=late_binding)
        self.tx_codec = SpdyHeaderCodec()
        self.pushed_keys: set = set()      # object ids already pushed
        self.next_push_id = 2              # server streams are even
        self.default_conn = None           # home conn for push streams


class SpdyProxy:
    """Server side of the SPDY deployment."""

    def __init__(self, sim: Simulator, stack: TcpStack,
                 upstream: UpstreamPool, port: int = SPDY_PROXY_PORT,
                 trace: Optional[ProxyTrace] = None,
                 late_binding: bool = False,
                 server_push: bool = False,
                 data_frame_bytes: int = DEFAULT_DATA_FRAME_BYTES):
        self.sim = sim
        self.stack = stack
        self.upstream = upstream
        self.port = port
        self.trace = trace if trace is not None else ProxyTrace()
        self.late_binding = late_binding
        self.server_push = server_push
        self.data_frame_bytes = data_frame_bytes
        self.streams_served = 0
        self.streams_pushed = 0
        self._groups: Dict[str, _ClientGroup] = {}
        self._tls_state: Dict[object, str] = {}
        self.sanitizer = None  # repro.sanity.Sanitizer when checks are on
        stack.listen(port, self._on_accept)

    # ------------------------------------------------------------------
    def _group_for(self, client_addr: str) -> _ClientGroup:
        group = self._groups.get(client_addr)
        if group is None:
            group = _ClientGroup(self.sim, self.late_binding)
            group.scheduler.sanitizer = self.sanitizer
            self._groups[client_addr] = group
        return group

    def _on_accept(self, conn) -> None:
        self._tls_state[conn] = "expect_hello"
        conn.on_message = self._on_message
        conn.on_close = self._on_close

    def _on_close(self, conn) -> None:
        self._tls_state.pop(conn, None)
        group = self._groups.get(conn.remote_addr)
        if group is not None:
            group.scheduler.remove_connection(conn)

    # ------------------------------------------------------------------
    def _on_message(self, conn, message) -> None:
        if isinstance(message, TlsHandshakeMessage):
            self._handle_tls(conn, message)
        elif isinstance(message, SpdySynStream):
            self._handle_syn_stream(conn, message)
        elif isinstance(message, SpdyPing):
            # PINGs are echoed immediately, bypassing the scheduler.
            conn.send_message(message, message.wire_size)

    def _handle_tls(self, conn, message: TlsHandshakeMessage) -> None:
        state = self._tls_state.get(conn)
        if state == "expect_hello" and message.stage == "client_hello":
            reply = TlsHandshakeMessage("server_hello_cert")
            conn.send_message(reply, reply.wire_size)
            self._tls_state[conn] = "expect_finished"
        elif state == "expect_finished" and message.stage == "client_finished":
            reply = TlsHandshakeMessage("server_finished")
            conn.send_message(reply, reply.wire_size)
            self._tls_state[conn] = "ready"
            group = self._group_for(conn.remote_addr)
            group.scheduler.add_connection(conn)

    def _handle_syn_stream(self, conn, syn: SpdySynStream) -> None:
        if self._tls_state.get(conn) != "ready":
            return  # protocol violation; real proxy would RST the stream
        group = self._group_for(conn.remote_addr)
        record = self.trace.new_record("spdy", f"stream{syn.stream_id}",
                                       syn.domain, syn.path, self.sim.now)
        record.is_long_poll = syn.server_delay > 0
        stream = StreamOutput(
            syn.stream_id, syn.priority, conn,
            on_first_write=lambda: setattr(record, "t_send_start",
                                           self.sim.now),
            on_last_write=lambda c: c.notify_when_acked(
                lambda: setattr(record, "t_client_acked", self.sim.now)))
        group.scheduler.open_stream(stream)

        request = HttpRequest(syn.domain, syn.path, context=syn.context,
                              via_proxy=False, server_delay=syn.server_delay,
                              response_bytes=syn.response_bytes,
                              content_type=syn.content_type)

        group.default_conn = conn

        def on_head(head: HttpResponseHead) -> None:
            record.t_origin_first_byte = self.sim.now
            if self.server_push and head.push_hints:
                self._push_associated(group, conn, syn.stream_id,
                                      head.push_hints)

        def on_body(body: HttpResponseBody) -> None:
            record.t_origin_done = self.sim.now
            record.response_bytes = body.length
            self._enqueue_response(group, syn, body.length)

        self.upstream.fetch(request, on_head, on_body)

    # ------------------------------------------------------------------
    # server push (§2.2: "Server-initiated data exchange")
    # ------------------------------------------------------------------
    def _push_associated(self, group: _ClientGroup, conn,
                         assoc_stream_id: int, hints) -> None:
        from ..web.spdy import SpdyPushStream

        for obj in hints:
            key = getattr(obj, "object_id", None)
            if key is None or key in group.pushed_keys:
                continue
            group.pushed_keys.add(key)
            push_id = group.next_push_id
            group.next_push_id += 2
            request = HttpRequest(obj.domain, obj.path, context=obj,
                                  via_proxy=False,
                                  content_type=obj.content_type)

            def on_body(body: HttpResponseBody, _obj=obj,
                        _push_id=push_id) -> None:
                push = SpdyPushStream(_push_id, assoc_stream_id,
                                      group.tx_codec, _obj.domain,
                                      _obj.path, body.length, context=_obj)
                stream = StreamOutput(_push_id, priority=4, conn=conn)
                group.scheduler.open_stream(stream)
                group.scheduler.enqueue(_push_id, push, push.wire_size)
                remaining = body.length
                while remaining > 0:
                    chunk = min(self.data_frame_bytes, remaining)
                    remaining -= chunk
                    frame = SpdyDataFrame(_push_id, chunk,
                                          last=(remaining == 0))
                    group.scheduler.enqueue(_push_id, frame, frame.wire_size)
                group.scheduler.finish_stream(_push_id)
                group.scheduler.pump()
                self.streams_pushed += 1

            self.upstream.fetch(request, lambda head: None, on_body)

    def _enqueue_response(self, group: _ClientGroup, syn: SpdySynStream,
                          body_bytes: int) -> None:
        reply = SpdySynReply(syn.stream_id, group.tx_codec, syn.domain,
                             body_bytes, syn.content_type)
        group.scheduler.enqueue(syn.stream_id, reply, reply.wire_size)
        remaining = body_bytes
        while remaining > 0:
            chunk = min(self.data_frame_bytes, remaining)
            remaining -= chunk
            frame = SpdyDataFrame(syn.stream_id, chunk, last=(remaining == 0))
            group.scheduler.enqueue(syn.stream_id, frame, frame.wire_size)
        group.scheduler.finish_stream(syn.stream_id)
        group.scheduler.pump()
        self.streams_served += 1
