"""Proxy-side request instrumentation (the data behind Figure 8).

For every object relayed, the proxy records when the client's request
arrived, when the first byte came back from the origin, when the origin
download finished, when the proxy started writing to the client, and
when the client ACKed the last byte — the black/cyan/red regions of
Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["ProxyRequestRecord", "ProxyTrace"]


@dataclass
class ProxyRequestRecord:
    """Lifecycle timestamps for one relayed request."""

    protocol: str                     # "http" | "spdy"
    key: str                          # request id / stream id
    domain: str
    path: str
    order: int                        # arrival order at the proxy
    t_client_request: float
    t_origin_first_byte: Optional[float] = None
    t_origin_done: Optional[float] = None
    t_send_start: Optional[float] = None
    t_client_acked: Optional[float] = None
    response_bytes: int = 0
    #: Long-polls (server holds the request) are excluded from the
    #: Figure 8 origin-wait statistics — the wait is intentional.
    is_long_poll: bool = False

    @property
    def origin_wait(self) -> Optional[float]:
        """Black region: request at proxy -> first byte from origin."""
        if self.t_origin_first_byte is None:
            return None
        return self.t_origin_first_byte - self.t_client_request

    @property
    def origin_download(self) -> Optional[float]:
        """Cyan region: first byte -> last byte from origin."""
        if self.t_origin_done is None or self.t_origin_first_byte is None:
            return None
        return self.t_origin_done - self.t_origin_first_byte

    @property
    def queueing_delay(self) -> Optional[float]:
        """Data ready at proxy -> proxy starts sending to the client."""
        if self.t_send_start is None or self.t_origin_done is None:
            return None
        return self.t_send_start - self.t_origin_done

    @property
    def client_transfer(self) -> Optional[float]:
        """Red region: proxy starts sending -> client ACKs the last byte."""
        if self.t_client_acked is None or self.t_send_start is None:
            return None
        return self.t_client_acked - self.t_send_start

    @property
    def complete(self) -> bool:
        return self.t_client_acked is not None


class ProxyTrace:
    """Collects :class:`ProxyRequestRecord` across a run."""

    def __init__(self) -> None:
        self.records: List[ProxyRequestRecord] = []
        self._order = 0

    def new_record(self, protocol: str, key: str, domain: str, path: str,
                   now: float) -> ProxyRequestRecord:
        record = ProxyRequestRecord(protocol=protocol, key=key, domain=domain,
                                    path=path, order=self._order,
                                    t_client_request=now)
        self._order += 1
        self.records.append(record)
        return record

    def completed(self) -> List[ProxyRequestRecord]:
        return [r for r in self.records if r.complete]

    def page_records(self) -> List[ProxyRequestRecord]:
        """Records for page objects (long-polls excluded)."""
        return [r for r in self.records if not r.is_long_poll]

    def mean_origin_wait(self) -> float:
        waits = [r.origin_wait for r in self.page_records()
                 if r.origin_wait is not None]
        return sum(waits) / len(waits) if waits else 0.0

    def mean_origin_download(self) -> float:
        downloads = [r.origin_download for r in self.page_records()
                     if r.origin_download is not None]
        return sum(downloads) / len(downloads) if downloads else 0.0
