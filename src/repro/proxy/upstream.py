"""Persistent upstream connection pool: proxy -> origin servers.

Both proxies (Squid-style HTTP and the SPDY proxy) "use persistent HTTP
to connect to the different web servers and fetch requested objects".
The pool keeps up to ``max_per_domain`` connections per origin, reuses
idle ones, and queues requests beyond the cap.  Each request is
exclusive on its connection until the response body completes, so
responses never interleave.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from ..sim import Simulator
from ..tcp import TcpStack
from ..web.http1 import HttpRequest, HttpResponseBody, HttpResponseHead

__all__ = ["UpstreamPool", "UpstreamFetch"]


@dataclass
class UpstreamFetch:
    """One in-flight origin fetch with its relay callbacks and timestamps."""

    request: HttpRequest
    on_head: Callable[[HttpResponseHead], None]
    on_body: Callable[[HttpResponseBody], None]
    queued_at: float = 0.0
    sent_at: Optional[float] = None
    head_at: Optional[float] = None
    body_at: Optional[float] = None


class _DomainPool:
    """Connections and waiters for a single origin domain."""

    def __init__(self) -> None:
        self.free: List = []
        self.busy: Dict = {}          # conn -> UpstreamFetch
        self.opening: int = 0
        self.queue: Deque[UpstreamFetch] = deque()


class UpstreamPool:
    """Origin-side connection management for a proxy."""

    def __init__(self, sim: Simulator, stack: TcpStack, farm,
                 max_per_domain: int = 24):
        self.sim = sim
        self.stack = stack
        self.farm = farm
        self.max_per_domain = max_per_domain
        self._domains: Dict[str, _DomainPool] = {}
        self.fetches_started = 0
        self.fetches_completed = 0

    # ------------------------------------------------------------------
    def fetch(self, request: HttpRequest,
              on_head: Callable[[HttpResponseHead], None],
              on_body: Callable[[HttpResponseBody], None]) -> UpstreamFetch:
        """Fetch ``request`` from its origin, relaying head/body callbacks."""
        job = UpstreamFetch(request, on_head, on_body, queued_at=self.sim.now)
        pool = self._domains.setdefault(request.domain, _DomainPool())
        pool.queue.append(job)
        self.fetches_started += 1
        self._pump(request.domain)
        return job

    # ------------------------------------------------------------------
    def _pump(self, domain: str) -> None:
        pool = self._domains[domain]
        while pool.queue and pool.free:
            conn = pool.free.pop()
            if conn.state != "ESTABLISHED":
                continue  # died while idle
            self._dispatch(conn, pool, pool.queue.popleft())
        while (pool.opening < len(pool.queue)
               and len(pool.busy) + pool.opening < self.max_per_domain):
            pool.opening += 1
            self._open_connection(domain)

    def _open_connection(self, domain: str) -> None:
        self.farm.ensure_origin(domain)
        conn = self.stack.connect(domain, 80)
        pool = self._domains[domain]

        def established(c):
            pool.opening -= 1
            if pool.queue:
                self._dispatch(c, pool, pool.queue.popleft())
            else:
                pool.free.append(c)

        conn.on_established = established
        conn.on_message = lambda c, msg: self._on_message(domain, c, msg)
        conn.on_close = lambda c: self._on_conn_closed(domain, c)

    def _dispatch(self, conn, pool: _DomainPool, job: UpstreamFetch) -> None:
        pool.busy[conn] = job
        job.sent_at = self.sim.now
        conn.send_message(job.request, job.request.wire_size)

    def _on_message(self, domain: str, conn, message) -> None:
        pool = self._domains[domain]
        job = pool.busy.get(conn)
        if job is None:
            return
        if isinstance(message, HttpResponseHead):
            job.head_at = self.sim.now
            job.on_head(message)
        elif isinstance(message, HttpResponseBody):
            job.body_at = self.sim.now
            del pool.busy[conn]
            pool.free.append(conn)
            self.fetches_completed += 1
            job.on_body(message)
            self._pump(domain)

    def _on_conn_closed(self, domain: str, conn) -> None:
        pool = self._domains.get(domain)
        if pool is None:
            return
        if conn in pool.free:
            pool.free.remove(conn)
        job = pool.busy.pop(conn, None)
        if job is not None:
            # Re-queue the orphaned request on a fresh connection.
            pool.queue.appendleft(job)
            self._pump(domain)

    # ------------------------------------------------------------------
    def open_connection_count(self) -> int:
        return sum(len(p.free) + len(p.busy) for p in self._domains.values())
