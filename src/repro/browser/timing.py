"""Per-object and per-page timing records (Chrome remote-debugging stand-in).

The paper instruments Chrome over the remote debugging interface to get,
for every object, the four components of Figure 5:

* **init** — the browser knows it needs the object → the request is
  written to a socket (includes waiting for a free connection and any
  TCP/TLS handshake);
* **send** — writing the request → its bytes are on the wire;
* **wait** — request sent → first byte of the response;
* **receive** — first byte → last byte.

Page load time (the paper's headline metric) is the time to the
``onLoad`` event: every discovered object downloaded *and* processed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["ObjectTiming", "PageLoadRecord"]


@dataclass
class ObjectTiming:
    """Lifecycle timestamps for one fetched object."""

    key: str
    kind: str
    size: int
    domain: str
    discovered_at: float
    write_start_at: Optional[float] = None
    sent_at: Optional[float] = None
    first_byte_at: Optional[float] = None
    complete_at: Optional[float] = None
    processed_at: Optional[float] = None
    attempts: int = 1       # fetch attempts (>1 after watchdog retries)

    # ------------------------------------------------------------------
    @property
    def init(self) -> Optional[float]:
        if self.write_start_at is None:
            return None
        return self.write_start_at - self.discovered_at

    @property
    def send(self) -> Optional[float]:
        if self.sent_at is None or self.write_start_at is None:
            return None
        return self.sent_at - self.write_start_at

    @property
    def wait(self) -> Optional[float]:
        if self.first_byte_at is None or self.sent_at is None:
            return None
        return self.first_byte_at - self.sent_at

    @property
    def receive(self) -> Optional[float]:
        if self.complete_at is None or self.first_byte_at is None:
            return None
        return self.complete_at - self.first_byte_at

    @property
    def total(self) -> Optional[float]:
        if self.complete_at is None:
            return None
        return self.complete_at - self.discovered_at

    @property
    def complete(self) -> bool:
        return self.complete_at is not None


@dataclass
class PageLoadRecord:
    """One page visit: onLoad timing plus every object's breakdown."""

    site_id: int
    page_name: str
    protocol: str
    started_at: float
    onload_at: Optional[float] = None
    timed_out: bool = False
    retries: int = 0        # watchdog-driven object re-fetches
    objects: List[ObjectTiming] = field(default_factory=list)
    background: List[ObjectTiming] = field(default_factory=list)

    @property
    def plt(self) -> Optional[float]:
        """Page load time in seconds (None if the load never finished)."""
        if self.onload_at is None:
            return None
        return self.onload_at - self.started_at

    def plt_or(self, cap: float) -> float:
        """PLT, or ``cap`` for loads that timed out (box-plot friendly)."""
        return self.plt if self.plt is not None else cap

    def request_times(self) -> List[float]:
        """Request-issue times relative to load start (Figure 6 data)."""
        return sorted(t.write_start_at - self.started_at
                      for t in self.objects if t.write_start_at is not None)

    def mean_component(self, component: str) -> float:
        """Average of one Figure 5 component over completed objects."""
        values = [getattr(t, component) for t in self.objects
                  if getattr(t, component) is not None]
        return sum(values) / len(values) if values else 0.0
