"""The page-load engine: discovery, processing, onLoad, background activity.

Replicates the browser behaviours the paper identifies as load-bearing:

* objects are discovered only when their parent (HTML/JS/CSS) has been
  downloaded **and processed** — producing SPDY's stepped request
  pattern (Figure 6);
* scripts and stylesheets are processed *sequentially* on one main
  thread ("browsers process some of these files sequentially as these
  can change the layout of the page");
* per-object init/send/wait/receive instrumentation (Figure 5);
* after onLoad, the page's background activity (beacons, long-polls)
  keeps trickling during think time — the trigger for the idle-radio
  pathologies of Figures 11-12.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from ..sim import Simulator, Timer
from ..web.resources import WebObject, WebPage
from .fetchers import FetchTask
from .timing import ObjectTiming, PageLoadRecord

__all__ = ["Browser", "BrowserConfig"]


class BrowserConfig:
    """Knobs for the page-load engine."""

    def __init__(self, load_timeout: float = 55.0,
                 background_enabled: bool = True,
                 discovery_stagger: float = 0.008,
                 stall_timeout: Optional[float] = None,
                 max_retries: int = 3,
                 retry_backoff_base: float = 0.5,
                 retry_backoff_cap: float = 8.0):
        self.load_timeout = load_timeout
        self.background_enabled = background_enabled
        #: Documents are tokenized incrementally: each object reference in
        #: a parsed file is discovered this many seconds after the
        #: previous one, so a 60-object first wave spreads over ~0.5 s
        #: instead of issuing one synchronized burst.
        self.discovery_stagger = discovery_stagger
        #: Per-object stall watchdog: when an issued fetch makes no
        #: completion progress for this long, the browser cancels it and
        #: retries with capped exponential backoff.  ``None`` (default)
        #: disables the watchdog, keeping fault-free runs byte-identical.
        self.stall_timeout = stall_timeout
        self.max_retries = max_retries
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap


class Browser:
    """Loads one page at a time through a protocol fetcher."""

    def __init__(self, sim: Simulator, fetcher,
                 config: Optional[BrowserConfig] = None):
        self.sim = sim
        self.fetcher = fetcher
        self.config = config or BrowserConfig()
        self.records: List[PageLoadRecord] = []
        # current-load state
        self._page: Optional[WebPage] = None
        self._record: Optional[PageLoadRecord] = None
        self._timings: Dict[str, ObjectTiming] = {}
        self._outstanding: Set[str] = set()
        self._discovered: Set[str] = set()
        self._process_queue: Deque[str] = deque()
        self._processing = False
        self._on_load: Optional[Callable[[PageLoadRecord], None]] = None
        self._timeout_timer = Timer(sim, self._on_timeout, name="page-timeout")
        self._background_events: list = []
        self._load_epoch = 0
        self._watchdogs: Dict[str, Timer] = {}
        self.sanitizer: Optional[Any] = None  # repro.sanity.Sanitizer when checks are on

    # ------------------------------------------------------------------
    def load_page(self, page: WebPage,
                  on_load: Optional[Callable[[PageLoadRecord], None]] = None
                  ) -> PageLoadRecord:
        """Begin loading ``page``; returns its (live) record immediately."""
        self._abandon_current_load()
        self._load_epoch += 1
        self._page = page
        self._record = PageLoadRecord(site_id=page.site_id,
                                      page_name=page.name,
                                      protocol=self.fetcher.name,
                                      started_at=self.sim.now)
        self.records.append(self._record)
        self._timings = {}
        self._outstanding = set()
        self._discovered = set()
        self._process_queue = deque()
        self._processing = False
        self._on_load = on_load
        self._timeout_timer.start(self.config.load_timeout)
        self._discover(page.main_id)
        return self._record

    def _abandon_current_load(self) -> None:
        """Navigating away: cancel timers and pending background activity."""
        self._timeout_timer.stop()
        self._stop_watchdogs()
        for event in self._background_events:
            event.cancel()
        self._background_events = []
        self._page = None

    def _stop_watchdogs(self) -> None:
        for timer in self._watchdogs.values():
            timer.stop()
        self._watchdogs.clear()

    # ------------------------------------------------------------------
    # discovery & fetching
    # ------------------------------------------------------------------
    def _discover(self, object_id: str) -> None:
        if object_id in self._discovered or self._page is None:
            return
        self._discovered.add(object_id)
        self._outstanding.add(object_id)
        self._discover_now(object_id)

    def _discover_staggered(self, children) -> None:
        """Reveal a parsed object's references with tokenization spacing."""
        delay = 0.0
        epoch = self._load_epoch
        for child in children:
            if child in self._discovered:
                continue
            self._discovered.add(child)
            self._outstanding.add(child)
            if delay <= 0:
                self._discover_now(child)
            else:
                self.sim.schedule(delay, self._discover_at_epoch, epoch, child)
            delay += self.config.discovery_stagger

    def _discover_at_epoch(self, epoch: int, object_id: str) -> None:
        if epoch != self._load_epoch or self._page is None:
            return
        self._discover_now(object_id)

    def _discover_now(self, object_id: str) -> None:
        obj = self._page.objects[object_id]
        if self._consume_push(object_id, obj):
            return
        timing = ObjectTiming(key=object_id, kind=obj.kind, size=obj.size,
                              domain=obj.domain, discovered_at=self.sim.now)
        self._timings[object_id] = timing
        self._record.objects.append(timing)
        self._issue_fetch(object_id, timing)

    def _issue_fetch(self, object_id: str, timing: ObjectTiming) -> None:
        obj = self._page.objects[object_id]
        epoch = self._load_epoch
        task = FetchTask(
            key=object_id, domain=obj.domain, path=obj.path,
            priority=obj.priority, context=obj,
            content_type=obj.content_type,
            on_write_start=lambda t: self._stamp(epoch, timing,
                                                 "write_start_at", t),
            on_sent=lambda t: self._stamp(epoch, timing, "sent_at", t),
            on_first_byte=lambda t: self._stamp(epoch, timing,
                                                "first_byte_at", t),
            on_complete=lambda t: self._object_complete(epoch, object_id, t))
        self._arm_watchdog(object_id)
        self.fetcher.fetch(task)

    # ------------------------------------------------------------------
    # stall watchdog: cancel-and-retry with capped exponential backoff
    # ------------------------------------------------------------------
    def _arm_watchdog(self, object_id: str) -> None:
        if self.config.stall_timeout is None:
            return
        timer = self._watchdogs.get(object_id)
        if timer is None:
            timer = Timer(self.sim, self._watchdog_fire, name="stall-watchdog")
            self._watchdogs[object_id] = timer
        timer.start(self.config.stall_timeout, self._load_epoch, object_id)

    def _disarm_watchdog(self, object_id: str) -> None:
        timer = self._watchdogs.pop(object_id, None)
        if timer is not None:
            timer.stop()

    def _watchdog_fire(self, epoch: int, object_id: str) -> None:
        if epoch != self._load_epoch or self._page is None:
            return
        timing = self._timings.get(object_id)
        if timing is None or timing.complete_at is not None:
            return
        if timing.attempts > self.config.max_retries:
            return  # out of retries: leave it to the page load timeout
        cancel = getattr(self.fetcher, "cancel", None)
        if cancel is not None:
            cancel(object_id)
        delay = min(self.config.retry_backoff_cap,
                    self.config.retry_backoff_base * (2 ** (timing.attempts - 1)))
        timing.attempts += 1
        self._record.retries += 1
        self.sim.schedule(delay, self._retry_fetch, epoch, object_id)

    def _retry_fetch(self, epoch: int, object_id: str) -> None:
        if epoch != self._load_epoch or self._page is None:
            return
        timing = self._timings.get(object_id)
        if timing is None or timing.complete_at is not None:
            return
        self._issue_fetch(object_id, timing)

    def _consume_push(self, object_id: str, obj: WebObject) -> bool:
        """Use a server-pushed copy of the object if one exists.

        Returns True when the object is satisfied (now or when the push
        completes) without issuing a request.
        """
        lookup = getattr(self.fetcher, "push_lookup", None)
        if lookup is None:
            return False
        hit = lookup(object_id)
        if hit is None:
            return False
        state, payload = hit
        now = self.sim.now
        timing = ObjectTiming(key=object_id, kind=obj.kind, size=obj.size,
                              domain=obj.domain, discovered_at=now,
                              write_start_at=now, sent_at=now,
                              first_byte_at=now)
        self._timings[object_id] = timing
        self._record.objects.append(timing)
        epoch = self._load_epoch
        if state == "done":
            self.sim.call_soon(self._object_complete, epoch, object_id, now)
        else:
            payload(lambda t: self._object_complete(epoch, object_id, t))
        return True

    def _stamp(self, epoch: int, timing: ObjectTiming, field: str,
               time: float) -> None:
        if epoch != self._load_epoch:
            return  # stale callback from an abandoned load
        setattr(timing, field, time)

    def _object_complete(self, epoch: int, object_id: str, time: float) -> None:
        if epoch != self._load_epoch or self._page is None:
            return
        timing = self._timings[object_id]
        if timing.complete_at is not None:
            return  # a stale attempt completing after a successful retry
        self._disarm_watchdog(object_id)
        timing.complete_at = time
        obj = self._page.objects[object_id]
        if obj.blocking:
            self._process_queue.append(object_id)
            self._pump_processor()
        else:
            timing.processed_at = time
            self._outstanding.discard(object_id)
            self._check_onload()

    # ------------------------------------------------------------------
    # sequential main-thread processing of HTML/JS/CSS
    # ------------------------------------------------------------------
    def _pump_processor(self) -> None:
        if self._processing or not self._process_queue:
            return
        self._processing = True
        object_id = self._process_queue.popleft()
        obj = self._page.objects[object_id]
        epoch = self._load_epoch
        self.sim.schedule(obj.processing_delay, self._processed, epoch,
                          object_id)

    def _processed(self, epoch: int, object_id: str) -> None:
        if epoch != self._load_epoch or self._page is None:
            return
        self._processing = False
        obj = self._page.objects[object_id]
        timing = self._timings[object_id]
        timing.processed_at = self.sim.now
        self._discover_staggered(obj.children)
        self._outstanding.discard(object_id)
        self._pump_processor()
        self._check_onload()

    # ------------------------------------------------------------------
    # onLoad and background activity
    # ------------------------------------------------------------------
    def _check_onload(self) -> None:
        if (self._record is None or self._record.onload_at is not None
                or self._outstanding or self._process_queue
                or self._processing):
            return
        self._record.onload_at = self.sim.now
        self._timeout_timer.stop()
        if self.sanitizer is not None:
            self.sanitizer.emit("browser.onload", self,
                                detail=f"page{self._record.site_id}")
        if self.config.background_enabled and self._page is not None:
            self._schedule_background()
        if self._on_load is not None:
            self._on_load(self._record)

    def _on_timeout(self) -> None:
        if self._record is not None and self._record.onload_at is None:
            self._record.timed_out = True
            # Abandon the in-flight transfers so their connections go back
            # to the pool (or are replaced) instead of wedging the next
            # scheduled page behind dead requests.  The epoch bump kills
            # pending retries and stale completion callbacks with them.
            self._load_epoch += 1
            self._stop_watchdogs()
            abandon = getattr(self.fetcher, "abandon_all", None)
            if abandon is not None:
                abandon()
            if self.sanitizer is not None:
                self.sanitizer.emit("browser.abandon", self,
                                    detail=f"page{self._record.site_id}",
                                    fetcher=self.fetcher)
            if self._on_load is not None:
                self._on_load(self._record)

    def _schedule_background(self) -> None:
        for i, transfer in enumerate(self._page.background):
            event = self.sim.schedule(transfer.start_offset,
                                      self._run_background, self._load_epoch,
                                      i, transfer)
            self._background_events.append(event)

    def _run_background(self, epoch: int, index: int, transfer) -> None:
        if epoch != self._load_epoch or self._page is None:
            return
        domain = self._page.main.domain
        timing = ObjectTiming(key=f"bg/{self._page.site_id}/{index}",
                              kind=transfer.kind, size=transfer.response_bytes,
                              domain=domain, discovered_at=self.sim.now)
        self._record.background.append(timing)
        task = FetchTask(
            key=timing.key, domain=domain,
            path=f"/{transfer.kind}/{index}", priority=3,
            server_delay=transfer.server_delay,
            response_bytes=transfer.response_bytes,
            content_type="application/json",
            on_write_start=lambda t: setattr(timing, "write_start_at", t),
            on_sent=lambda t: setattr(timing, "sent_at", t),
            on_first_byte=lambda t: setattr(timing, "first_byte_at", t),
            on_complete=lambda t: setattr(timing, "complete_at", t))
        self.fetcher.fetch(task)
