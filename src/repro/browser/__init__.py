"""The browser model: page-load engine, connection pool, protocol fetchers."""

from .browser import Browser, BrowserConfig
from .fetchers import FetchTask, HttpFetcher, SpdyFetcher
from .pool import ConnectionPool, PoolStats
from .timing import ObjectTiming, PageLoadRecord

__all__ = ["Browser", "BrowserConfig", "FetchTask", "HttpFetcher",
           "SpdyFetcher", "ConnectionPool", "PoolStats", "ObjectTiming",
           "PageLoadRecord"]
