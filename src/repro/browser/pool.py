"""Chrome-style HTTP connection pool.

"When using a HTTP proxy, Chrome opens up to 6 parallel TCP connections
to the proxy per domain, with a maximum of 32 active TCP connections
across all domains."  Connections are keyed by the *target domain* even
though they all terminate at the proxy.  Idle connections are kept for
reuse and closed after an idle timeout; when the global cap binds, an
idle connection from another domain is evicted to make room.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List

from ..sim import Simulator, Timer
from ..tcp import TcpStack

__all__ = ["ConnectionPool", "PoolStats"]


class PoolStats:
    """Counters for pool behaviour analysis."""

    def __init__(self) -> None:
        self.opened = 0
        self.reused = 0
        self.closed_idle = 0
        self.evicted = 0
        self.max_concurrent = 0
        self.replaced = 0    # dead connections replaced by a fresh open


class _DomainState:
    def __init__(self) -> None:
        self.free: List = []
        self.busy: set = set()
        self.opening = 0
        self.waiters: Deque[Callable] = deque()

    @property
    def count(self) -> int:
        return len(self.free) + len(self.busy) + self.opening


class ConnectionPool:
    """Per-domain-capped, globally-capped connection pool to the proxy."""

    def __init__(self, sim: Simulator, stack: TcpStack, proxy_addr: str,
                 proxy_port: int, max_per_domain: int = 6,
                 max_total: int = 32, idle_timeout: float = 30.0):
        self.sim = sim
        self.stack = stack
        self.proxy_addr = proxy_addr
        self.proxy_port = proxy_port
        self.max_per_domain = max_per_domain
        self.max_total = max_total
        self.idle_timeout = idle_timeout
        self.stats = PoolStats()
        self._domains: Dict[str, _DomainState] = {}
        self._idle_timers: Dict[object, Timer] = {}
        # Domains whose waiters are blocked purely by the global cap.
        self._starved: Deque[str] = deque()

    # ------------------------------------------------------------------
    def _state(self, domain: str) -> _DomainState:
        state = self._domains.get(domain)
        if state is None:
            state = _DomainState()
            self._domains[domain] = state
        return state

    @property
    def total_connections(self) -> int:
        return sum(s.count for s in self._domains.values())

    def connection_count(self, domain: str) -> int:
        return self._state(domain).count

    # ------------------------------------------------------------------
    def acquire(self, domain: str, callback: Callable) -> None:
        """Hand ``callback`` an ESTABLISHED connection for ``domain``.

        May be satisfied synchronously (idle connection available) or
        after a handshake / another request finishing.
        """
        state = self._state(domain)
        conn = self._pop_free(state)
        if conn is not None:
            state.busy.add(conn)
            self.stats.reused += 1
            callback(conn)
            return
        state.waiters.append(callback)
        self._try_open(domain)

    def release(self, domain: str, conn) -> None:
        """Return a connection after its response completed."""
        state = self._state(domain)
        state.busy.discard(conn)
        if conn.state != "ESTABLISHED":
            if state.waiters:
                self.stats.replaced += 1
            self._serve_starved()
            self._try_open(domain)
            return
        if state.waiters:
            state.busy.add(conn)
            self.stats.reused += 1
            state.waiters.popleft()(conn)
            return
        if self._starved:
            # Another domain is blocked on the global cap: give up this
            # connection so it can open one.
            self._close(domain, conn)
            self._serve_starved()
            return
        state.free.append(conn)
        self._arm_idle_timer(domain, conn)

    def close_all(self) -> None:
        """Tear down every pooled connection (end of run)."""
        for domain, state in self._domains.items():
            # Sort the busy set so teardown order (and hence event order)
            # does not depend on object identity hashing.
            busy = sorted(state.busy, key=lambda c: c.conn_id)
            for conn in list(state.free) + busy:
                conn.abort()
            state.free.clear()
            state.busy.clear()
        for timer in self._idle_timers.values():
            timer.stop()
        self._idle_timers.clear()

    # ------------------------------------------------------------------
    def _pop_free(self, state: _DomainState):
        while state.free:
            conn = state.free.pop()
            self._disarm_idle_timer(conn)
            if conn.state == "ESTABLISHED":
                return conn
        return None

    def _try_open(self, domain: str) -> None:
        state = self._state(domain)
        while state.waiters and state.count - len(state.waiters) < 0:
            # There are more waiters than connections being prepared.
            if state.count >= self.max_per_domain:
                return  # per-domain cap: wait for a release
            if self.total_connections >= self.max_total:
                if not self._evict_idle(exclude=domain):
                    if domain not in self._starved:
                        self._starved.append(domain)
                    return
            self._open(domain)

    def _open(self, domain: str) -> None:
        state = self._state(domain)
        state.opening += 1
        self.stats.opened += 1
        self.stats.max_concurrent = max(self.stats.max_concurrent,
                                        self.total_connections)
        conn = self.stack.connect(self.proxy_addr, self.proxy_port)
        settled = [False]   # established (or given up) — guards `opening`

        def established(c):
            if settled[0]:
                return
            settled[0] = True
            state.opening -= 1
            if state.waiters:
                state.busy.add(c)
                state.waiters.popleft()(c)
            else:
                state.free.append(c)
                self._arm_idle_timer(domain, c)

        def closed(c):
            # A connection reset mid-handshake never fires `established`;
            # settle it here so `opening` doesn't leak and waiters get a
            # replacement connection.
            if not settled[0]:
                settled[0] = True
                state.opening -= 1
                if state.waiters:
                    self.stats.replaced += 1
            self._on_conn_closed(domain, c)

        conn.on_established = established
        conn.on_close = closed

    def _on_conn_closed(self, domain: str, conn) -> None:
        state = self._state(domain)
        if conn in state.free:
            state.free.remove(conn)
        state.busy.discard(conn)
        self._disarm_idle_timer(conn)
        if state.waiters:
            self._try_open(domain)
        self._serve_starved()

    def _evict_idle(self, exclude: str) -> bool:
        """Close one idle connection from any other domain; True if done."""
        for domain, state in self._domains.items():
            if domain == exclude or not state.free:
                continue
            conn = state.free.pop()
            self._close(domain, conn)
            self.stats.evicted += 1
            return True
        return False

    def _close(self, domain: str, conn) -> None:
        self._disarm_idle_timer(conn)
        conn.close()

    def _serve_starved(self) -> None:
        while self._starved and self.total_connections < self.max_total:
            domain = self._starved.popleft()
            self._try_open(domain)

    # ------------------------------------------------------------------
    def _arm_idle_timer(self, domain: str, conn) -> None:
        timer = self._idle_timers.get(conn)
        if timer is None:
            timer = Timer(self.sim, self._idle_expired, name="pool-idle")
            self._idle_timers[conn] = timer
        timer.start(self.idle_timeout, domain, conn)

    def _disarm_idle_timer(self, conn) -> None:
        timer = self._idle_timers.pop(conn, None)
        if timer is not None:
            timer.stop()

    def _idle_expired(self, domain: str, conn) -> None:
        state = self._state(domain)
        if conn in state.free:
            state.free.remove(conn)
            self.stats.closed_idle += 1
            self._idle_timers.pop(conn, None)
            conn.close()
            self._serve_starved()
