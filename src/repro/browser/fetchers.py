"""Fetchers: how the browser gets objects over HTTP/1.1 or SPDY.

The browser core is protocol-agnostic; it hands a :class:`FetchTask` to
a fetcher and receives timing callbacks.  :class:`HttpFetcher` drives
the Chrome-style connection pool (6/domain, 32 total, one outstanding
request per connection, no pipelining).  :class:`SpdyFetcher` drives one
or more SPDY sessions (one is the paper's main configuration; 20 with
static binding is the §6.1 experiment) with TLS setup, stream
multiplexing, priorities and compressed headers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..sim import Simulator
from ..tcp import TcpStack
from ..web.headers import SpdyHeaderCodec
from ..web.http1 import HttpRequest, HttpResponseBody, HttpResponseHead
from ..web.spdy import (SpdyDataFrame, SpdyPing, SpdyPushStream,
                        SpdyStreamIds, SpdySynReply, SpdySynStream,
                        TlsHandshakeMessage)
from .pool import ConnectionPool

__all__ = ["FetchTask", "HttpFetcher", "SpdyFetcher"]


class FetchTask:
    """One object (or background transfer) to fetch."""

    __slots__ = ("key", "domain", "path", "priority", "context",
                 "server_delay", "response_bytes", "content_type",
                 "on_write_start", "on_sent", "on_first_byte", "on_complete")

    def __init__(self, key: str, domain: str, path: str, priority: int = 0,
                 context: Any = None, server_delay: float = 0.0,
                 response_bytes: Optional[int] = None,
                 content_type: str = "application/octet-stream",
                 on_write_start: Optional[Callable[[float], None]] = None,
                 on_sent: Optional[Callable[[float], None]] = None,
                 on_first_byte: Optional[Callable[[float], None]] = None,
                 on_complete: Optional[Callable[[float], None]] = None):
        self.key = key
        self.domain = domain
        self.path = path
        self.priority = priority
        self.context = context
        self.server_delay = server_delay
        self.response_bytes = response_bytes
        self.content_type = content_type
        self.on_write_start = on_write_start
        self.on_sent = on_sent
        self.on_first_byte = on_first_byte
        self.on_complete = on_complete

    def _fire(self, which: str, now: float) -> None:
        callback = getattr(self, which)
        if callback is not None:
            callback(now)


class HttpFetcher:
    """HTTP/1.1 over the connection pool.

    Default Chrome-era behaviour: one outstanding request per connection
    (the paper's configuration — Squid's pipelining was too rudimentary
    to test).  With ``pipelining=True`` up to ``pipeline_depth`` requests
    are outstanding per connection (Figure 1(c)); responses come back in
    request order, so head-of-line blocking at the object level remains —
    exactly the limitation the paper's §2.1 describes.
    """

    name = "http"

    def __init__(self, sim: Simulator, stack: TcpStack, proxy_addr: str,
                 proxy_port: int, max_per_domain: int = 6,
                 max_total: int = 32, idle_timeout: float = 30.0,
                 pipelining: bool = False, pipeline_depth: int = 4):
        self.sim = sim
        self.pool = ConnectionPool(sim, stack, proxy_addr, proxy_port,
                                   max_per_domain=max_per_domain,
                                   max_total=max_total,
                                   idle_timeout=idle_timeout)
        self.pipelining = pipelining
        self.pipeline_depth = pipeline_depth
        self._inflight: Dict[int, tuple] = {}  # request_id -> (task, conn, domain)
        self._outstanding: Dict[object, int] = {}  # conn -> live requests
        self._busy_by_domain: Dict[str, List] = {}
        self.requests_sent = 0
        self.requests_retried = 0   # re-issued after a connection reset
        self.requests_cancelled = 0

    @property
    def inflight_count(self) -> int:
        """Requests currently awaiting a response (leak-check hook)."""
        return len(self._inflight)

    def fetch(self, task: FetchTask) -> None:
        if self.pipelining:
            conn = self._pipeline_candidate(task.domain)
            if conn is not None:
                self._dispatch(task, conn, acquired=False)
                return
        self.pool.acquire(task.domain,
                          lambda conn: self._dispatch(task, conn,
                                                      acquired=True))

    def _pipeline_candidate(self, domain: str):
        """A busy connection with pipeline headroom, if any."""
        for conn in self._busy_by_domain.get(domain, []):
            if (conn.state == "ESTABLISHED"
                    and self._outstanding.get(conn, 0) < self.pipeline_depth):
                return conn
        return None

    def _dispatch(self, task: FetchTask, conn, acquired: bool) -> None:
        request = HttpRequest(task.domain, task.path, context=task.context,
                              via_proxy=True, server_delay=task.server_delay,
                              response_bytes=task.response_bytes,
                              content_type=task.content_type)
        self._inflight[request.request_id] = (task, conn, task.domain)
        self._outstanding[conn] = self._outstanding.get(conn, 0) + 1
        if acquired:
            self._busy_by_domain.setdefault(task.domain, []).append(conn)
        conn.on_message = self._on_message
        conn.on_reset = self._on_conn_reset
        task._fire("on_write_start", self.sim.now)
        conn.send_message(request, request.wire_size)
        conn.notify_when_segmented(
            lambda: task._fire("on_sent", self.sim.now))
        self.requests_sent += 1

    def _on_conn_reset(self, conn) -> None:
        """A connection died abortively: re-issue its in-flight requests.

        This is always on, mirroring Chrome's behaviour of retrying an
        idempotent GET when the pipe breaks: HTTP's many short connections
        make a reset cheap to absorb, which is exactly the resilience
        asymmetry versus SPDY's single long-lived session.
        """
        dead = [rid for rid, (_, c, _) in self._inflight.items() if c is conn]
        tasks = [self._inflight.pop(rid)[0] for rid in dead]
        self._outstanding.pop(conn, None)
        for busy in self._busy_by_domain.values():
            if conn in busy:
                busy.remove(conn)
        # The pool notices the death via on_close and opens a replacement.
        for task in tasks:
            self.requests_retried += 1
            self.fetch(task)

    def cancel(self, key: str) -> bool:
        """Cancel the in-flight request for object ``key`` (watchdog retry).

        The carrying connection is reset: real browsers cannot un-send a
        request on a busy HTTP/1.1 connection either, so the retry goes
        out on a fresh one from the pool.
        """
        for rid, (task, conn, _) in list(self._inflight.items()):
            if task.key == key:
                del self._inflight[rid]
                self.requests_cancelled += 1
                conn.reset(send_rst=True)
                return True
        return False

    def abandon_all(self) -> None:
        """Drop every in-flight request without retry (page load timed out)."""
        if not self._inflight:
            return
        conns = {entry[1] for entry in self._inflight.values()}
        self._inflight.clear()
        self._outstanding.clear()
        self._busy_by_domain.clear()
        # Reset in conn_id order: set iteration order is id()-dependent
        # and would make replays diverge across processes.
        for conn in sorted(conns, key=lambda c: c.conn_id):
            conn.reset(send_rst=True)

    def _on_message(self, conn, message) -> None:
        if isinstance(message, HttpResponseHead):
            entry = self._inflight.get(message.request.request_id)
            if entry is not None:
                entry[0]._fire("on_first_byte", self.sim.now)
        elif isinstance(message, HttpResponseBody):
            entry = self._inflight.pop(message.request.request_id, None)
            if entry is not None:
                task, conn_, domain = entry
                left = self._outstanding.get(conn_, 1) - 1
                self._outstanding[conn_] = left
                if left <= 0:
                    self._outstanding.pop(conn_, None)
                    busy = self._busy_by_domain.get(domain, [])
                    if conn_ in busy:
                        busy.remove(conn_)
                    self.pool.release(domain, conn_)
                task._fire("on_complete", self.sim.now)

    def shutdown(self) -> None:
        self.pool.close_all()


class _SpdySession:
    """One SSL/SPDY connection: TLS setup then multiplexed streams."""

    def __init__(self, fetcher: "SpdyFetcher", index: int):
        self.fetcher = fetcher
        self.index = index
        self.sim = fetcher.sim
        self.state = "connecting"
        self.codec = SpdyHeaderCodec()
        self.pending: List[FetchTask] = []
        self.conn = fetcher.stack.connect(fetcher.proxy_addr,
                                          fetcher.proxy_port)
        self.conn.on_established = self._on_established
        self.conn.on_message = self._on_message
        self.conn.on_reset = self._on_reset
        self.established_at: Optional[float] = None

    def _on_reset(self, conn) -> None:
        self.state = "dead"
        self.fetcher._session_died(self)

    # -- TLS ---------------------------------------------------------------
    def _on_established(self, conn) -> None:
        hello = TlsHandshakeMessage("client_hello")
        conn.send_message(hello, hello.wire_size)
        self.state = "tls"

    def _on_message(self, conn, message) -> None:
        if isinstance(message, TlsHandshakeMessage):
            if message.stage == "server_hello_cert" and self.state == "tls":
                finished = TlsHandshakeMessage("client_finished")
                conn.send_message(finished, finished.wire_size)
            elif message.stage == "server_finished":
                self.state = "ready"
                self.established_at = self.sim.now
                for task in self.pending:
                    self._send(task)
                self.pending.clear()
            return
        if isinstance(message, SpdySynReply):
            self.fetcher._on_first_byte(message.stream_id,
                                        message.content_length)
        elif isinstance(message, SpdyDataFrame):
            self.fetcher._on_data(message)
        elif isinstance(message, SpdyPushStream):
            self.fetcher._on_push_stream(message)
        elif isinstance(message, SpdyPing):
            self.fetcher.pings_echoed += 1

    # -- streams -----------------------------------------------------------
    def fetch(self, task: FetchTask) -> None:
        if self.state != "ready":
            self.pending.append(task)
        else:
            self._send(task)

    def _send(self, task: FetchTask) -> None:
        stream_id = self.fetcher.stream_ids.next_id()
        syn = SpdySynStream(stream_id, self.codec, task.domain, task.path,
                            priority=task.priority, context=task.context,
                            server_delay=task.server_delay,
                            response_bytes=task.response_bytes,
                            content_type=task.content_type)
        self.fetcher._register_stream(stream_id, task, self)
        task._fire("on_write_start", self.sim.now)
        self.conn.send_message(syn, syn.wire_size)
        self.conn.notify_when_segmented(
            lambda: task._fire("on_sent", self.sim.now))

    def ping(self) -> None:
        if self.state == "ready":
            self.fetcher._ping_counter += 1
            frame = SpdyPing(self.fetcher._ping_counter)
            self.conn.send_message(frame, frame.wire_size)


class SpdyFetcher:
    """One or more persistent SPDY sessions to the proxy.

    ``n_sessions=1`` is the paper's main configuration.  ``n_sessions=20``
    reproduces the §6.1 multi-connection experiment; streams are assigned
    round-robin (static binding), and the proxy may optionally be run
    with late binding to return responses on any session.
    """

    name = "spdy"

    def __init__(self, sim: Simulator, stack: TcpStack, proxy_addr: str,
                 proxy_port: int, n_sessions: int = 1, recover: bool = True):
        if n_sessions < 1:
            raise ValueError("need at least one SPDY session")
        self.sim = sim
        self.stack = stack
        self.proxy_addr = proxy_addr
        self.proxy_port = proxy_port
        self.recover = recover
        self.stream_ids = SpdyStreamIds()
        self._streams: Dict[int, FetchTask] = {}
        self._session_of: Dict[int, "_SpdySession"] = {}
        # Per-stream byte accounting: with late binding (§6.1) a stream's
        # DATA frames may arrive over different connections, so frame
        # order is not completion order — only byte counts are.
        self._expected: Dict[int, Optional[int]] = {}
        self._received: Dict[int, int] = {}
        self._got_fin: Dict[int, bool] = {}
        # Server push: even stream ids carry unrequested resources.
        self._push_inflight: Dict[int, dict] = {}   # stream_id -> state
        self._push_done: Dict[str, float] = {}      # object_id -> time
        self._push_waiters: Dict[str, list] = {}
        self.pushes_received = 0
        self._next_session = 0
        self.pings_echoed = 0
        self._ping_counter = 0
        self.requests_sent = 0
        self.sessions_lost = 0
        self.sessions_reestablished = 0
        self.streams_reissued = 0
        self.streams_cancelled = 0
        self.sessions = [_SpdySession(self, i) for i in range(n_sessions)]

    @property
    def inflight_count(self) -> int:
        """Open streams plus tasks queued on sessions (leak-check hook)."""
        return (len(self._streams)
                + sum(len(s.pending) for s in self.sessions))

    # ------------------------------------------------------------------
    def fetch(self, task: FetchTask) -> None:
        session = self.sessions[self._next_session % len(self.sessions)]
        self._next_session += 1
        self.requests_sent += 1
        session.fetch(task)

    def ping_all(self) -> None:
        """Send a SPDY PING on every session (Figure 14 keepalive)."""
        for session in self.sessions:
            session.ping()

    def shutdown(self) -> None:
        for session in self.sessions:
            session.conn.abort()

    def cancel(self, key: str) -> bool:
        """Forget the stream for object ``key`` so the browser can retry it.

        SPDY has no per-stream abort in our model (no RST_STREAM); the
        stale response, if it ever arrives, is dropped at the unknown
        stream id.
        """
        for sid, task in list(self._streams.items()):
            if task.key == key:
                self._drop_stream(sid)
                self.streams_cancelled += 1
                return True
        for session in self.sessions:
            for task in session.pending:
                if task.key == key:
                    session.pending.remove(task)
                    self.streams_cancelled += 1
                    return True
        return False

    def abandon_all(self) -> None:
        """Drop every in-flight stream without retry (page load timed out).

        The sessions themselves survive — a real browser keeps its proxy
        connection across an aborted page load.
        """
        for sid in list(self._streams):
            self._drop_stream(sid)
        for session in self.sessions:
            session.pending.clear()

    # -- called by sessions ----------------------------------------------
    def _register_stream(self, stream_id: int, task: FetchTask,
                         session: "_SpdySession") -> None:
        self._streams[stream_id] = task
        self._expected[stream_id] = None
        self._received[stream_id] = 0
        self._got_fin[stream_id] = False
        self._session_of[stream_id] = session

    def _drop_stream(self, stream_id: int) -> Optional[FetchTask]:
        task = self._streams.pop(stream_id, None)
        self._expected.pop(stream_id, None)
        self._received.pop(stream_id, None)
        self._got_fin.pop(stream_id, None)
        self._session_of.pop(stream_id, None)
        return task

    def _session_died(self, session: "_SpdySession") -> None:
        """A session's connection was reset.

        With ``recover`` a fresh session replaces it and every queued or
        in-flight stream is re-issued; without it the tasks are simply
        lost — the page stalls until its load timeout, which is the
        fragility the resilience benchmark measures.
        """
        self.sessions_lost += 1
        tasks = list(session.pending)
        session.pending = []
        dead = [sid for sid, s in self._session_of.items() if s is session]
        for sid in dead:
            task = self._drop_stream(sid)
            if task is not None:
                tasks.append(task)
        if not self.recover:
            return
        replacement = _SpdySession(self, session.index)
        self.sessions[session.index] = replacement
        self.sessions_reestablished += 1
        for task in tasks:
            self.streams_reissued += 1
            replacement.fetch(task)

    def _on_first_byte(self, stream_id: int,
                       content_length: Optional[int] = None) -> None:
        task = self._streams.get(stream_id)
        if task is not None:
            self._expected[stream_id] = content_length
            task._fire("on_first_byte", self.sim.now)
            self._maybe_complete(stream_id)

    # -- server push -------------------------------------------------------
    def _on_push_stream(self, push: SpdyPushStream) -> None:
        key = getattr(push.context, "object_id", f"push/{push.stream_id}")
        self._push_inflight[push.stream_id] = {
            "key": key, "expected": push.content_length, "received": 0}

    def _on_push_data(self, frame: SpdyDataFrame) -> None:
        state = self._push_inflight.get(frame.stream_id)
        if state is None:
            return
        state["received"] += frame.length
        if frame.last and state["received"] >= state["expected"]:
            del self._push_inflight[frame.stream_id]
            key = state["key"]
            self._push_done[key] = self.sim.now
            self.pushes_received += 1
            for callback in self._push_waiters.pop(key, []):
                callback(self.sim.now)

    def push_lookup(self, object_id: str):
        """Is ``object_id`` already pushed (or being pushed)?

        Returns ``("done", completion_time)``, ``("inflight", subscribe)``
        where ``subscribe(cb)`` registers a completion callback, or None.
        """
        if object_id in self._push_done:
            return ("done", self._push_done[object_id])
        for state in self._push_inflight.values():
            if state["key"] == object_id:
                def subscribe(callback, _key=object_id):
                    self._push_waiters.setdefault(_key, []).append(callback)
                return ("inflight", subscribe)
        return None

    def _on_data(self, frame: SpdyDataFrame) -> None:
        if frame.stream_id % 2 == 0:
            self._on_push_data(frame)
            return
        if frame.stream_id not in self._streams:
            return
        self._received[frame.stream_id] = \
            self._received.get(frame.stream_id, 0) + frame.length
        if frame.last:
            self._got_fin[frame.stream_id] = True
        self._maybe_complete(frame.stream_id)

    def _maybe_complete(self, stream_id: int) -> None:
        if not self._got_fin.get(stream_id):
            return
        expected = self._expected.get(stream_id)
        if expected is not None and self._received.get(stream_id, 0) < expected:
            return  # FIN frame arrived early on another connection
        task = self._drop_stream(stream_id)
        if task is not None:
            task._fire("on_complete", self.sim.now)
