"""Fault-tolerant parallel campaign execution.

``repro campaign --workers N`` and ``repro chaos --workers N`` run
their trials across N supervised worker processes.  The package is
organised by responsibility:

* :mod:`repro.parallel.worker` — the worker loop: pull a trial, run it
  through the *same* deterministic trial builders the serial loops use,
  append to a private journal, heartbeat.
* :mod:`repro.parallel.supervisor` — all the policy: hang detection,
  crash detection, infrastructure-vs-genuine failure classification,
  capped-backoff retries, worker respawn, graceful drain.
* :mod:`repro.parallel.merge` — the deterministic merge that makes the
  aggregate journal byte-identical to a serial run's, tolerant of
  SIGKILLed workers and a hard-killed supervisor (``--resume``).
* :mod:`repro.parallel.cli` — the shared ``--workers`` flags and exit
  codes for both campaign commands.
"""

from .merge import (MergeError, MergeResult, collect_records,
                    merge_records, record_identity, write_merged)
from .supervisor import (DEFAULT_MAX_RETRIES, DEFAULT_TRIAL_TIMEOUT,
                         ParallelStats, Supervisor, SupervisorError,
                         backoff_delay, run_parallel_campaign,
                         run_parallel_chaos, run_parallel_sector)
from .worker import (CampaignSpec, DEFAULT_WORKER_FSYNC_EVERY, TrialTask,
                     worker_main)

__all__ = [
    "CampaignSpec", "DEFAULT_MAX_RETRIES", "DEFAULT_TRIAL_TIMEOUT",
    "DEFAULT_WORKER_FSYNC_EVERY", "MergeError", "MergeResult",
    "ParallelStats", "Supervisor", "SupervisorError", "TrialTask",
    "backoff_delay", "collect_records", "merge_records",
    "record_identity", "run_parallel_campaign", "run_parallel_chaos",
    "run_parallel_sector", "worker_main", "write_merged",
]
