"""Shared CLI plumbing for ``--workers`` campaign execution.

Both ``repro campaign`` and ``repro chaos`` grow the same three flags
and the same exit-code discipline, so both register through here.

Exit codes for supervised runs:

* ``0``   — campaign complete, no trial failures
* ``1``   — campaign complete, genuine trial failures journaled
* ``3``   — campaign *incomplete*: trials lost to exhausted retries or
  left outstanding by a drain; re-run with ``--resume`` to finish
* ``4``   — campaign hit a *resource ceiling* (worker RSS, wall clock,
  journal bytes): the affected trials are journaled as classified
  ``resource-exhaustion`` records and ``--resume`` re-runs them —
  distinct from ``3`` because the campaign degraded by policy, not by
  losing trials to unexplained infrastructure
* ``130`` — interrupted (SIGINT/SIGTERM drain); the merged journal
  holds everything that finished, ``--resume`` continues it

Precedence when several apply: ``130`` > ``4`` > ``3`` > ``1``.
"""

from __future__ import annotations

import contextlib
import signal
import sys
import threading

from .supervisor import DEFAULT_MAX_RETRIES, DEFAULT_TRIAL_TIMEOUT

__all__ = ["add_parallel_arguments", "graceful_interrupt", "notify_stderr",
           "supervision_exit_code"]

EXIT_INTERRUPTED = 130
EXIT_INCOMPLETE = 3
EXIT_RESOURCE = 4


def add_parallel_arguments(parser) -> None:
    """Register the ``--workers`` family on a campaign subparser."""
    group = parser.add_argument_group("parallel execution")
    group.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run trials across N supervised worker processes "
             "(0 = serial, the default); the merged journal is "
             "byte-identical to a serial run's")
    group.add_argument(
        "--trial-timeout", type=float, default=DEFAULT_TRIAL_TIMEOUT,
        metavar="SECONDS",
        help="wall-clock seconds without a worker heartbeat before the "
             "trial is declared hung, the worker killed, and the trial "
             f"retried (default: {DEFAULT_TRIAL_TIMEOUT:.0f})")
    group.add_argument(
        "--max-retries", type=int, default=DEFAULT_MAX_RETRIES,
        metavar="N",
        help="infrastructure retries per trial (crash/hang of the "
             "worker) before the trial is declared lost; genuine "
             "simulator failures are journaled, never retried "
             f"(default: {DEFAULT_MAX_RETRIES})")
    group.add_argument(
        "--max-rss-mb", type=float, default=None, metavar="MIB",
        help="per-worker resident-set ceiling: a worker observed over "
             "it is killed, its trial retried once at reduced scale, "
             "then classified resource-exhaustion (exit code 4; "
             "--resume re-runs those trials); default: unlimited")


def notify_stderr(message: str) -> None:
    """Supervision events go to stderr; reports own stdout."""
    print(f"[repro] {message}", file=sys.stderr)


@contextlib.contextmanager
def graceful_interrupt(notify=notify_stderr):
    """Serial campaigns' interrupt discipline, as a context manager.

    Yields a ``should_stop`` callable for ``run_campaign``-style loops:
    the first SIGINT/SIGTERM flips it (finish the current trial, then
    stop — the journal stays resumable), a second raises
    ``KeyboardInterrupt``.  Off the main thread, signals cannot be
    hooked; the callable then just always says "keep going".
    """
    state = {"stop": False}

    def handler(signum, frame):
        if state["stop"]:
            raise KeyboardInterrupt
        state["stop"] = True
        notify("interrupt: finishing the current trial, then stopping "
               "(press again to abort; --resume continues the journal)")

    if threading.current_thread() is not threading.main_thread():
        yield lambda: False
        return
    previous = {s: signal.signal(s, handler)
                for s in (signal.SIGINT, signal.SIGTERM)}
    try:
        yield lambda: state["stop"]
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


def supervision_exit_code(result, failure_count: int) -> int:
    """Map a supervised campaign result onto the exit-code contract.

    Precedence: interrupted (130) beats exhausted (4) beats incomplete
    (3) beats failures (1) — each outer condition subsumes the inner
    ones' remediation (``--resume``), so the most actionable wins.
    """
    stats = result.parallel or {}
    if stats.get("drained"):
        return EXIT_INTERRUPTED
    if stats.get("exhausted") or getattr(result, "exhausted", False):
        return EXIT_RESOURCE
    if stats.get("lost") or result.stopped_early:
        return EXIT_INCOMPLETE
    return 1 if failure_count else 0
