"""Deterministic, crash-safe merge of per-worker journals.

The contract that makes parallel campaigns trustworthy: merging the
per-worker journals (plus any prior aggregate journal, when resuming)
in *serial order* produces an aggregate journal **byte-identical** to
the one a serial run of the same campaign would have written.  That
holds because

* every record is built by the same deterministic trial builder the
  serial loop uses, then serialized with the same canonical
  ``json.dumps(..., sort_keys=True)`` — so a given trial's line is the
  same bytes no matter which process produced it (and JSON round-trips
  are stable, so re-serializing a loaded record is a no-op);
* the merge orders records by the campaign's serial task order, not by
  arrival time;
* duplicates (a worker killed between journaling and reporting gets its
  trial re-run elsewhere) collapse, and a *conflicting* duplicate —
  same trial identity, different bytes — is a determinism bug and
  fails the merge loudly rather than silently picking a side.

The output write is atomic (temp file + rename + fsync), so a crash
mid-merge leaves either the old aggregate or the new one, never a
half-written hybrid; the worker journals it was built from are only
removed by the caller after the rename lands.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sanity.campaign import CampaignJournal, is_exhaustion_record

__all__ = ["MergeError", "MergeResult", "collect_records", "merge_records",
           "record_identity", "write_merged"]


class MergeError(RuntimeError):
    """Conflicting records for one trial — a determinism violation."""


def record_identity(record: Dict[str, object]) -> Optional[Tuple]:
    """The merge identity of one journal record, or None for non-trials.

    Plain campaign records have no index field and are identified by
    (digest, seed) — a campaign whose configs collide under that pair
    produces byte-identical records anyway, so the collapse is safe.
    Chaos records carry their trial index, which pins each record to
    its serial position even if the generator ever drew the same
    (scenario, seed) twice.
    """
    kind = record.get("kind")
    if kind == "trial":
        return ("trial", str(record.get("digest")),
                int(record.get("seed", 0)))
    if kind == "chaos-trial":
        return ("chaos-trial", str(record.get("digest")),
                int(record.get("seed", 0)), int(record.get("index", 0)))
    return None


@dataclass
class MergeResult:
    """What a merge produced: ordered records plus accounting."""

    records: List[Dict[str, object]] = field(default_factory=list)
    lines: List[str] = field(default_factory=list)   # canonical, newline-free
    missing: List[Tuple] = field(default_factory=list)
    sources: int = 0

    @property
    def complete(self) -> bool:
        return not self.missing


def collect_records(paths: Sequence[str]
                    ) -> Dict[Tuple, Tuple[str, Dict[str, object]]]:
    """identity -> (canonical line, record) over every source journal.

    Tolerates missing files and torn tails (``CampaignJournal.load``
    discipline); raises :class:`MergeError` if two sources disagree on
    the bytes of one trial — re-running a trial must be idempotent, so
    disagreement means nondeterminism, and aggregating either side
    would silently poison the campaign.

    The one sanctioned disagreement: a ``resource-exhaustion`` record is
    *provisional* — it describes the environment at one attempt, not the
    trial.  A real record (from a retry at reduced scale, or a resume on
    a healthier box) supersedes it; a provisional record never displaces
    a real one; two provisionals keep the first seen.  Only real-vs-real
    divergence is a determinism violation.
    """
    by_identity: Dict[Tuple, Tuple[str, Dict[str, object]]] = {}
    for path in paths:
        for record in CampaignJournal(path).load():
            identity = record_identity(record)
            if identity is None:
                continue
            line = json.dumps(record, sort_keys=True)
            prior = by_identity.get(identity)
            if prior is not None and prior[0] != line:
                if is_exhaustion_record(record):
                    continue  # provisional never displaces anything
                if is_exhaustion_record(prior[1]):
                    by_identity[identity] = (line, record)
                    continue  # real record supersedes provisional
                raise MergeError(
                    f"conflicting records for trial {identity} "
                    f"(latest from {path}): re-running a trial must "
                    f"reproduce it byte-for-byte — this campaign is "
                    f"nondeterministic or the code changed between runs")
            by_identity[identity] = (line, record)
    return by_identity


def merge_records(expected: Sequence[Tuple],
                  sources: Sequence[str]) -> MergeResult:
    """Merge source journals into serial order.

    ``expected`` is the campaign's full merge-identity list in serial
    order (one entry per trial).  Identities with no record anywhere
    (trials still outstanding after a drain or lost to exhausted
    retries) are reported in ``missing`` — the merged output is then
    the serial-order subset, which a later ``--resume`` completes.
    """
    by_identity = collect_records(sources)
    result = MergeResult(sources=len(list(sources)))
    for identity in expected:
        found = by_identity.get(identity)
        if found is None:
            result.missing.append(identity)
            continue
        line, record = found
        result.lines.append(line)
        result.records.append(record)
    return result


def write_merged(result: MergeResult, out_path: str) -> None:
    """Atomically write the merged journal (temp + rename + fsync)."""
    directory = os.path.dirname(os.path.abspath(out_path)) or "."
    os.makedirs(directory, exist_ok=True)
    tmp_path = os.path.join(
        directory, f".{os.path.basename(out_path)}.merge-tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        for line in result.lines:
            handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, out_path)
    CampaignJournal._fsync_directory(directory)
