"""Fault-tolerant parallel campaign execution: the supervisor.

Trials are embarrassingly parallel and already journaled with per-trial
identities, so the scale-out shape is simple — N worker processes, one
append-only journal each, a deterministic merge.  What makes it *usable*
is that the harness survives its own failures:

* **Supervision.**  Every worker carries a heartbeat (a shared
  monotonic timestamp its beat thread refreshes).  A worker whose
  heartbeat goes stale past the wall-clock trial timeout — frozen,
  thrashing, stopped — is SIGKILLed and replaced; a worker that simply
  dies (OOM killer, segfault, self-chaos) is detected by its exit code
  and replaced.  This complements the *in-trial* event-budget wedge
  watchdog, which can only fire while the trial's event loop is alive.
* **Classification.**  Failures *inside* the simulator (invariant
  violation, wedge, exception, relation violation) are genuine results:
  the trial builders journal them as ``status: failed`` records and
  they are never retried — they are deterministic and would fail again.
  Failures *of the harness* (worker crash, kill, hang, an exception
  escaping the trial builder) are infrastructure: the trial is re-queued
  with capped exponential backoff, up to ``max_retries`` attempts.
* **Crash-safe determinism.**  Workers journal locally with the same
  torn-tail-tolerant, canonically-serialized records the serial loop
  writes, so the merge (:mod:`repro.parallel.merge`) reproduces the
  serial journal byte-for-byte — after worker SIGKILLs, after a drain,
  and after the supervisor itself is ``kill -9``'d and the campaign
  resumed (completed trials are recovered from all surviving worker
  journals, not just the aggregate).
* **Graceful drain.**  SIGINT/SIGTERM stop dispatch, let in-flight
  trials finish journaling, then merge what exists; a second signal
  aborts hard (the journals stay safe either way).
"""

from __future__ import annotations

import glob
import heapq
import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from multiprocessing import connection as mp_connection
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments.runner import ExperimentConfig
from ..guard import ResourceExhausted, rss_bytes
from ..sanity.campaign import (CampaignJournal, CampaignResult,
                               DEFAULT_EVENT_BUDGET, config_digest,
                               exhaustion_record, is_exhaustion_record)
from .merge import MergeResult, merge_records, write_merged
from .worker import (CampaignSpec, DEFAULT_WORKER_FSYNC_EVERY, TrialTask,
                     worker_main)

__all__ = ["DEFAULT_MAX_RETRIES", "DEFAULT_TRIAL_TIMEOUT", "ParallelStats",
           "Supervisor", "SupervisorError", "run_parallel_campaign",
           "run_parallel_chaos", "run_parallel_sector"]

#: Wall-clock seconds without a heartbeat before a busy worker is
#: declared hung and killed.  Generous by default: the event-budget
#: watchdog inside the trial catches wedged simulations much earlier;
#: this net exists for frozen *processes*.
DEFAULT_TRIAL_TIMEOUT = 120.0

#: Infrastructure retries per trial before it is declared lost.
DEFAULT_MAX_RETRIES = 3

_BACKOFF_BASE = 0.25     # seconds; doubles per attempt
_BACKOFF_CAP = 4.0       # seconds; retry delay never exceeds this

_STATUS_POLL = 0.05      # supervisor tick, seconds
_JOIN_TIMEOUT = 5.0      # graceful worker shutdown allowance, seconds
_RSS_POLL = 0.2          # seconds between worker RSS samples


class SupervisorError(RuntimeError):
    """The supervisor could not complete the campaign."""


@dataclass
class ParallelStats:
    """Supervision counters, rendered into the campaign health report."""

    workers: int = 0
    restarts: int = 0          # workers respawned after death/kill
    retries: int = 0           # trials re-queued after infra failures
    infra_failures: int = 0    # crashes + hangs + harness errors
    timeouts: int = 0          # hang-detector kills (subset of above)
    lost: int = 0              # trials whose retries were exhausted
    rss_kills: int = 0         # workers SIGKILLed over the RSS ceiling
    exhausted: int = 0         # trials classified resource-exhaustion
    drained: bool = False      # SIGINT/SIGTERM graceful stop

    def as_dict(self) -> Dict[str, object]:
        return {"workers": self.workers, "restarts": self.restarts,
                "retries": self.retries,
                "infra_failures": self.infra_failures,
                "timeouts": self.timeouts, "lost": self.lost,
                "rss_kills": self.rss_kills, "exhausted": self.exhausted,
                "drained": self.drained}


def backoff_delay(attempt: int) -> float:
    """Capped exponential backoff before retry number ``attempt``."""
    return min(_BACKOFF_CAP, _BACKOFF_BASE * (2.0 ** (attempt - 1)))


def _context():
    """Fork where available (fast respawn, no re-import); spawn portably."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


class _WorkerHandle:
    """Supervisor-side view of one worker process.

    ``inbox`` is the write end of the worker's task pipe; ``status``
    the read end of its report pipe.  Per-worker pipes (not shared
    queues) are deliberate: see :func:`repro.parallel.worker.worker_main`
    — a SIGKILLed worker must not be able to wedge anyone else's
    channel.
    """

    def __init__(self, wid: int, proc, inbox, status, heartbeat,
                 journal_path: str):
        self.wid = wid
        self.proc = proc
        self.inbox = inbox
        self.status = status
        self.heartbeat = heartbeat
        self.journal_path = journal_path
        self.current: Optional[TrialTask] = None
        self.dispatched_at = 0.0
        self.timed_out = False
        self.rss_killed = False
        self.status_closed = False


class Supervisor:
    """Runs one campaign's outstanding tasks across worker processes.

    ``clock``/``sleep`` are injected (default: real monotonic time) so
    supervision logic — backoff gating, hang thresholds, RSS poll
    throttling — is testable without real waits.  No retry-logic code
    path reads ``time`` directly.

    ``max_rss_mb`` arms the per-worker RSS watchdog: a busy worker
    observed (via ``rss_sampler``, default ``/proc/<pid>/statm``) over
    the ceiling is SIGKILLed; its trial is retried **once** at reduced
    batch scale without burning an infra retry, and a second RSS kill
    classifies the trial ``resource-exhaustion`` via ``exhaust_record``
    (a position -> journal record factory; None falls back to lost
    accounting for modes with no record builder).
    """

    def __init__(self, spec: CampaignSpec, workdir: str,
                 workers: int = 2,
                 trial_timeout: float = DEFAULT_TRIAL_TIMEOUT,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 notify: Optional[Callable[[str], None]] = None,
                 max_rss_mb: Optional[float] = None,
                 rss_sampler: Callable[[int], Optional[int]] = rss_bytes,
                 exhaust_record: Optional[
                     Callable[[int, str], Optional[Dict[str, object]]]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.workdir = workdir
        self.n_workers = workers
        self.trial_timeout = trial_timeout
        self.max_retries = max_retries
        self.notify = notify or (lambda message: None)
        self.max_rss_mb = max_rss_mb
        self.rss_sampler = rss_sampler
        self.exhaust_record = exhaust_record
        self.clock = clock
        self.sleep = sleep
        self.stats = ParallelStats(workers=workers)
        self.lost_tasks: List[TrialTask] = []
        self.corpus_by_position: Dict[int, str] = {}
        self._ctx = _context()
        self._handles: Dict[int, _WorkerHandle] = {}
        self._next_wid = 0
        self._draining = False
        self._aborted = False
        self._last_rss_poll = 0.0
        self._own_journal: Optional[CampaignJournal] = None

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _WorkerHandle:
        wid = self._next_wid
        self._next_wid += 1
        task_read, task_write = self._ctx.Pipe(duplex=False)
        status_read, status_write = self._ctx.Pipe(duplex=False)
        heartbeat = self._ctx.Value("d", 0.0, lock=False)
        journal_path = os.path.join(
            self.workdir,
            f"worker-{os.getpid()}-w{wid}.jsonl")  # repro-lint: disable=DET006,SIM101 -- supervisor pid keeps resumed runs from colliding with an orphan's journal; never journaled
        proc = self._ctx.Process(
            target=worker_main, name=f"repro-worker-{wid}",
            args=(wid, self.spec, task_read, status_write, heartbeat,
                  journal_path), daemon=True)
        proc.start()
        # Close the child's ends in this process so a dead worker shows
        # up as EOF on its status pipe instead of a silent stall.
        task_read.close()
        status_write.close()
        handle = _WorkerHandle(wid, proc, task_write, status_read,
                               heartbeat, journal_path)
        self._handles[wid] = handle
        return handle

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def _install_signals(self):
        """Route SIGINT/SIGTERM to a graceful drain (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return {}
        previous = {}

        def drain(signum, frame):
            if self._draining:
                # Second signal: the operator means it. Abort hard; the
                # journals are already safe on disk.
                self._aborted = True
                raise KeyboardInterrupt
            self._draining = True
            self.stats.drained = True
            self.notify("interrupt: draining in-flight trials, then "
                        "merging (press again to abort hard)")

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, drain)
        return previous

    @staticmethod
    def _restore_signals(previous) -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _requeue(self, task: TrialTask, reason: str, now: float,
                 pending: list, outstanding: set) -> None:
        """Infrastructure failure: retry with capped backoff, or declare
        the trial lost once retries are exhausted."""
        self.stats.infra_failures += 1
        task.attempt += 1
        if task.attempt > self.max_retries:
            self.lost_tasks.append(task)
            self.stats.lost += 1
            outstanding.discard(task.position)
            self.notify(f"trial #{task.position} LOST after "
                        f"{self.max_retries} retries ({reason})")
            return
        delay = backoff_delay(task.attempt)
        task.not_before = now + delay
        heapq.heappush(pending, (task.not_before, task.position, task))
        self.stats.retries += 1
        self.notify(f"trial #{task.position} infra failure ({reason}); "
                    f"retry {task.attempt}/{self.max_retries} "
                    f"in {delay:.2f}s")

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TrialTask]) -> set:
        """Run every task; returns the set of completed positions."""
        completed: set = set()
        if not tasks:
            return completed
        pending: list = []
        for task in tasks:
            heapq.heappush(pending, (task.not_before, task.position, task))
        outstanding = {task.position for task in tasks}

        previous_signals = self._install_signals()
        try:
            for _ in range(min(self.n_workers, len(tasks))):
                self._spawn_worker()

            while outstanding:
                in_flight = sum(1 for h in self._handles.values()
                                if h.current is not None)
                if self._draining and in_flight == 0:
                    break
                if not pending and in_flight == 0:
                    # Everything dispatched died lost — nothing left.
                    break

                self._drain_status(completed, outstanding, pending)
                now = self.clock()
                self._check_rss(now)
                self._check_liveness(now, pending, outstanding)
                self._check_hangs(now)
                if not self._draining:
                    self._dispatch(now, pending, completed)
        except KeyboardInterrupt:
            self._aborted = True
        finally:
            self._shutdown()
            if self._own_journal is not None:
                self._own_journal.close()
                self._own_journal = None
            self._restore_signals(previous_signals)
        return completed

    def _drain_status(self, completed: set, outstanding: set,
                      pending: list) -> None:
        """Read every ready status pipe; waits at most one poll tick.

        A handle whose pipe hits EOF (worker gone) is only *marked*
        here — reaping, requeueing its trial, and respawning belong to
        :meth:`_check_liveness`, which also covers workers that died
        without ever tearing their pipe.
        """
        by_connection = {h.status: h for h in self._handles.values()
                         if not h.status_closed}
        if not by_connection:
            self.sleep(_STATUS_POLL)
            return
        ready = mp_connection.wait(list(by_connection), _STATUS_POLL)
        for conn in ready:
            handle = by_connection[conn]
            while True:
                try:
                    if not conn.poll(0):
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    # Worker gone; an EOF'd pipe polls ready forever,
                    # so drop it from the wait set.
                    handle.status_closed = True
                    break
                kind, _, position, extra = message
                if kind == "done":
                    completed.add(position)
                    outstanding.discard(position)
                    if extra is not None:
                        self.corpus_by_position[position] = extra
                    if handle.current is not None \
                            and handle.current.position == position:
                        handle.current = None
                elif kind == "error":
                    task = None
                    if handle.current is not None \
                            and handle.current.position == position:
                        task = handle.current
                        handle.current = None
                    if task is not None and position in outstanding:
                        self._requeue(task, extra, self.clock(),
                                      pending, outstanding)
                # "bye" is informational

    def _check_rss(self, now: float) -> None:
        """SIGKILL busy workers whose resident set crossed the ceiling.

        Sampling is throttled to one sweep per ``_RSS_POLL`` (a /proc
        read per worker per sweep), so an idle supervisor tick stays
        cheap.  The kill itself is the same lever the hang detector
        pulls; classification happens at reap time, keyed off
        ``rss_killed``.
        """
        if self.max_rss_mb is None:
            return
        if now - self._last_rss_poll < _RSS_POLL:
            return
        self._last_rss_poll = now
        ceiling = int(self.max_rss_mb * (1 << 20))
        for handle in self._handles.values():
            if handle.current is None or handle.rss_killed \
                    or handle.timed_out:
                continue
            if handle.proc.exitcode is not None or handle.proc.pid is None:
                continue
            rss = self.rss_sampler(handle.proc.pid)
            if rss is not None and rss > ceiling:
                handle.rss_killed = True
                self.stats.rss_kills += 1
                self.notify(
                    f"worker w{handle.wid} over RSS ceiling "
                    f"({rss / (1 << 20):.0f} > {self.max_rss_mb:.0f} MiB) "
                    f"on trial #{handle.current.position}; killed")
                handle.proc.kill()

    def _exhaust(self, task: TrialTask, outstanding: set) -> None:
        """Second RSS kill: classify the trial as resource-exhaustion.

        The classified record goes into a supervisor-owned journal in
        the workdir (named ``worker-*`` so the merge glob and resume
        recovery pick it up like any worker's).  It is *provisional* —
        resume excludes it from the done-set and a later real record
        supersedes it in the merge — so a re-run on a bigger box
        converges to the healthy campaign's bytes.
        """
        outstanding.discard(task.position)
        self.stats.exhausted += 1
        message = (f"worker RSS exceeded {self.max_rss_mb:.0f} MiB ceiling "
                   f"at full and reduced scale")
        record = None
        if self.exhaust_record is not None:
            record = self.exhaust_record(task.position, message)
        if record is not None:
            if self._own_journal is None:
                self._own_journal = CampaignJournal(os.path.join(
                    self.workdir,
                    f"worker-{os.getpid()}-supervisor.jsonl"))  # repro-lint: disable=DET006,SIM101 -- matches the worker journal naming scheme; never journaled
            self._own_journal.append(record)
        else:
            # No record builder for this mode: account it as lost so
            # the exit code still refuses to claim completeness.
            self.lost_tasks.append(task)
            self.stats.lost += 1
        self.notify(f"trial #{task.position} EXHAUSTED: {message}")

    def _check_liveness(self, now: float, pending: list,
                        outstanding: set) -> None:
        """Reap dead workers; requeue their trial; respawn replacements."""
        for wid in list(self._handles):
            handle = self._handles[wid]
            if handle.proc.exitcode is None:
                continue
            del self._handles[wid]
            task = handle.current
            if task is not None and handle.rss_killed:
                if task.reduced:
                    self._exhaust(task, outstanding)
                else:
                    # One free retry at reduced scale: an RSS blowup is
                    # often batch-sized, and the fresh worker sheds any
                    # heap its predecessor grew.  Deliberately not an
                    # infra retry — the attempt counter stays put.
                    task.reduced = True
                    task.not_before = now
                    heapq.heappush(pending,
                                   (task.not_before, task.position, task))
                    self.notify(f"trial #{task.position} over RSS ceiling; "
                                f"retrying once at reduced scale")
            elif task is not None:
                reason = ("hang: no heartbeat for "
                          f"{self.trial_timeout:.0f}s, killed"
                          if handle.timed_out else
                          f"worker died (exitcode {handle.proc.exitcode})")
                self._requeue(task, reason, now, pending, outstanding)
            if outstanding and not self._draining:
                self._spawn_worker()
                self.stats.restarts += 1
                self.notify(f"worker w{wid} replaced "
                            f"(exitcode {handle.proc.exitcode})")

    def _check_hangs(self, now: float) -> None:
        """SIGKILL busy workers whose heartbeat went stale."""
        for handle in self._handles.values():
            if handle.current is None or handle.timed_out:
                continue
            last_sign_of_life = max(handle.dispatched_at,
                                    handle.heartbeat.value)
            if now - last_sign_of_life > self.trial_timeout:
                handle.timed_out = True
                self.stats.timeouts += 1
                handle.proc.kill()

    def _dispatch(self, now: float, pending: list, completed: set) -> None:
        idle = [h for h in self._handles.values()
                if h.current is None and h.proc.exitcode is None]
        for handle in idle:
            task = None
            while pending:
                not_before, _, candidate = pending[0]
                if not_before > now:
                    break  # heap is not_before-ordered: rest are later
                heapq.heappop(pending)
                if candidate.position in completed:
                    continue  # a stale retry beat us to it
                task = candidate
                break
            if task is None:
                return
            try:
                handle.inbox.send(task)
            except (OSError, ValueError):
                # Worker died between liveness check and dispatch; put
                # the task back — _check_liveness reaps the handle.
                heapq.heappush(pending,
                               (task.not_before, task.position, task))
                continue
            handle.current = task
            handle.dispatched_at = now

    def _shutdown(self) -> None:
        for handle in self._handles.values():
            if self._aborted:
                handle.proc.terminate()
                continue
            try:
                handle.inbox.send(None)
            except (OSError, ValueError):
                handle.proc.terminate()
        deadline = self.clock() + _JOIN_TIMEOUT
        for handle in self._handles.values():
            remaining = max(0.1, deadline - self.clock())
            handle.proc.join(timeout=remaining)
            if handle.proc.exitcode is None:
                handle.proc.kill()
                handle.proc.join(timeout=1.0)
            for conn in (handle.inbox, handle.status):
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        self._handles.clear()


# ----------------------------------------------------------------------
# campaign drivers: plan -> supervise -> merge -> result
# ----------------------------------------------------------------------

@dataclass
class _PlannedTrial:
    """One serial position with both identities it is known by."""

    position: int
    merge_identity: Tuple     # per-record identity used by the merge
    resume_key: Tuple         # serial resume semantics (digest, seed[, rel])


def _resume_key_of(record: Dict[str, object]) -> Optional[Tuple]:
    """The serial resume identity of a journaled record."""
    kind = record.get("kind")
    if kind == "trial":
        return (str(record.get("digest")), int(record.get("seed", 0)))
    if kind == "chaos-trial":
        key = (str(record.get("digest")), int(record.get("seed", 0)))
        if record.get("mode") == "differential":
            return key + (str(record.get("relation")),)
        return key
    return None


def _plan_campaign(configs: Sequence[ExperimentConfig]) -> List[_PlannedTrial]:
    plan = []
    for position, config in enumerate(configs):
        digest = config_digest(config)
        identity = ("trial", digest, config.seed)
        plan.append(_PlannedTrial(position, identity, (digest, config.seed)))
    return plan


def _plan_chaos(trials: int, master_seed: int, space,
                differential: bool) -> List[_PlannedTrial]:
    from ..chaos.generator import ScenarioGenerator
    generator = ScenarioGenerator(master_seed, space)
    plan = []
    for position in range(trials):
        scenario = generator.scenario(position)
        digest = scenario.digest()
        identity = ("chaos-trial", digest, scenario.seed, position)
        resume_key = (digest, scenario.seed)
        if differential:
            from ..chaos.differential import relation_for_trial
            resume_key = resume_key + (relation_for_trial(position),)
        plan.append(_PlannedTrial(position, identity, resume_key))
    return plan


def _run_supervised(spec: CampaignSpec, plan: List[_PlannedTrial],
                    journal_path: Optional[str], resume: bool,
                    workers: int, trial_timeout: float, max_retries: int,
                    notify: Optional[Callable[[str], None]],
                    max_rss_mb: Optional[float] = None,
                    rss_sampler: Callable[[int], Optional[int]] = rss_bytes,
                    exhaust_record: Optional[
                        Callable[[int, str],
                                 Optional[Dict[str, object]]]] = None
                    ) -> Tuple[MergeResult, set, ParallelStats, Dict[int, str]]:
    """Shared driver: resume-plan, supervise, merge, clean up.

    Returns ``(merged, resumed_positions, stats, corpus_by_position)``.
    The merged journal (when ``journal_path`` is given) is written
    atomically; worker journals are removed once their records are
    safely in the aggregate, so only a hard-killed supervisor leaves a
    ``<journal>.workers/`` directory behind — exactly the case where
    ``--resume`` needs it.
    """
    from .merge import collect_records

    if resume and not journal_path:
        raise ValueError("resume requires a journal path")

    temp_workdir = journal_path is None
    workdir = (tempfile.mkdtemp(prefix="repro-parallel-")
               if temp_workdir else journal_path + ".workers")

    done_before: Dict[Tuple, Dict[str, object]] = {}
    resume_sources: List[str] = []
    if resume:
        if os.path.exists(journal_path):
            resume_sources.append(journal_path)
        resume_sources.extend(
            sorted(glob.glob(os.path.join(workdir, "worker-*.jsonl"))))
        if not resume_sources:
            raise FileNotFoundError(
                f"cannot resume: neither journal {journal_path!r} nor "
                f"worker journals under {workdir!r} exist")
        for _, record in collect_records(resume_sources).values():
            key = _resume_key_of(record)
            if key is not None and not is_exhaustion_record(record):
                # Exhaustion records are provisional: resume re-runs
                # them (this box may have the memory the last one
                # lacked) and the merge supersedes them with the result.
                done_before[key] = record
    elif not temp_workdir and os.path.isdir(workdir):
        # A fresh (non-resume) run must not inherit stale worker
        # journals from an earlier campaign at the same path.
        shutil.rmtree(workdir)
    os.makedirs(workdir, exist_ok=True)

    resumed_positions = {p.position for p in plan
                         if p.resume_key in done_before}
    tasks = [TrialTask(position=p.position, key=p.resume_key)
             for p in plan if p.position not in resumed_positions]

    supervisor = Supervisor(spec, workdir, workers=workers,
                            trial_timeout=trial_timeout,
                            max_retries=max_retries, notify=notify,
                            max_rss_mb=max_rss_mb, rss_sampler=rss_sampler,
                            exhaust_record=exhaust_record)
    try:
        supervisor.run(tasks)
    finally:
        # Merge whatever exists even if the loop raised: every journaled
        # record is durable and the aggregate is the resume anchor.
        sources = list(resume_sources)
        sources.extend(
            sorted(glob.glob(os.path.join(workdir, "worker-*.jsonl"))))
        merged = merge_records([p.merge_identity for p in plan],
                               sources)
        if journal_path is not None:
            write_merged(merged, journal_path)
        if temp_workdir or journal_path is not None:
            # All merged records now live in the aggregate (or the
            # caller never asked for persistence); the per-worker
            # journals are redundant.
            shutil.rmtree(workdir, ignore_errors=True)

    return merged, resumed_positions, supervisor.stats, \
        supervisor.corpus_by_position


def run_parallel_campaign(configs: Sequence[ExperimentConfig],
                          journal_path: Optional[str] = None,
                          resume: bool = False,
                          event_budget: Optional[int] = DEFAULT_EVENT_BUDGET,
                          workers: int = 2,
                          trial_timeout: float = DEFAULT_TRIAL_TIMEOUT,
                          max_retries: int = DEFAULT_MAX_RETRIES,
                          fsync_every: int = DEFAULT_WORKER_FSYNC_EVERY,
                          max_rss_mb: Optional[float] = None,
                          rss_sampler: Callable[[int],
                                                Optional[int]] = rss_bytes,
                          notify: Optional[Callable[[str], None]] = None
                          ) -> CampaignResult:
    """Parallel, supervised equivalent of
    :func:`repro.sanity.campaign.run_campaign`.

    The merged journal is byte-identical to the serial run's; the
    result's ``records`` match a serial resume of the same journal
    (``resumed: true`` on carried-over records).  Live
    :class:`RunResult` objects are not transported across processes, so
    ``result.results`` stays empty.  Supervision counters land in
    ``result.parallel``.  ``max_rss_mb`` arms the per-worker RSS
    watchdog (``rss_sampler`` is its test-injection point).
    """
    configs = list(configs)
    spec = CampaignSpec(mode="campaign", configs=configs,
                        event_budget=event_budget, fsync_every=fsync_every)
    plan = _plan_campaign(configs)

    def exhaust(position: int, message: str) -> Dict[str, object]:
        return exhaustion_record(configs[position],
                                 ResourceExhausted("rss", message))

    merged, resumed_positions, stats, _ = _run_supervised(
        spec, plan, journal_path, resume, workers, trial_timeout,
        max_retries, notify, max_rss_mb=max_rss_mb,
        rss_sampler=rss_sampler, exhaust_record=exhaust)

    result = CampaignResult(journal_path=journal_path)
    result.parallel = stats.as_dict()
    result.stopped_early = stats.drained or bool(merged.missing)
    result.exhausted = stats.exhausted > 0
    for planned, record in zip(plan, _aligned(merged, plan)):
        if record is None:
            continue
        record = dict(record)
        if planned.position in resumed_positions:
            record["resumed"] = True
        result.records.append(record)
    return result


def run_parallel_chaos(trials: int,
                       master_seed: int = 0,
                       space=None,
                       shrink_budget: Optional[int] = None,
                       event_budget: Optional[int] = None,
                       determinism: bool = True,
                       journal_path: Optional[str] = None,
                       resume: bool = False,
                       corpus_dir: Optional[str] = None,
                       differential: bool = False,
                       workers: int = 2,
                       trial_timeout: float = DEFAULT_TRIAL_TIMEOUT,
                       max_retries: int = DEFAULT_MAX_RETRIES,
                       fsync_every: int = DEFAULT_WORKER_FSYNC_EVERY,
                       max_rss_mb: Optional[float] = None,
                       rss_sampler: Callable[[int],
                                             Optional[int]] = rss_bytes,
                       notify: Optional[Callable[[str], None]] = None):
    """Parallel, supervised equivalent of ``run_chaos_campaign`` /
    ``run_differential_campaign`` (selected by ``differential``).

    Chaos trials have no per-record exhaustion builder (their records
    embed shrink state), so a double RSS kill falls back to the *lost*
    accounting path — still a classified, non-zero, resumable end.
    """
    from ..chaos.campaign import ChaosResult
    from ..chaos.oracles import CHAOS_EVENT_BUDGET
    from ..chaos.shrinker import DEFAULT_SHRINK_BUDGET

    if trials <= 0:
        raise ValueError("trials must be positive")
    if shrink_budget is None:
        shrink_budget = DEFAULT_SHRINK_BUDGET
    if event_budget is None:
        event_budget = CHAOS_EVENT_BUDGET
    mode = "differential" if differential else "chaos"
    spec = CampaignSpec(mode=mode, event_budget=event_budget,
                        master_seed=master_seed, space=space,
                        shrink_budget=shrink_budget,
                        determinism=determinism, corpus_dir=corpus_dir,
                        fsync_every=fsync_every)
    plan = _plan_chaos(trials, master_seed, space, differential)
    merged, resumed_positions, stats, corpus_by_position = _run_supervised(
        spec, plan, journal_path, resume, workers, trial_timeout,
        max_retries, notify, max_rss_mb=max_rss_mb,
        rss_sampler=rss_sampler)

    result = ChaosResult(journal_path=journal_path)
    result.parallel = stats.as_dict()
    result.stopped_early = stats.drained or bool(merged.missing)
    for planned, record in zip(plan, _aligned(merged, plan)):
        if record is None:
            continue
        record = dict(record)
        if planned.position in resumed_positions:
            record["resumed"] = True
        result.records.append(record)
        name = record.get("corpus_entry")
        if name and corpus_dir and planned.position not in resumed_positions:
            result.corpus_paths.append(os.path.join(corpus_dir, str(name)))
    return result


def _plan_sector(config) -> List[_PlannedTrial]:
    """One planned trial per shard; the shard index plays the seed."""
    from ..experiments.population import sector_digest
    digest = sector_digest(config)
    return [_PlannedTrial(position, ("trial", digest, position),
                          (digest, position))
            for position in range(config.n_shards)]


def run_parallel_sector(config,
                        journal_path: Optional[str] = None,
                        resume: bool = False,
                        workers: int = 2,
                        trial_timeout: float = DEFAULT_TRIAL_TIMEOUT,
                        max_retries: int = DEFAULT_MAX_RETRIES,
                        fsync_every: int = DEFAULT_WORKER_FSYNC_EVERY,
                        max_rss_mb: Optional[float] = None,
                        rss_sampler: Callable[[int],
                                              Optional[int]] = rss_bytes,
                        notify: Optional[Callable[[str], None]] = None
                        ) -> CampaignResult:
    """Parallel, supervised equivalent of
    :func:`repro.experiments.population.run_sector_campaign`.

    Shard records carry associative sketches, so the merged journal —
    and therefore :func:`~repro.experiments.population.aggregate_sector`
    over it — is byte-identical to the serial run for any worker count.
    This is the 10^5-10^6-user path: per-worker memory is O(shard
    chunk), the aggregate is O(sketch bins).
    """
    from ..experiments.population import (SectorConfig,
                                          sector_exhaustion_record)
    if not isinstance(config, SectorConfig):
        raise TypeError("run_parallel_sector needs a SectorConfig")
    spec = CampaignSpec(mode="sector", sector=config,
                        fsync_every=fsync_every)
    plan = _plan_sector(config)

    def exhaust(position: int, message: str) -> Dict[str, object]:
        return sector_exhaustion_record(
            config, position, ResourceExhausted("rss", message))

    merged, resumed_positions, stats, _ = _run_supervised(
        spec, plan, journal_path, resume, workers, trial_timeout,
        max_retries, notify, max_rss_mb=max_rss_mb,
        rss_sampler=rss_sampler, exhaust_record=exhaust)

    result = CampaignResult(journal_path=journal_path)
    result.parallel = stats.as_dict()
    result.stopped_early = stats.drained or bool(merged.missing)
    result.exhausted = stats.exhausted > 0
    for planned, record in zip(plan, _aligned(merged, plan)):
        if record is None:
            continue
        record = dict(record)
        if planned.position in resumed_positions:
            record["resumed"] = True
        result.records.append(record)
    return result


def _aligned(merged: MergeResult, plan: List[_PlannedTrial]):
    """Merged records aligned to the plan (None where missing)."""
    missing = set(merged.missing)
    aligned: List[Optional[Dict[str, object]]] = []
    index = 0
    for planned in plan:
        if planned.merge_identity in missing:
            aligned.append(None)
            continue
        aligned.append(merged.records[index])
        index += 1
    return aligned
