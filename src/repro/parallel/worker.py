"""The campaign worker process: pull trials, journal locally, heartbeat.

A worker is deliberately *dumb*: it pulls one task at a time from its
inbox, runs it through the exact same trial builders the serial loops
use (:func:`repro.sanity.campaign.run_trial`,
:func:`repro.chaos.campaign.run_chaos_trial`,
:func:`repro.chaos.differential.run_differential_trial`), appends the
record to its own append-only journal, and reports back.  All policy —
retry, backoff, hang detection, merge — lives in the supervisor, so a
worker can be SIGKILLed at any instruction without corrupting anything:
its journal loses at most one torn tail line, and the trial it held is
simply re-run elsewhere (producing a byte-identical record, because the
builders are deterministic).

Failure classification starts here: a *genuine* failure (invariant
violation, wedge, simulator exception, relation violation) is caught by
the trial builder and becomes a journaled ``status: failed`` record —
the worker reports ``done`` and is never retried.  Only harness-level
trouble — the worker dying, hanging, or raising outside the builder —
surfaces as an *infrastructure* failure for the supervisor to retry.

Self-chaos hooks (used by ``tests/test_parallel_supervision.py`` and
the CI ``parallel-smoke`` job to turn the fault-injection discipline on
the harness itself):

* ``REPRO_PARALLEL_KILL=3,11`` — SIGKILL the worker right before it
  would run the trial at a listed serial position (first attempt only,
  so the retry goes through).
* ``REPRO_PARALLEL_WEDGE=5`` — silence the heartbeat and sleep forever
  before a listed position (first attempt only), simulating a frozen
  worker for the hang detector.
* ``REPRO_PARALLEL_BALLOON=5:256`` — allocate a 256 MiB balloon and
  hold it for ~1 s before running the trial at position 5, so the
  supervisor's RSS watchdog has something real to catch.  By default
  the balloon only inflates at *full* scale (a reduced-scale retry runs
  clean, modelling a batch-size-driven blowup); a trailing ``!``
  (``5:256!``) inflates on every attempt, driving the trial all the way
  to its classified ``resource-exhaustion`` end.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..experiments.runner import ExperimentConfig
from ..sanity.campaign import CampaignJournal, run_trial

__all__ = ["CampaignSpec", "TrialTask", "worker_main",
           "DEFAULT_WORKER_FSYNC_EVERY"]

#: Seconds a self-chaos balloon stays inflated: long enough for the
#: supervisor's ~0.2 s RSS poll to observe it, short enough that an
#: un-watched balloon (no ``--max-rss-mb``) barely slows the campaign.
_BALLOON_HOLD_S = 1.0

#: Heartbeat period, seconds.  The supervisor's hang threshold is a
#: wall-clock *trial timeout*, orders of magnitude larger than this.
BEAT_INTERVAL = 0.2

#: How long a worker waits on its inbox before checking whether its
#: supervisor still exists (a re-parented worker is an orphan from a
#: ``kill -9``'d supervisor and must exit rather than fight a resumed
#: campaign for its journal files).
_ORPHAN_POLL = 0.5

#: Batched-fsync default for worker journals: one fsync per N records
#: keeps parallel trial throughput from being fsync-bound.  A killed
#: *process* loses nothing (the OS already holds the writes); only a
#: machine crash can lose the unsynced tail, and resume re-runs it.
DEFAULT_WORKER_FSYNC_EVERY = 16


@dataclass
class CampaignSpec:
    """Everything a worker needs to run any trial of one campaign.

    Shipped to each worker once at spawn; tasks then only carry their
    serial position.  Must stay picklable (spawn-safe), which it is:
    plain data plus :class:`ExperimentConfig`/`SearchSpace` dataclasses.
    """

    mode: str            # "campaign" | "chaos" | "differential" | "sector"
    configs: Optional[List[ExperimentConfig]] = None      # campaign mode
    event_budget: Optional[int] = None
    master_seed: int = 0                                  # chaos modes
    space: Optional[object] = None                        # SearchSpace
    shrink_budget: int = 0
    determinism: bool = True
    corpus_dir: Optional[str] = None
    fsync_every: int = DEFAULT_WORKER_FSYNC_EVERY
    sector: Optional[object] = None   # SectorConfig, sector mode

    def __post_init__(self) -> None:
        if self.mode not in ("campaign", "chaos", "differential", "sector"):
            raise ValueError(f"unknown campaign mode {self.mode!r}")
        if self.mode == "campaign" and not self.configs:
            raise ValueError("campaign mode needs configs")
        if self.mode == "sector" and self.sector is None:
            raise ValueError("sector mode needs a sector config")


@dataclass
class TrialTask:
    """One unit of work: the trial at one serial position.

    ``key`` is the trial's resume identity — (digest, seed) for plain
    campaigns and chaos, (digest, seed, relation) for differential —
    and ``position`` its serial-order index, which doubles as the merge
    order and the self-chaos injection key.  ``attempt`` counts
    infrastructure retries; ``not_before`` is the supervisor-side
    backoff gate (never shipped anywhere meaningful — workers ignore
    it).  ``reduced`` is set by the supervisor after an RSS-ceiling
    kill: the one retry the trial gets runs at reduced batch scale
    (sector shards shrink their chunk; other modes run unchanged), and
    a second kill classifies the trial as ``resource-exhaustion``.
    """

    position: int
    key: Tuple
    attempt: int = 0
    not_before: float = 0.0
    reduced: bool = False


class TrialRunner:
    """Executes tasks for one spec, caching per-campaign state."""

    def __init__(self, spec: CampaignSpec):
        self.spec = spec
        self._generator = None
        if spec.mode in ("chaos", "differential"):
            from ..chaos.generator import ScenarioGenerator
            self._generator = ScenarioGenerator(spec.master_seed, spec.space)

    def run(self, position: int,
            reduced: bool = False) -> Tuple[dict, Optional[str]]:
        """(journal record, corpus path or None) for one serial position.

        ``reduced`` is the RSS-retry lever: sector shards re-run with a
        small streaming chunk, which is the only per-user allocation
        they make; the other modes have no batch-size knob, so reduced
        simply re-runs them (the retry still matters — the *worker* is
        fresh, without whatever heap the previous trials grew).
        """
        spec = self.spec
        if spec.mode == "campaign":
            record = run_trial(spec.configs[position],
                               event_budget=spec.event_budget)
            return record, None
        if spec.mode == "sector":
            from ..experiments.population import (DEFAULT_SHARD_CHUNK,
                                                  REDUCED_SHARD_CHUNK,
                                                  run_sector_trial)
            record = run_sector_trial(
                spec.sector, position,
                chunk=REDUCED_SHARD_CHUNK if reduced
                else DEFAULT_SHARD_CHUNK)
            return record, None
        scenario = self._generator.scenario(position)
        if spec.mode == "chaos":
            from ..chaos.campaign import run_chaos_trial
            from ..chaos.oracles import check_scenario

            def check(candidate):
                return check_scenario(candidate,
                                      event_budget=spec.event_budget,
                                      determinism=spec.determinism)
            return run_chaos_trial(scenario, position, spec.master_seed,
                                   check, shrink_budget=spec.shrink_budget,
                                   corpus_dir=spec.corpus_dir)
        from ..chaos.differential import (check_differential,
                                          relation_for_trial,
                                          run_differential_trial)

        def check2(candidate, relation):
            return check_differential(candidate, relation,
                                      event_budget=spec.event_budget)
        return run_differential_trial(scenario, relation_for_trial(position),
                                      position, spec.master_seed, check2,
                                      shrink_budget=spec.shrink_budget,
                                      corpus_dir=spec.corpus_dir)


def _positions_env(name: str) -> FrozenSet[int]:
    """Self-chaos injection positions from an env var ("3,11" style)."""
    raw = os.environ.get(name, "")
    positions = set()
    for part in raw.split(","):
        part = part.strip()
        if part.isdigit():
            positions.add(int(part))
    return frozenset(positions)


def _balloon_env() -> Dict[int, Tuple[int, bool]]:
    """``REPRO_PARALLEL_BALLOON`` spec: position -> (MiB, every attempt).

    Clause syntax ``pos[:mb][!]`` — default 128 MiB; the ``!`` makes the
    balloon inflate on the reduced-scale retry too (see module
    docstring).  Malformed clauses are ignored like the other position
    hooks: these are test levers, not user API.
    """
    balloons: Dict[int, Tuple[int, bool]] = {}
    for part in os.environ.get("REPRO_PARALLEL_BALLOON", "").split(","):
        part = part.strip()
        if not part:
            continue
        every = part.endswith("!")
        if every:
            part = part[:-1]
        pos_text, _, mb_text = part.partition(":")
        if not pos_text.isdigit():
            continue
        mb = int(mb_text) if mb_text.isdigit() else 128
        balloons[int(pos_text)] = (mb, every)
    return balloons


def worker_main(worker_id: int, spec: CampaignSpec, inbox, status,
                heartbeat, journal_path: str) -> None:
    """Worker process entry point.

    ``inbox`` (a read :class:`multiprocessing.connection.Connection`)
    delivers :class:`TrialTask`s (``None`` = clean shutdown); ``status``
    (a write connection) carries ``("done"|"error", worker_id,
    position, extra)`` tuples back; ``heartbeat`` is a shared double the
    beat thread stamps with ``time.monotonic()`` — CLOCK_MONOTONIC is
    system-wide on Linux, so the supervisor compares it against its own
    clock.

    Channels are per-worker *pipes*, never shared queues, and that is a
    load-bearing choice: a ``multiprocessing.Queue`` shared by many
    writers guards its pipe with a cross-process lock, and a worker
    SIGKILLed mid-``put`` dies holding it — silently wedging every
    *other* worker's reporting.  With one single-writer pipe per worker,
    status messages are small enough to be atomic kernel writes and a
    dead worker can only tear its own channel, which the supervisor
    already treats as a worker death.
    """
    # The supervisor owns interrupt policy: a ^C in the terminal goes to
    # the whole process group, and workers must keep draining their
    # in-flight trial rather than die mid-record.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    parent = os.getppid()
    stop_beat = threading.Event()

    def beat() -> None:
        while not stop_beat.wait(BEAT_INTERVAL):
            heartbeat.value = time.monotonic()  # repro-lint: disable=DET001 -- liveness signal, never journaled

    heartbeat.value = time.monotonic()  # repro-lint: disable=DET001 -- liveness signal, never journaled
    threading.Thread(target=beat, name="heartbeat", daemon=True).start()

    def report(kind: str, position: int, extra) -> bool:
        """Send one status tuple; False once the supervisor is gone.

        Messages stay far under PIPE_BUF so a SIGKILL cannot leave a
        half-written tuple in the pipe.
        """
        if isinstance(extra, str):
            extra = extra[:400]
        try:
            status.send((kind, worker_id, position, extra))
            return True
        except (OSError, ValueError):  # supervisor dead or pipe closed
            return False

    kills = _positions_env("REPRO_PARALLEL_KILL")
    wedges = _positions_env("REPRO_PARALLEL_WEDGE")
    balloons = _balloon_env()
    runner = TrialRunner(spec)
    journal = CampaignJournal(journal_path, fsync_every=spec.fsync_every)
    try:
        while True:
            if not inbox.poll(_ORPHAN_POLL):
                if os.getppid() != parent:
                    return  # orphaned: the supervisor was hard-killed
                continue
            try:
                task = inbox.recv()
            except (EOFError, OSError):
                return  # supervisor closed our inbox (or died mid-send)
            if task is None:
                return
            if task.attempt == 0 and task.position in kills:
                # Self-chaos: die exactly where a real OOM kill would.
                os.kill(os.getpid(), signal.SIGKILL)  # repro-lint: disable=DET006 -- self-chaos test hook, not sim code
            if task.attempt == 0 and task.position in wedges:
                # Self-chaos: look frozen — no heartbeat, no progress.
                stop_beat.set()
                time.sleep(3600)  # repro-lint: disable=SIM001 -- deliberate harness wedge, not sim code
            balloon = balloons.get(task.position)
            if balloon is not None:
                mb, every = balloon
                if every or not task.reduced:
                    # Self-chaos: grow RSS for real and hold it with the
                    # heartbeat alive, so only the supervisor's RSS
                    # watchdog (not the hang detector) can object.
                    blob = b"\xab" * (mb << 20)
                    time.sleep(_BALLOON_HOLD_S)  # repro-lint: disable=SIM001 -- self-chaos balloon hold, not sim code
                    del blob
            try:
                record, corpus_path = runner.run(task.position,
                                                 reduced=task.reduced)
                journal.append(record)
            except BaseException as exc:  # noqa: BLE001 - harness fault
                # Anything escaping the trial builders is infrastructure
                # trouble (the builders already convert genuine simulator
                # failures into records); report it for a capped retry.
                if not report("error", task.position,
                              f"{type(exc).__name__}: {exc}"):
                    return
                continue
            if not report("done", task.position, corpus_path):
                return
    finally:
        journal.close()
        report("bye", -1, None)
