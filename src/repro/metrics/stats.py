"""Statistics used by the figure generators: box plots, CDFs, CIs —
plus the bounded-memory streaming sketches population campaigns run on.

Implemented with the standard library only (the simulation itself has no
numpy dependency); numpy-backed benches may convert if they wish.

Streaming sketches
------------------
:class:`StreamingMoments`, :class:`QuantileSketch`, and the combined
:class:`MetricSketch` replace unbounded per-trial/per-user value lists:
memory is O(1) per metric no matter how many samples stream through, and
— the property everything downstream leans on — **merge is associative,
commutative, and byte-stable**.  The issue named P²/t-digest, but both
are insertion-order-dependent (their markers/centroids drift with
arrival order), which would break the serial-vs-``--workers``
byte-identity contract of :mod:`repro.parallel.merge`.  Instead the
quantile sketch uses DDSketch-style logarithmic bins with integer
counts, and the moments use fixed-point integer accumulators, so any
sharding of the same samples merges to the identical serialized bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["BoxStats", "MetricSketch", "QuantileSketch", "StreamingMoments",
           "box_stats", "percentile", "cdf_points",
           "mean_confidence_interval", "mean"]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass
class BoxStats:
    """The five-number summary plus mean (the paper's Figure 3 box plot)."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float
    n: int


def box_stats(values: Sequence[float]) -> BoxStats:
    if not values:
        raise ValueError("box_stats of empty sequence")
    return BoxStats(minimum=min(values),
                    p25=percentile(values, 25),
                    median=percentile(values, 50),
                    p75=percentile(values, 75),
                    maximum=max(values),
                    mean=mean(values),
                    n=len(values))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as [(value, fraction <= value)] (Figure 14)."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


# Two-sided t critical values at 95% for small df; 1.96 beyond.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
        20: 2.086, 25: 2.060, 30: 2.042}


def _t_critical(df: int) -> float:
    if df <= 0:
        raise ValueError("df must be positive")
    if df in _T95:
        return _T95[df]
    for key in sorted(_T95):
        if df < key:
            return _T95[key]
    return 1.96


def mean_confidence_interval(values: Sequence[float]
                             ) -> Tuple[float, float, float]:
    """(mean, lo, hi) 95% CI via Student's t (Figure 4 error bars)."""
    m = mean(values)
    if len(values) < 2:
        return (m, m, m)
    var = sum((v - m) ** 2 for v in values) / (len(values) - 1)
    half = _t_critical(len(values) - 1) * math.sqrt(var / len(values))
    return (m, m - half, m + half)


# ---------------------------------------------------------------------------
# streaming sketches
# ---------------------------------------------------------------------------

#: Fixed-point scale for the moment accumulators: one micro-unit of the
#: measured quantity.  Integer sums commute exactly (no float rounding
#: order-dependence), which is what makes the merge byte-stable.
_MOMENT_SCALE = 10 ** 6


class StreamingMoments:
    """Order-independent streaming count/mean/variance/min/max.

    Values are quantized to :data:`_MOMENT_SCALE` fixed-point integers
    and summed as Python ints (arbitrary precision, no overflow), so
    ``add`` order and merge shape cannot change a single serialized
    byte.  The quantization error (0.5 micro-unit per sample) is far
    below the simulator's own modelling noise.
    """

    __slots__ = ("n", "sum_fp", "sumsq_fp", "min_fp", "max_fp")

    def __init__(self) -> None:
        self.n = 0
        self.sum_fp = 0
        self.sumsq_fp = 0
        self.min_fp: Optional[int] = None
        self.max_fp: Optional[int] = None

    def add(self, value: float) -> None:
        fp = round(value * _MOMENT_SCALE)
        self.n += 1
        self.sum_fp += fp
        self.sumsq_fp += fp * fp
        if self.min_fp is None or fp < self.min_fp:
            self.min_fp = fp
        if self.max_fp is None or fp > self.max_fp:
            self.max_fp = fp

    def merge(self, other: "StreamingMoments") -> None:
        self.n += other.n
        self.sum_fp += other.sum_fp
        self.sumsq_fp += other.sumsq_fp
        for bound in ("min_fp", "max_fp"):
            theirs = getattr(other, bound)
            if theirs is None:
                continue
            ours = getattr(self, bound)
            if ours is None or (theirs < ours if bound == "min_fp"
                                else theirs > ours):
                setattr(self, bound, theirs)

    # -- derived statistics (floats, computed from exact ints) ----------
    @property
    def mean(self) -> Optional[float]:
        if self.n == 0:
            return None
        return self.sum_fp / (self.n * _MOMENT_SCALE)

    @property
    def variance(self) -> Optional[float]:
        if self.n == 0:
            return None
        mu = self.sum_fp / self.n
        return max(0.0, (self.sumsq_fp / self.n - mu * mu)
                   / (_MOMENT_SCALE * _MOMENT_SCALE))

    @property
    def minimum(self) -> Optional[float]:
        return None if self.min_fp is None else self.min_fp / _MOMENT_SCALE

    @property
    def maximum(self) -> Optional[float]:
        return None if self.max_fp is None else self.max_fp / _MOMENT_SCALE

    def to_dict(self) -> Dict[str, object]:
        return {"n": self.n, "sum": self.sum_fp, "sumsq": self.sumsq_fp,
                "min": self.min_fp, "max": self.max_fp}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingMoments":
        out = cls()
        out.n = int(data["n"])            # type: ignore[arg-type]
        out.sum_fp = int(data["sum"])     # type: ignore[arg-type]
        out.sumsq_fp = int(data["sumsq"])  # type: ignore[arg-type]
        out.min_fp = None if data["min"] is None else int(data["min"])  # type: ignore[arg-type]
        out.max_fp = None if data["max"] is None else int(data["max"])  # type: ignore[arg-type]
        return out


class QuantileSketch:
    """Deterministic log-binned quantile sketch (DDSketch family).

    A positive value lands in bin ``ceil(log_gamma(value))`` with
    ``gamma = (1 + alpha) / (1 - alpha)``; the bin's representative
    value ``gamma^i * 2 / (gamma + 1)`` is within relative error
    ``alpha`` of every value the bin covers.  Bins are integer counts in
    a dict, so memory is O(log(max/min)/alpha) regardless of sample
    count, and merging is plain integer addition — associative,
    commutative, byte-stable.  Zeros (and anything below ``min_value``)
    share an exact-zero bucket; negatives mirror into their own bin map.
    """

    __slots__ = ("alpha", "gamma", "_log_gamma", "min_value", "zero",
                 "bins", "neg_bins")

    def __init__(self, alpha: float = 0.01, min_value: float = 1e-9):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        self.min_value = min_value
        self.zero = 0
        self.bins: Dict[int, int] = {}
        self.neg_bins: Dict[int, int] = {}

    def _key(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._log_gamma))

    def _value(self, key: int) -> float:
        return (self.gamma ** key) * 2.0 / (self.gamma + 1.0)

    def add(self, value: float, count: int = 1) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        if value > self.min_value:
            key = self._key(value)
            self.bins[key] = self.bins.get(key, 0) + count
        elif value < -self.min_value:
            key = self._key(-value)
            self.neg_bins[key] = self.neg_bins.get(key, 0) + count
        else:
            self.zero += count

    @property
    def count(self) -> int:
        return (self.zero + sum(self.bins.values())
                + sum(self.neg_bins.values()))

    def merge(self, other: "QuantileSketch") -> None:
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})")
        self.zero += other.zero
        for key, count in other.bins.items():
            self.bins[key] = self.bins.get(key, 0) + count
        for key, count in other.neg_bins.items():
            self.neg_bins[key] = self.neg_bins.get(key, 0) + count

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (q in [0, 1]), within relative error alpha.

        Rank convention: the returned bin contains the sample at sorted
        index ``floor(q * (n - 1))`` — nearest-rank, matching what the
        property tests compare against.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        n = self.count
        if n == 0:
            return None
        rank = q * (n - 1)
        cum = 0
        for key in sorted(self.neg_bins, reverse=True):
            cum += self.neg_bins[key]
            if cum > rank:
                return -self._value(key)
        cum += self.zero
        if self.zero and cum > rank:
            return 0.0
        for key in sorted(self.bins):
            cum += self.bins[key]
            if cum > rank:
                return self._value(key)
        return None  # pragma: no cover - ranks always land in a bin

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form: bins as sorted [key, count] pairs."""
        return {
            "alpha": self.alpha,
            "zero": self.zero,
            "bins": [[k, self.bins[k]] for k in sorted(self.bins)],
            "neg": [[k, self.neg_bins[k]] for k in sorted(self.neg_bins)],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QuantileSketch":
        out = cls(alpha=float(data["alpha"]))  # type: ignore[arg-type]
        out.zero = int(data["zero"])           # type: ignore[arg-type]
        out.bins = {int(k): int(c) for k, c in data["bins"]}  # type: ignore[union-attr]
        out.neg_bins = {int(k): int(c) for k, c in data["neg"]}  # type: ignore[union-attr]
        return out


class MetricSketch:
    """Moments + quantiles for one metric, merged and serialized as one.

    The unit a campaign aggregates in: one per metric per shard record,
    merged across shards/workers into campaign-level p50/p95/p99 and
    moments — in constant memory, with byte-identical results for any
    work sharding.
    """

    __slots__ = ("moments", "quantiles")

    def __init__(self, alpha: float = 0.01):
        self.moments = StreamingMoments()
        self.quantiles = QuantileSketch(alpha=alpha)

    def add(self, value: float) -> None:
        self.moments.add(value)
        self.quantiles.add(value)

    def merge(self, other: "MetricSketch") -> None:
        self.moments.merge(other.moments)
        self.quantiles.merge(other.quantiles)

    @property
    def count(self) -> int:
        return self.moments.n

    def quantile(self, q: float) -> Optional[float]:
        return self.quantiles.quantile(q)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "metric-sketch",
                "moments": self.moments.to_dict(),
                "quantiles": self.quantiles.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricSketch":
        if data.get("kind") != "metric-sketch":
            raise ValueError(f"not a metric-sketch payload: "
                             f"{data.get('kind')!r}")
        out = cls()
        out.moments = StreamingMoments.from_dict(
            data["moments"])  # type: ignore[arg-type]
        out.quantiles = QuantileSketch.from_dict(
            data["quantiles"])  # type: ignore[arg-type]
        return out

    def summary(self) -> Dict[str, object]:
        """The rendered aggregate: n, mean, min/max, p50/p95/p99."""
        return {
            "n": self.count,
            "mean": self.moments.mean,
            "min": self.moments.minimum,
            "max": self.moments.maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }
