"""Statistics used by the figure generators: box plots, CDFs, CIs.

Implemented with the standard library only (the simulation itself has no
numpy dependency); numpy-backed benches may convert if they wish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["BoxStats", "box_stats", "percentile", "cdf_points",
           "mean_confidence_interval", "mean"]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass
class BoxStats:
    """The five-number summary plus mean (the paper's Figure 3 box plot)."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float
    n: int


def box_stats(values: Sequence[float]) -> BoxStats:
    if not values:
        raise ValueError("box_stats of empty sequence")
    return BoxStats(minimum=min(values),
                    p25=percentile(values, 25),
                    median=percentile(values, 50),
                    p75=percentile(values, 75),
                    maximum=max(values),
                    mean=mean(values),
                    n=len(values))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as [(value, fraction <= value)] (Figure 14)."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


# Two-sided t critical values at 95% for small df; 1.96 beyond.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
        20: 2.086, 25: 2.060, 30: 2.042}


def _t_critical(df: int) -> float:
    if df <= 0:
        raise ValueError("df must be positive")
    if df in _T95:
        return _T95[df]
    for key in sorted(_T95):
        if df < key:
            return _T95[key]
    return 1.96


def mean_confidence_interval(values: Sequence[float]
                             ) -> Tuple[float, float, float]:
    """(mean, lo, hi) 95% CI via Student's t (Figure 4 error bars)."""
    m = mean(values)
    if len(values) < 2:
        return (m, m, m)
    var = sum((v - m) ** 2 for v in values) / (len(values) - 1)
    half = _t_critical(len(values) - 1) * math.sqrt(var / len(values))
    return (m, m - half, m + half)
