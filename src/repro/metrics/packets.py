"""Packet-trace collection and analysis (our tcpdump + post-processing).

:class:`PacketTraceTap` plugs into a link tap and records one row per
link event.  The helpers below turn the rows into the datasets the
paper's figures use: per-second throughput bins (Figure 9), bytes in
flight over time (Figure 10), and per-connection retransmission
sequences (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..tcp.segment import Segment

__all__ = ["PacketRecord", "PacketTraceTap", "throughput_bins",
           "bytes_in_flight_series"]


@dataclass
class PacketRecord:
    """One tcpdump line."""

    time: float
    kind: str               # "enqueue" | "deliver" | "drop-queue" | "drop-loss"
    size: int
    src: str
    dst: str
    sport: int = 0
    dport: int = 0
    seq: int = 0
    payload_len: int = 0
    is_retransmission: bool = False
    flags: str = ""


class PacketTraceTap:
    """Collects :class:`PacketRecord` rows from a link tap."""

    def __init__(self, sim):
        self.sim = sim
        self.records: List[PacketRecord] = []

    def notify(self, kind: str, packet, time: float) -> None:
        segment = packet.payload
        if isinstance(segment, Segment):
            self.records.append(PacketRecord(
                time=time, kind=kind, size=packet.size, src=packet.src,
                dst=packet.dst, sport=segment.sport, dport=segment.dport,
                seq=segment.seq, payload_len=segment.length,
                is_retransmission=segment.retransmit_of > 0,
                flags=segment.flag_string()))
        else:
            self.records.append(PacketRecord(
                time=time, kind=kind, size=packet.size, src=packet.src,
                dst=packet.dst))

    # ------------------------------------------------------------------
    def delivered(self) -> List[PacketRecord]:
        return [r for r in self.records if r.kind == "deliver"]

    def total_payload_delivered(self) -> int:
        return sum(r.payload_len for r in self.delivered())

    def retransmitted_deliveries(self) -> List[PacketRecord]:
        return [r for r in self.delivered() if r.is_retransmission]


def throughput_bins(records: List[PacketRecord], bin_seconds: float = 1.0,
                    until: Optional[float] = None,
                    payload_only: bool = True) -> List[Tuple[float, float]]:
    """Figure 9: bytes delivered per time bin -> [(bin_start, bytes)].

    Bins are contiguous from t=0 so different runs align when averaged.
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    delivered = [r for r in records if r.kind == "deliver"]
    end = until
    if end is None:
        end = max((r.time for r in delivered), default=0.0)
    n_bins = int(end / bin_seconds) + 1
    bins = [0.0] * n_bins
    for r in delivered:
        idx = int(r.time / bin_seconds)
        if idx < n_bins:
            bins[idx] += r.payload_len if payload_only else r.size
    return [(i * bin_seconds, b) for i, b in enumerate(bins)]


def bytes_in_flight_series(samples) -> List[Tuple[float, int]]:
    """Figure 10: total unacknowledged bytes over time, across connections.

    ``samples`` are tcp_probe :class:`~repro.tcp.trace.ProbeSample` rows;
    for each instant we sum the most recent in-flight value of every
    connection seen so far (step interpolation).
    """
    latest: Dict[str, int] = {}
    series: List[Tuple[float, int]] = []
    for sample in samples:
        latest[sample.conn_id] = sample.inflight_bytes
        series.append((sample.time, sum(latest.values())))
    return series
