"""Measurement collection and statistics: packet traces, bins, box plots."""

from .packets import (PacketRecord, PacketTraceTap, bytes_in_flight_series,
                      throughput_bins)
from .stats import (BoxStats, MetricSketch, QuantileSketch, StreamingMoments,
                    box_stats, cdf_points, mean, mean_confidence_interval,
                    percentile)

__all__ = ["PacketRecord", "PacketTraceTap", "bytes_in_flight_series",
           "throughput_bins", "BoxStats", "MetricSketch", "QuantileSketch",
           "StreamingMoments", "box_stats", "cdf_points", "mean",
           "mean_confidence_interval", "percentile"]
