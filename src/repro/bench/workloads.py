"""The canonical workload registry.

Three tiers, mirroring how the simulator is actually exercised:

* ``micro`` — raw :mod:`repro.sim.engine` throughput.  The timer-churn
  workload reproduces the TCP pattern that dominates long runs (an RTO
  timer re-armed on every ACK that almost never fires, leaving a trail
  of cancelled heap entries); the link-delivery workload pushes packets
  through a :class:`~repro.net.link.Link` with no taps attached, the
  checks-off configuration every headline number is measured in.
* ``page`` — end-to-end pages/sec through :func:`run_experiment` for
  the paper's four corners (HTTP vs SPDY, 3G vs LTE).
* ``macro`` — a reduced figure sweep, the shape of a full
  reproduction run.

Every workload returns a :class:`WorkloadOutcome` whose ``units`` is
the work accomplished (events, pages, figures) and whose ``digest_parts``
fold every *simulated* outcome into the determinism digest.  Wall-clock
time never enters the digest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = ["Workload", "WorkloadOutcome", "all_workloads",
           "workloads_by_name", "register"]


@dataclass
class WorkloadOutcome:
    """What one invocation of a workload accomplished (no timing here)."""

    units: int                  # work units completed (events, pages, ...)
    digest_parts: dict          # simulated outcomes; folded into the digest


@dataclass
class Workload:
    """One named, registered benchmark workload."""

    name: str
    kind: str                   # "micro" | "page" | "macro"
    metric: str                 # what a rate of units/second measures
    description: str
    run: Callable[[float], WorkloadOutcome]   # scale in (0, 1]


_REGISTRY: List[Workload] = []


def register(name: str, kind: str, metric: str, description: str):
    def decorator(func: Callable[[float], WorkloadOutcome]):
        _REGISTRY.append(Workload(name=name, kind=kind, metric=metric,
                                  description=description, run=func))
        return func
    return decorator


def all_workloads() -> List[Workload]:
    return list(_REGISTRY)


def workloads_by_name() -> Dict[str, Workload]:
    return {w.name: w for w in _REGISTRY}


# ----------------------------------------------------------------------
# micro: raw engine throughput
# ----------------------------------------------------------------------

class _Sink:
    """Minimal packet destination for link microbenchmarks."""

    address = "sink"

    def __init__(self):
        self.packets = 0
        self.bytes = 0

    def receive(self, packet) -> None:
        self.packets += 1
        self.bytes += packet.size


@register("engine-timer-churn", "micro", "events/s",
          "re-armed timers (the per-ACK RTO pattern): schedule + cancel "
          "churn through the event heap, few timers ever fire")
def engine_timer_churn(scale: float = 1.0) -> WorkloadOutcome:
    from ..sim import Simulator, Timer

    n_ticks = max(1, int(2000 * scale))
    n_timers = 64
    sim = Simulator(seed=7)
    fired = [0]

    def expire() -> None:
        fired[0] += 1

    timers = [Timer(sim, expire, name=f"rto-{i}") for i in range(n_timers)]
    ticks = [0]

    def tick() -> None:
        # Every tick re-arms all timers 10 s out (none reaches expiry
        # until the driver stops), exactly like an RTO pushed out by
        # every ACK: each restart cancels a live heap entry.
        for timer in timers:
            timer.start(10.0)
        ticks[0] += 1
        if ticks[0] < n_ticks:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    # Work units: every timer (re)arm plus every event the loop fired.
    units = n_ticks * n_timers + sim.events_processed
    return WorkloadOutcome(units=units, digest_parts={
        "ticks": ticks[0], "timers_fired": fired[0],
        "events_processed": sim.events_processed,
        "final_time": round(sim.now, 9), "seq": sim._seq,
    })


@register("engine-link-delivery", "micro", "events/s",
          "packets through a tap-free Link (serialization + propagation "
          "+ delivery), the checks-off fast path of every measurement")
def engine_link_delivery(scale: float = 1.0) -> WorkloadOutcome:
    from ..net.link import Link
    from ..net.packet import Packet
    from ..sim import Simulator

    n_packets = max(1, int(20_000 * scale))
    sim = Simulator(seed=11)
    sink = _Sink()
    link = Link(sim, "bench", sink, bandwidth_bps=100e6, latency=0.02,
                queue_limit_bytes=None)
    sizes = (1460, 40, 1460, 600)

    def submit(index: int) -> None:
        link.transmit(Packet("bench-src", "sink", sizes[index % 4],
                             payload=index, created_at=sim.now))
        if index + 1 < n_packets:
            sim.schedule(0.0005, submit, index + 1)

    sim.schedule(0.0, submit, 0)
    sim.run()
    return WorkloadOutcome(units=sim.events_processed, digest_parts={
        "packets_delivered": link.packets_delivered,
        "bytes_delivered": link.bytes_delivered,
        "packets_lost": link.packets_lost,
        "sink_bytes": sink.bytes,
        "events_processed": sim.events_processed,
        "final_time": round(sim.now, 9),
    })


# ----------------------------------------------------------------------
# page: end-to-end pages/sec
# ----------------------------------------------------------------------

def _page_workload(protocol: str, network: str,
                   scale: float) -> WorkloadOutcome:
    from ..chaos.oracles import run_digest
    from ..experiments.runner import ExperimentConfig, run_experiment

    site_ids = [1, 5, 9, 14] if scale >= 1.0 else [1, 5]
    config = ExperimentConfig(protocol=protocol, network=network, seed=3,
                              site_ids=site_ids, think_time=12.0,
                              tail_time=10.0, checks="off")
    result = run_experiment(config)
    return WorkloadOutcome(units=len(result.pages), digest_parts={
        "run_digest": run_digest(result),
        "pages": len(result.pages),
        "events_processed": result.testbed.sim.events_processed,
    })


for _proto in ("http", "spdy"):
    for _net in ("3g", "lte"):
        register(f"pages-{_proto}-{_net}", "page", "pages/s",
                 f"end-to-end page loads, {_proto} over {_net} "
                 f"(checks off, the measurement configuration)")(
            # bind loop vars by default args
            lambda scale=1.0, p=_proto, n=_net: _page_workload(p, n, scale))


# ----------------------------------------------------------------------
# macro: campaign throughput, serial vs supervised workers
# ----------------------------------------------------------------------

def _campaign_configs(scale: float):
    from ..experiments.runner import ExperimentConfig
    from ..sanity.campaign import sweep_configs

    runs = 3 if scale >= 1.0 else 2
    base = ExperimentConfig(network="3g", seed=5, site_ids=[1],
                            think_time=4.0, tail_time=4.0,
                            load_timeout=4.0, checks="off")
    return sweep_configs(base, runs, protocols=["http", "spdy"])


def _journal_digest_parts(journal_path: str, records) -> dict:
    import hashlib

    with open(journal_path, "rb") as handle:
        journal_sha = hashlib.sha256(handle.read()).hexdigest()[:16]
    return {
        # The same sha for the serial and the --workers workload IS the
        # byte-identity contract, visible right in the bench report.
        "journal_sha": journal_sha,
        "trials": len(records),
        "ok": sum(1 for r in records if r.get("status") == "ok"),
    }


@register("campaign-throughput", "macro", "trials/s",
          "serial campaign trials through the crash-safe journal "
          "(the --workers baseline; journal_sha must match it)")
def campaign_throughput_serial(scale: float = 1.0) -> WorkloadOutcome:
    import os
    import shutil
    import tempfile

    from ..sanity.campaign import run_campaign

    configs = _campaign_configs(scale)
    workdir = tempfile.mkdtemp(prefix="repro-bench-campaign-")
    try:
        journal_path = os.path.join(workdir, "serial.jsonl")
        result = run_campaign(configs, journal_path=journal_path)
        parts = _journal_digest_parts(journal_path, result.records)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return WorkloadOutcome(units=len(configs), digest_parts=parts)


@register("campaign-throughput-w2", "macro", "trials/s",
          "the same campaign under two supervised workers; its digest "
          "equals campaign-throughput's exactly when the parallel "
          "merge is byte-identical to the serial journal")
def campaign_throughput_workers(scale: float = 1.0) -> WorkloadOutcome:
    import os
    import shutil
    import tempfile

    from ..parallel import run_parallel_campaign

    configs = _campaign_configs(scale)
    workdir = tempfile.mkdtemp(prefix="repro-bench-campaign-")
    try:
        journal_path = os.path.join(workdir, "parallel.jsonl")
        result = run_parallel_campaign(configs, journal_path=journal_path,
                                       workers=2)
        lost = int((result.parallel or {}).get("lost", 0))
        if lost:
            raise RuntimeError(
                f"parallel bench campaign lost {lost} trial(s); the "
                f"digest would not be comparable")
        parts = _journal_digest_parts(journal_path, result.records)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return WorkloadOutcome(units=len(configs), digest_parts=parts)


# ----------------------------------------------------------------------
# macro: reduced figure sweep
# ----------------------------------------------------------------------

@register("figure-sweep", "macro", "figures/s",
          "a reduced sweep of single-run figure generators "
          "(request patterns, proxy queueing, idle zoom)")
def figure_sweep(scale: float = 1.0) -> WorkloadOutcome:
    import hashlib
    import json

    from ..experiments import figures

    generators = [
        ("fig06", lambda: figures.fig06_request_patterns(seed=0)),
        ("fig08", lambda: figures.fig08_proxy_queueing(seed=0)),
        ("fig12", lambda: figures.fig12_idle_zoom(seed=0)),
    ]
    if scale < 1.0:
        generators = generators[:2]
    digests = {}
    for name, generator in generators:
        blob = json.dumps(generator(), sort_keys=True, default=str)
        digests[name] = hashlib.sha256(blob.encode()).hexdigest()[:16]
    return WorkloadOutcome(units=len(generators),
                           digest_parts={"figures": digests})
