"""``repro bench``: time the canonical workloads and write the report.

Examples
--------
Full run (5 reps, median), written to ``BENCH_<rev>.json``::

    python -m repro bench

CI smoke: one rep per workload, digests gated against the committed
reference::

    python -m repro bench --quick --out bench-ci.json \
        --compare BENCH_<rev>.json

Record a speedup claim against the previous revision's report::

    python -m repro bench --baseline BENCH_<prev>.json
"""

from __future__ import annotations

import sys

from ..reporting import render_table
from .harness import (BenchError, compare_digests, default_output_name,
                      load_report, run_bench, write_report)
from .workloads import all_workloads

__all__ = ["add_bench_arguments", "run_bench_cli"]


def add_bench_arguments(parser) -> None:
    parser.add_argument("--workloads", default=None, metavar="NAMES",
                        help="comma-separated subset (default: all)")
    parser.add_argument("--list", action="store_true", dest="list_workloads",
                        help="list registered workloads and exit")
    parser.add_argument("--quick", action="store_true",
                        help="single rep, no warmup (CI smoke; digests "
                             "stay comparable with a full run)")
    parser.add_argument("--reps", type=int, default=None, metavar="N",
                        help="timed repetitions per workload "
                             "(default 5, or 1 with --quick)")
    parser.add_argument("--warmup", type=int, default=None, metavar="N",
                        help="untimed warmup runs (default 1, 0 with --quick)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="report path (default BENCH_<rev>.json)")
    parser.add_argument("--baseline", default=None, metavar="REPORT",
                        help="previous BENCH_*.json: embed its rates and "
                             "per-workload speedups in the new report")
    parser.add_argument("--compare", default=None, metavar="REPORT",
                        help="fail (exit 1) if any workload's determinism "
                             "digest drifts from this reference report")


def run_bench_cli(args) -> int:
    if args.list_workloads:
        rows = [[w.name, w.kind, w.metric, w.description]
                for w in all_workloads()]
        print(render_table(["workload", "kind", "metric", "description"],
                           rows, title="registered bench workloads"))
        return 0

    names = None
    if args.workloads:
        names = [n.strip() for n in args.workloads.split(",") if n.strip()]

    try:
        baseline = load_report(args.baseline) if args.baseline else None
        reference = load_report(args.compare) if args.compare else None
    except (OSError, ValueError) as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2

    def progress(workload) -> None:
        print(f"  timing {workload.name} ...", flush=True)

    try:
        result = run_bench(names=names, quick=args.quick, reps=args.reps,
                           warmup=args.warmup, progress=progress)
    except BenchError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2

    out_path = args.out or default_output_name()
    report = write_report(result, out_path, baseline=baseline)

    rows = []
    speedups = report.get("baseline", {}).get("speedup", {})
    for timing in result.timings:
        rows.append([timing.name, timing.metric, f"{timing.rate:,.0f}",
                     f"{timing.median_s:.4f}",
                     f"{speedups[timing.name]:.2f}x"
                     if timing.name in speedups else "-",
                     timing.digest])
    print(render_table(
        ["workload", "metric", "rate", "median_s", "vs baseline", "digest"],
        rows, title=f"bench @ {report['rev']} -> {out_path}"))

    if reference is not None:
        mismatches = compare_digests(result, reference)
        if mismatches:
            print("\nDETERMINISM DIGEST DRIFT:", file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\ndigests match reference {args.compare} "
              f"(rev {reference.get('rev', '?')})")
    return 0
