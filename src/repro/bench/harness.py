"""Timing, digests and the ``BENCH_<rev>.json`` report format.

Measurement protocol, per workload: ``warmup`` untimed invocations,
then ``reps`` timed ones; the reported rate is ``units / median(times)``.
Every invocation (warmup included) must produce the identical
determinism digest — a digest change means the code under test changed
*behaviour*, and the harness raises :class:`BenchError` rather than
report a speedup bought with different work.

The report file is the perf trajectory: it carries this revision's
rates *and* (via ``--baseline``) the rates of the revision being
beaten, so "3x faster" is a recorded claim, not a commit-message one.
Digests are machine-independent (pure simulation outcomes); rates are
machine-dependent and only comparable within one file.
"""

from __future__ import annotations

import hashlib
import json
import platform
import statistics
import subprocess  # repro-lint: disable=SIM001 -- host-side git rev lookup, not sim code
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .workloads import Workload, all_workloads

__all__ = ["BENCH_SCHEMA", "BenchError", "BenchResult", "WorkloadTiming",
           "compare_digests", "default_output_name", "git_revision",
           "run_bench", "write_report"]

#: Bumped when the report layout changes incompatibly.
BENCH_SCHEMA = 1


class BenchError(RuntimeError):
    """A workload misbehaved: digest drift between invocations, or an
    unknown workload/baseline was requested."""


@dataclass
class WorkloadTiming:
    """Measured result for one workload."""

    name: str
    kind: str
    metric: str
    units: int
    samples_s: List[float]
    digest: str

    @property
    def median_s(self) -> float:
        return statistics.median(self.samples_s)

    @property
    def rate(self) -> float:
        median = self.median_s
        return self.units / median if median > 0 else float("inf")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "metric": self.metric, "units": self.units,
            "reps": len(self.samples_s),
            "samples_s": [round(s, 6) for s in self.samples_s],
            "median_s": round(self.median_s, 6),
            "rate": round(self.rate, 3),
            "digest": self.digest,
        }


@dataclass
class BenchResult:
    """All workload timings from one harness run."""

    timings: List[WorkloadTiming] = field(default_factory=list)
    quick: bool = False
    scale: float = 1.0

    def digests(self) -> Dict[str, str]:
        return {t.name: t.digest for t in self.timings}

    def rates(self) -> Dict[str, float]:
        return {t.name: round(t.rate, 3) for t in self.timings}


def digest_outcome(parts: dict) -> str:
    """Canonical digest of a workload's simulated outcomes."""
    blob = json.dumps(parts, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def git_revision(short: bool = True) -> str:
    """The working tree's revision, or "unknown" outside a checkout."""
    cmd = ["git", "rev-parse", "--short" if short else "HEAD", "HEAD"]
    if not short:
        cmd = ["git", "rev-parse", "HEAD"]
    try:
        out = subprocess.run(  # repro-lint: disable=SIM001 -- host-side git lookup, not sim code
            cmd, capture_output=True, text=True, timeout=10, check=True)
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def default_output_name(rev: Optional[str] = None) -> str:
    return f"BENCH_{rev or git_revision()}.json"


def run_bench(names: Optional[List[str]] = None, quick: bool = False,
              reps: Optional[int] = None, warmup: Optional[int] = None,
              scale: float = 1.0, progress=None) -> BenchResult:
    """Run the selected workloads (all, by default) and time them.

    ``quick`` reduces repetitions (1 rep, no warmup) — meant for CI
    smoke, where the digests (not the rates) are the contract.  The
    workload *scale* stays 1.0 so quick-run digests remain comparable
    with a committed full-run reference; pass an explicit ``scale`` < 1
    only for same-scale A/B comparisons (unit tests do).
    """
    registry = {w.name: w for w in all_workloads()}
    if names:
        unknown = sorted(set(names) - set(registry))
        if unknown:
            raise BenchError(
                f"unknown workload(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(registry))}")
        selected = [registry[n] for n in names]
    else:
        selected = list(registry.values())

    if not (0.0 < scale <= 1.0):
        raise BenchError("scale must be in (0, 1]")
    n_reps = reps if reps is not None else (1 if quick else 5)
    n_warmup = warmup if warmup is not None else (0 if quick else 1)
    if n_reps < 1:
        raise BenchError("reps must be >= 1")

    result = BenchResult(quick=quick, scale=scale)
    for workload in selected:
        if progress is not None:
            progress(workload)
        timing = _time_workload(workload, scale, n_reps, n_warmup)
        result.timings.append(timing)
    return result


def _time_workload(workload: Workload, scale: float, reps: int,
                   warmup: int) -> WorkloadTiming:
    digest: Optional[str] = None
    units = 0

    def invoke_timed():
        nonlocal digest, units
        start = time.perf_counter()  # repro-lint: disable=DET001 -- the harness measures wall time by design
        outcome = workload.run(scale)
        elapsed = time.perf_counter() - start  # repro-lint: disable=DET001 -- see above
        this_digest = digest_outcome(outcome.digest_parts)
        if digest is None:
            digest = this_digest
            units = outcome.units
        elif this_digest != digest:
            raise BenchError(
                f"workload {workload.name!r} is nondeterministic: digest "
                f"{this_digest} != {digest} across invocations — refusing "
                f"to time code whose behaviour varies run to run")
        return elapsed

    for _ in range(warmup):
        invoke_timed()
    samples = [invoke_timed() for _ in range(reps)]
    assert digest is not None
    return WorkloadTiming(name=workload.name, kind=workload.kind,
                          metric=workload.metric, units=units,
                          samples_s=samples, digest=digest)


# ----------------------------------------------------------------------
# report I/O
# ----------------------------------------------------------------------

def write_report(result: BenchResult, path: str, rev: Optional[str] = None,
                 baseline: Optional[dict] = None) -> dict:
    """Write ``BENCH_<rev>.json``; returns the report dict.

    ``baseline`` is a previously written report (parsed); its rates and
    digests are embedded under ``"baseline"`` with per-workload speedups
    so the file itself records the before/after claim.
    """
    report: dict = {
        "schema": BENCH_SCHEMA,
        "rev": rev or git_revision(),
        "python": platform.python_version(),
        "quick": result.quick,
        "scale": result.scale,
        "workloads": {t.name: t.as_dict() for t in result.timings},
    }
    if baseline is not None:
        base_workloads = baseline.get("workloads", {})
        speedups = {}
        for timing in result.timings:
            base = base_workloads.get(timing.name)
            if base and base.get("rate"):
                speedups[timing.name] = round(timing.rate / base["rate"], 3)
        report["baseline"] = {
            "rev": baseline.get("rev", "unknown"),
            "rates": {n: w.get("rate") for n, w in base_workloads.items()},
            "digests": {n: w.get("digest")
                        for n, w in base_workloads.items()},
            "speedup": speedups,
        }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "workloads" not in report:
        raise BenchError(f"{path}: not a bench report (no 'workloads' key)")
    if report.get("schema", 0) > BENCH_SCHEMA:
        raise BenchError(
            f"{path}: schema {report.get('schema')} is newer than this "
            f"harness ({BENCH_SCHEMA}); refusing to misread it")
    return report


def compare_digests(result: BenchResult, reference: dict) -> List[str]:
    """Determinism drift between a run and a reference report.

    Returns human-readable mismatch lines, one per drifted workload.
    Workloads present on only one side are ignored (the reference may
    predate a new workload); digest *disagreement* is never ignored.
    """
    if result.scale != reference.get("scale", 1.0):
        return [f"scale mismatch: run at {result.scale}, reference at "
                f"{reference.get('scale', 1.0)} — digests are only "
                f"comparable at identical workload scale"]
    mismatches = []
    ref_workloads = reference.get("workloads", {})
    for timing in result.timings:
        ref = ref_workloads.get(timing.name)
        if ref is None:
            continue
        ref_digest = ref.get("digest")
        if ref_digest and ref_digest != timing.digest:
            mismatches.append(
                f"{timing.name}: digest {timing.digest} != reference "
                f"{ref_digest} (rev {reference.get('rev', '?')}) — "
                f"simulated behaviour drifted")
    return mismatches
