"""Performance harness: measure the simulator so every PR has a trajectory.

PRs 1-6 built the correctness stack (faults -> invariants -> lint ->
chaos -> differential oracles); this package is the other axis the
ROADMAP asks for: *how fast?*  `repro bench` times canonical workloads —
raw engine events/sec, end-to-end pages/sec, and a figure-sweep macro
run — with warmup, repetition and median-of-N timing, and writes the
results to ``BENCH_<rev>.json`` so the next PR has a number to beat.

Two disciplines carry over from the sanity layer:

* **Determinism digests.**  Every workload computes a digest over its
  *simulated* outcomes (bytes delivered, PLTs, event counts) — never
  over wall-clock timings.  An optimization that changes a digest
  changed behaviour, not just speed; the harness fails loudly and CI's
  ``bench-smoke`` job compares digests against the committed reference.
* **Zero cost when off.**  The hot paths pay one ``is not None`` test
  for instrumentation; the bench harness itself imports nothing into
  the simulation and perturbs no RNG stream.
"""

from .harness import (BENCH_SCHEMA, BenchError, BenchResult, WorkloadTiming,
                      compare_digests, default_output_name, load_report,
                      run_bench, write_report)
from .workloads import (Workload, WorkloadOutcome, all_workloads,
                        workloads_by_name)

__all__ = [
    "BENCH_SCHEMA", "BenchError", "BenchResult", "Workload",
    "WorkloadOutcome", "WorkloadTiming", "all_workloads", "compare_digests",
    "default_output_name", "load_report", "run_bench", "workloads_by_name",
    "write_report",
]
