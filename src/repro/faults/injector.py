"""The fault injector: arms a :class:`FaultPlan` against a live testbed.

Every fault is applied from a scheduled simulator event, so injection is
deterministic in (plan, seed): the injector draws no randomness of its
own, and the only RNG it indirectly touches is each link's private loss
stream (via the Gilbert-Elliott model), which is already seed-derived.

The injector keeps a human-readable ``log`` of every action taken — the
"fault log" of the acceptance criteria: replaying the same plan and seed
must reproduce it byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ..net.link import GilbertElliottLoss
from .plan import FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.testbed import Testbed

__all__ = ["FaultInjector"]

#: Client-facing proxy ports (HTTP 8080, SPDY 8443): a "proxy restart"
#: resets these, not the proxy's upstream connections to origins.
PROXY_CLIENT_PORTS = (8080, 8443)


class FaultInjector:
    """Schedules and applies the events of one fault plan."""

    def __init__(self, testbed: "Testbed", plan: FaultPlan):
        self.testbed = testbed
        self.sim = testbed.sim
        self.plan = plan
        self.log: List[str] = []
        self.counters: Dict[str, int] = {kind: 0 for kind in
                                         ("arq", "blackout", "burstloss",
                                          "delayspike", "handover",
                                          "proxyrestart", "rst")}
        self.connections_reset = 0
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule every plan event on the testbed's simulator."""
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        handlers = {
            "arq": self._apply_arq,
            "blackout": self._apply_blackout,
            "burstloss": self._apply_burstloss,
            "delayspike": self._apply_delayspike,
            "handover": self._apply_handover,
            "proxyrestart": self._apply_proxyrestart,
            "rst": self._apply_rst,
        }
        for event in self.plan.events:
            self.sim.schedule_at(max(event.time, self.sim.now),
                                 handlers[event.kind], event)

    def _log(self, message: str) -> None:
        self.log.append(f"{self.sim.now:.6f} {message}")

    def _access_links(self):
        access = self.testbed.access
        return (access.downlink, access.uplink)

    # ------------------------------------------------------------------
    # handlers (each runs at its event's scheduled time)
    # ------------------------------------------------------------------
    def _apply_arq(self, event: FaultEvent) -> None:
        # RLC acknowledged mode: radio losses recovered below TCP, seen
        # above as bounded per-packet delay jitter (arXiv:0903.4959 §2).
        for link in self._access_links():
            link.enable_arq(event.rate, event.jitter)
        self.counters["arq"] += 1
        self._log(f"arq rate={event.rate:g} jitter<={event.jitter:g}s "
                  f"on access links")

    def _apply_delayspike(self, event: FaultEvent) -> None:
        # Cell-reselection stall: the access links freeze — packets queued
        # and in flight are delayed, never dropped.
        for link in self._access_links():
            link.start_delay_spike(event.duration)
        self.counters["delayspike"] += 1
        self._log(f"delayspike {event.duration:g}s on access links")

    def _apply_blackout(self, event: FaultEvent) -> None:
        for link in self._access_links():
            link.start_outage(event.duration, event.policy)
        self.counters["blackout"] += 1
        self._log(f"blackout {event.duration:g}s policy={event.policy} "
                  f"on access links")

    def _apply_burstloss(self, event: FaultEvent) -> None:
        # One model instance per link: the two-state chain is stateful,
        # and sharing it would couple the directions' loss processes.
        for link in self._access_links():
            link.loss_model = GilbertElliottLoss.from_average(
                event.rate, event.mean_burst)
        self.counters["burstloss"] += 1
        self._log(f"burstloss rate={event.rate:g} "
                  f"mean_burst={event.mean_burst:g} on access links")

    def _apply_handover(self, event: FaultEvent) -> None:
        machine = self.testbed.radio
        if machine is not None:
            machine.force_release()
        if event.duration > 0:
            for link in self._access_links():
                link.start_outage(event.duration, "queue")
        self.counters["handover"] += 1
        state = machine.state if machine is not None else "n/a"
        self._log(f"handover outage={event.duration:g}s radio->{state}")

    def _apply_proxyrestart(self, event: FaultEvent) -> None:
        stack = self.testbed.proxy_stack
        victims = [c for c in stack.open_connections
                   if c.local_port in PROXY_CLIENT_PORTS]
        victims.sort(key=lambda c: c.conn_id)
        for conn in victims:
            conn.reset(send_rst=True)
        self.counters["proxyrestart"] += 1
        self.connections_reset += len(victims)
        self._log(f"proxyrestart reset {len(victims)} client-facing "
                  f"connections")

    def _apply_rst(self, event: FaultEvent) -> None:
        stack = self.testbed.client_stack
        live = [c for c in stack.open_connections
                if c.state == "ESTABLISHED"]
        # Busiest first (most unacked bytes in flight), conn_id tie-break:
        # deterministic, and it hits the connection a mid-page fault would.
        live.sort(key=lambda c: (-c.inflight_bytes, c.conn_id))
        victims = live[:event.count]
        for conn in victims:
            conn.reset(send_rst=True)
        self.counters["rst"] += 1
        self.connections_reset += len(victims)
        names = ",".join(c.conn_id for c in victims) or "none"
        self._log(f"rst reset {len(victims)} connection(s): {names}")

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """Summary for RunResult / reporting: counters plus the full log."""
        return {
            "plan": self.plan.describe(),
            "events_applied": len(self.log),
            "counters": dict(self.counters),
            "connections_reset": self.connections_reset,
            "log": list(self.log),
        }
