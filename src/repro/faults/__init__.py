"""Deterministic fault injection for the testbed.

``FaultPlan`` describes *what* goes wrong and *when* (pure data, with a
compact ``--faults`` spec grammar); ``FaultInjector`` arms a plan
against a live :class:`~repro.experiments.testbed.Testbed`.  See
DESIGN.md §4b ("Fault injection & resilience") for the model.
"""

from .injector import FaultInjector
from .plan import FAULT_KINDS, FaultEvent, FaultPlan, FaultSpecError

__all__ = ["FaultEvent", "FaultPlan", "FaultSpecError", "FaultInjector",
           "FAULT_KINDS"]
