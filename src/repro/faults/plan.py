"""Fault plans: a declarative, deterministic schedule of impairments.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` entries,
each naming a fault kind and the simulated time it strikes.  Plans are
pure data — no simulator state — so the same plan object (or spec
string) replayed against the same seed reproduces the exact same run.

The compact spec grammar used by the ``--faults`` CLI flag::

    blackout@T:D[:policy]     link outage for D seconds at time T;
                              policy "queue" (default) parks packets,
                              "drop" discards them
    burstloss[@T]:RATE[:B]    Gilbert-Elliott burst loss on the access
                              links from time T (default 0) with average
                              loss RATE and mean burst length B (def. 8)
    arq[@T]:RATE[:J]          RLC-layer link retransmission from time T
                              (default 0): radio-layer losses at RATE are
                              recovered below TCP, surfacing as additive
                              per-packet delay jitter bounded by J seconds
                              (default 0.2) instead of drops
    delayspike@T:D            cell-reselection stall at T: the access
                              links freeze for D seconds — packets are
                              delayed, never dropped, including those
                              already in flight
    handover@T[:D]            RRC handover at T: radio falls to idle and
                              the link blacks out for D seconds (def. 0.5)
    proxyrestart@T            proxy process restart at T: every
                              client-facing proxy connection is RST
    rst@T[:N]                 reset the N busiest client connections at T
                              (default 1)

Entries are comma-separated: ``blackout@120:5,burstloss:0.02,handover@200``.
The ``arq`` and ``delayspike`` kinds model the two dominant cellular
link-layer behaviours of "TCP over 3G links" (arXiv:0903.4959): RLC
retransmission hides loss as delay variation, and cell reselection
produces multi-second delay spikes without packet loss.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

__all__ = ["FaultEvent", "FaultPlan", "FaultSpecError", "FAULT_KINDS"]

FAULT_KINDS = ("arq", "blackout", "burstloss", "delayspike", "handover",
               "proxyrestart", "rst")

_ENTRY_RE = re.compile(r"^([a-z]+)(@[0-9.eE+-]+)?((?::[^:,@]+)*)$")


class FaultSpecError(ValueError):
    """Raised for a malformed ``--faults`` spec or invalid event fields."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled impairment.  Unused fields keep their defaults."""

    kind: str
    time: float = 0.0
    duration: float = 0.0      # blackout / handover / delayspike length
    rate: float = 0.0          # burstloss / arq radio-layer loss prob.
    mean_burst: float = 8.0    # burstloss mean bad-state run (packets)
    policy: str = "queue"      # blackout semantics: "queue" | "drop"
    count: int = 1             # rst: how many connections to kill
    jitter: float = 0.2        # arq: RLC recovery delay bound (seconds)

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(f"unknown fault kind {self.kind!r} "
                                 f"(expected one of {', '.join(FAULT_KINDS)})")
        # NaN compares False against everything, so `self.time < 0` alone
        # would wave float("nan") through; inf durations wedge the sim.
        for name in ("time", "duration", "rate", "mean_burst", "jitter"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise FaultSpecError(
                    f"{self.kind}: {name} must be a finite number, "
                    f"not {value!r}")
        if self.time < 0:
            raise FaultSpecError(f"{self.kind}: time must be >= 0")
        if self.kind == "blackout":
            if self.duration <= 0:
                raise FaultSpecError("blackout: duration must be > 0 "
                                     "(use blackout@T:D)")
            if self.policy not in ("queue", "drop"):
                raise FaultSpecError(
                    f"blackout: policy must be 'queue' or 'drop', "
                    f"not {self.policy!r}")
        elif self.kind == "burstloss":
            if not (0.0 < self.rate < 1.0):
                raise FaultSpecError("burstloss: rate must be in (0, 1)")
            if self.mean_burst < 1.0:
                raise FaultSpecError("burstloss: mean burst must be >= 1")
        elif self.kind == "arq":
            if not (0.0 < self.rate < 1.0):
                raise FaultSpecError("arq: rate must be in (0, 1)")
            if self.jitter <= 0:
                raise FaultSpecError("arq: jitter must be > 0 "
                                     "(seconds of RLC recovery delay)")
        elif self.kind == "delayspike":
            if self.duration <= 0:
                raise FaultSpecError("delayspike: duration must be > 0 "
                                     "(use delayspike@T:D)")
        elif self.kind == "handover":
            if self.duration < 0:
                raise FaultSpecError("handover: outage must be >= 0")
        elif self.kind == "rst":
            if self.count < 1:
                raise FaultSpecError("rst: count must be >= 1")

    def describe(self) -> str:
        """Human-friendly one-token spec (%g-rounded; see :meth:`to_token`
        for the exact form)."""
        return self._token(lambda value: f"{value:g}")

    def to_token(self) -> str:
        """Exact one-token spec: ``FaultPlan._parse_entry(to_token()) ==
        self`` for every valid event.

        ``describe`` rounds through ``%g`` (6 significant digits), which
        is fine for logs but lossy for machine round-trips — the shrinker
        and the chaos corpus serialize plans through specs and need the
        floats back bit for bit, so this uses ``repr`` (shortest exact
        float form).
        """
        return self._token(lambda value: repr(float(value)))

    def _token(self, fmt) -> str:
        if self.kind == "arq":
            return (f"arq@{fmt(self.time)}:{fmt(self.rate)}"
                    f":{fmt(self.jitter)}")
        if self.kind == "delayspike":
            return f"delayspike@{fmt(self.time)}:{fmt(self.duration)}"
        if self.kind == "blackout":
            base = f"blackout@{fmt(self.time)}:{fmt(self.duration)}"
            return base if self.policy == "queue" else f"{base}:{self.policy}"
        if self.kind == "burstloss":
            return (f"burstloss@{fmt(self.time)}:{fmt(self.rate)}"
                    f":{fmt(self.mean_burst)}")
        if self.kind == "handover":
            return f"handover@{fmt(self.time)}:{fmt(self.duration)}"
        if self.kind == "proxyrestart":
            return f"proxyrestart@{fmt(self.time)}"
        return f"rst@{fmt(self.time)}:{self.count:d}"


class FaultPlan:
    """An immutable, time-ordered schedule of fault events."""

    def __init__(self, events: Sequence[FaultEvent]):
        for event in events:
            event.validate()
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.kind)))

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: Union[str, "FaultPlan"]) -> "FaultPlan":
        """Build a plan from a ``--faults`` spec string (idempotent)."""
        if isinstance(spec, FaultPlan):
            return spec
        events: List[FaultEvent] = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            events.append(cls._parse_entry(entry))  # repro-lint: disable=MEM001 -- bounded by the fault-spec text length
        if not events:
            raise FaultSpecError(f"empty fault spec {spec!r}")
        return cls(events)

    @staticmethod
    def _parse_entry(entry: str) -> FaultEvent:
        match = _ENTRY_RE.match(entry)
        if match is None:
            raise FaultSpecError(
                f"malformed fault entry {entry!r} "
                f"(expected kind[@time][:arg[:arg]])")
        kind, at, argstr = match.groups()
        if kind not in FAULT_KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r} "
                                 f"(expected one of {', '.join(FAULT_KINDS)})")
        args = argstr.split(":")[1:] if argstr else []

        def num(text: str, what: str) -> float:
            try:
                return float(text)
            except ValueError:
                raise FaultSpecError(f"{kind}: {what} {text!r} is not a number")

        time = num(at[1:], "time") if at else 0.0
        try:
            if kind == "blackout":
                if not args:
                    raise FaultSpecError("blackout needs a duration "
                                         "(blackout@T:D)")
                duration = num(args[0], "duration")
                policy = args[1] if len(args) > 1 else "queue"
                event = FaultEvent("blackout", time=time, duration=duration,
                                   policy=policy)
            elif kind == "burstloss":
                if not args:
                    raise FaultSpecError("burstloss needs a rate "
                                         "(burstloss:RATE)")
                rate = num(args[0], "rate")
                mean_burst = num(args[1], "mean burst") if len(args) > 1 \
                    else 8.0
                event = FaultEvent("burstloss", time=time, rate=rate,
                                   mean_burst=mean_burst)
            elif kind == "arq":
                if not args:
                    raise FaultSpecError("arq needs a rate (arq:RATE[:J])")
                rate = num(args[0], "rate")
                jitter = num(args[1], "jitter") if len(args) > 1 else 0.2
                event = FaultEvent("arq", time=time, rate=rate,
                                   jitter=jitter)
            elif kind == "delayspike":
                if not args:
                    raise FaultSpecError("delayspike needs a duration "
                                         "(delayspike@T:D)")
                duration = num(args[0], "duration")
                event = FaultEvent("delayspike", time=time,
                                   duration=duration)
            elif kind == "handover":
                duration = num(args[0], "outage") if args else 0.5
                event = FaultEvent("handover", time=time, duration=duration)
            elif kind == "proxyrestart":
                if args:
                    raise FaultSpecError("proxyrestart takes no arguments")
                event = FaultEvent("proxyrestart", time=time)
            else:  # rst
                count = int(num(args[0], "count")) if args else 1
                event = FaultEvent("rst", time=time, count=count)
        except IndexError:  # pragma: no cover - defensive
            raise FaultSpecError(f"malformed fault entry {entry!r}")
        event.validate()
        return event

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-friendly spec string (%g-rounded floats)."""
        return ",".join(event.describe() for event in self.events)

    def to_spec(self) -> str:
        """Exact inverse of :meth:`parse`: ``parse(to_spec()) == self``.

        The spec string is the plan's serialization format — journaled
        failures, corpus repros, and shrinker candidates all travel as
        specs — so unlike ``describe`` it must not lose float precision.
        """
        return ",".join(event.to_token() for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {self.describe()}>"
