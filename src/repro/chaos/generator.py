"""Seeded scenario generation from a declarative search space.

The generator is a pure function of ``(master_seed, trial_index)``: each
trial gets its own named :class:`random.Random` stream, so a campaign is
replayable from one master seed, trials can be regenerated individually
(resume, replay, shrinking), and inserting a trial never perturbs the
ones after it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..faults import FAULT_KINDS, FaultEvent, FaultPlan
from ..tcp import TcpConfig
from .scenario import BASELINE_CONFIG, Scenario

__all__ = ["SearchSpace", "ScenarioGenerator"]


@dataclass(frozen=True)
class SearchSpace:
    """What the fuzzer is allowed to vary, as plain value pools.

    Every field is a tuple the generator draws from uniformly (repeat a
    value to weight it, as ``recovery`` does).  The defaults deliberately
    cross the paper's sore spots: RTO floors straddling the RRC
    promotion delay, slow-start-after-idle on/off, the §6.2.1 remedy,
    and every fault kind the injector knows.
    """

    protocols: Tuple[str, ...] = ("http", "spdy")
    networks: Tuple[str, ...] = ("3g", "lte", "wifi")
    site_pools: Tuple[Tuple[int, ...], ...] = (
        (1,), (2,), (1, 2), (5, 9), (1, 2, 3))
    think_times: Tuple[float, ...] = (3.0, 4.0, 6.0)
    tail_times: Tuple[float, ...] = (4.0, 8.0)
    load_timeouts: Tuple[float, ...] = (6.0, 10.0)
    environment_variability: Tuple[float, ...] = (0.0, 0.25)
    recovery: Tuple[bool, ...] = (True, True, False)
    min_rtos: Tuple[float, ...] = (0.2, 0.05, 1.0)
    slow_start_after_idle: Tuple[bool, ...] = (True, False)
    reset_rtt_after_idle: Tuple[bool, ...] = (False, True)
    use_metrics_cache: Tuple[bool, ...] = (True, False)
    congestion_controls: Tuple[str, ...] = ("cubic", "reno")
    fault_kinds: Tuple[str, ...] = FAULT_KINDS
    max_fault_events: int = 4
    seed_bits: int = 16


class ScenarioGenerator:
    """Draws replayable scenarios: ``scenario(i)`` is a pure function."""

    def __init__(self, master_seed: int = 0,
                 space: Optional[SearchSpace] = None):
        self.master_seed = master_seed
        self.space = space or SearchSpace()

    # ------------------------------------------------------------------
    def scenario(self, index: int) -> Scenario:
        """The ``index``-th scenario of this master seed's campaign."""
        space = self.space
        rng = random.Random(f"chaos/{self.master_seed}/{index}")
        config = dict(BASELINE_CONFIG)
        sites = list(rng.choice(space.site_pools))
        think_time = rng.choice(space.think_times)
        tail_time = rng.choice(space.tail_times)
        config.update(
            protocol=rng.choice(space.protocols),
            network=rng.choice(space.networks),
            site_ids=sites,
            think_time=think_time,
            tail_time=tail_time,
            load_timeout=rng.choice(space.load_timeouts),
            environment_variability=rng.choice(
                space.environment_variability),
            recovery=rng.choice(space.recovery),
        )

        # TCP knobs: record only non-default draws, so scenarios stay
        # minimal and the shrinker can "snap back" by dropping keys.
        defaults = TcpConfig()
        tcp = {}
        for fld, pool in (("min_rto", space.min_rtos),
                          ("slow_start_after_idle",
                           space.slow_start_after_idle),
                          ("reset_rtt_after_idle",
                           space.reset_rtt_after_idle),
                          ("use_metrics_cache", space.use_metrics_cache),
                          ("congestion_control",
                           space.congestion_controls)):
            value = rng.choice(pool)
            if value != getattr(defaults, fld):
                tcp[fld] = value

        horizon = len(sites) * think_time + tail_time
        events = [self._draw_event(rng, horizon, think_time)
                  for _ in range(rng.randint(1, space.max_fault_events))]
        plan = FaultPlan(events)
        return Scenario(seed=rng.randrange(2 ** space.seed_bits),
                        faults=plan.to_spec(), config=config, tcp=tcp)

    def scenarios(self, n: int, start: int = 0) -> Iterator[Scenario]:
        for index in range(start, start + n):
            yield self.scenario(index)

    # ------------------------------------------------------------------
    def _draw_event(self, rng: random.Random, horizon: float,
                    think_time: float) -> FaultEvent:
        kind = rng.choice(self.space.fault_kinds)
        time = round(rng.uniform(0.0, horizon), 3)
        if kind == "arq":
            return FaultEvent(
                "arq", time=time,
                rate=round(rng.uniform(0.01, 0.3), 4),
                jitter=round(rng.uniform(0.05, 1.5), 3))
        if kind == "delayspike":
            return FaultEvent(
                "delayspike", time=time,
                duration=round(rng.uniform(0.5, 5.0), 3))
        if kind == "blackout":
            return FaultEvent(
                "blackout", time=time,
                duration=round(rng.uniform(0.2, max(think_time, 1.0)), 3),
                policy=rng.choice(("queue", "drop")))
        if kind == "burstloss":
            return FaultEvent(
                "burstloss", time=time,
                rate=round(rng.uniform(0.005, 0.25), 4),
                mean_burst=rng.choice((2.0, 8.0, 20.0)))
        if kind == "handover":
            return FaultEvent("handover", time=time,
                              duration=round(rng.uniform(0.0, 2.0), 3))
        if kind == "proxyrestart":
            return FaultEvent("proxyrestart", time=time)
        return FaultEvent("rst", time=time, count=rng.randint(1, 3))
