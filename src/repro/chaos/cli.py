"""``repro chaos``: drive fuzzing campaigns and replay repro records.

Campaign mode (the default) runs ``--trials`` generated scenarios;
``--replay`` instead re-checks an existing record: a raw chaos-journal
JSON line, a journal path (all failed records, or one with ``PATH:N``),
or a corpus ``*.json`` file.  Replay exit status means "the record
behaved as expected": a journaled failure is expected to *still fail*
the same way (that is what replayable means), while a corpus entry —
a fixed bug or a sentinel — is expected to pass.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Optional, Tuple

from ..faults import FaultPlan, FaultSpecError
from .campaign import run_chaos_campaign
from .corpus import CorpusFormatError, load_corpus, replay_entry
from .differential import check_differential, run_differential_campaign
from .oracles import CHAOS_EVENT_BUDGET, check_scenario
from .scenario import Scenario
from .shrinker import DEFAULT_SHRINK_BUDGET

__all__ = ["add_chaos_arguments", "run_chaos"]


def add_chaos_arguments(parser) -> None:
    parser.add_argument("--trials", type=int, default=25,
                        help="scenarios to generate and check (default 25)")
    parser.add_argument("--master-seed", type=int, default=0,
                        help="one seed replays the whole campaign")
    parser.add_argument("--shrink-budget", type=int,
                        default=DEFAULT_SHRINK_BUDGET, metavar="N",
                        help="oracle runs allowed per shrink (default "
                             f"{DEFAULT_SHRINK_BUDGET})")
    parser.add_argument("--event-budget", type=int,
                        default=CHAOS_EVENT_BUDGET, metavar="N",
                        help="wedge watchdog: simulator events per run "
                             f"(default {CHAOS_EVENT_BUDGET:,})")
    parser.add_argument("--corpus-dir", metavar="DIR", default=None,
                        help="write each shrunk failure as a corpus "
                             "repro JSON into DIR")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop starting new trials after this much "
                             "wall-clock time")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="append-only JSONL trial journal")
    parser.add_argument("--resume", metavar="JOURNAL", default=None,
                        help="journal to resume: journaled (scenario, "
                             "seed) trials are skipped")
    parser.add_argument("--no-determinism", action="store_true",
                        help="skip the double-run determinism oracle "
                             "(halves the cost, drops the coverage)")
    parser.add_argument("--differential", action="store_true",
                        help="run the metamorphic/differential campaign: "
                             "each trial runs its scenario under a paired "
                             "configuration (cc-bytes, proto-bytes, "
                             "checks, dch-pin, frto in rotation) and "
                             "asserts the relation between the two runs")
    parser.add_argument("--replay", metavar="RECORD", default=None,
                        help="replay a chaos-journal JSON line, a journal "
                             "path (optionally PATH:N for line N), or a "
                             "corpus entry file instead of fuzzing")
    from ..parallel.cli import add_parallel_arguments
    add_parallel_arguments(parser)


def run_chaos(args) -> int:
    from ..parallel.cli import notify_stderr, supervision_exit_code
    from ..reporting import render_chaos_summary, render_parallel_stats
    from ..sanity import JournalFormatError

    if args.replay is not None:
        return _run_replay(args)
    journal = args.resume or args.journal
    workers = getattr(args, "workers", 0)
    try:
        if workers > 0:
            from ..parallel import run_parallel_chaos
            if args.time_budget is not None:
                print("--time-budget is serial-only; ignoring it under "
                      "--workers (interrupt with ^C to drain instead)",
                      file=sys.stderr)
            result = run_parallel_chaos(
                trials=args.trials, master_seed=args.master_seed,
                shrink_budget=args.shrink_budget,
                event_budget=args.event_budget,
                determinism=not args.no_determinism,
                journal_path=journal, resume=args.resume is not None,
                corpus_dir=args.corpus_dir,
                differential=getattr(args, "differential", False),
                workers=workers, trial_timeout=args.trial_timeout,
                max_retries=args.max_retries,
                max_rss_mb=getattr(args, "max_rss_mb", None),
                notify=notify_stderr)
        elif getattr(args, "differential", False):
            result = run_differential_campaign(
                trials=args.trials, master_seed=args.master_seed,
                shrink_budget=args.shrink_budget,
                event_budget=args.event_budget,
                journal_path=journal, resume=args.resume is not None,
                corpus_dir=args.corpus_dir,
                time_budget=args.time_budget)
        else:
            result = run_chaos_campaign(
                trials=args.trials, master_seed=args.master_seed,
                shrink_budget=args.shrink_budget,
                event_budget=args.event_budget,
                determinism=not args.no_determinism,
                journal_path=journal, resume=args.resume is not None,
                corpus_dir=args.corpus_dir, time_budget=args.time_budget)
    except (FileNotFoundError, JournalFormatError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_chaos_summary(result.records, result.corpus_paths))
    if result.parallel is not None:
        print(render_parallel_stats(result.parallel))
        code = supervision_exit_code(result, result.failure_count)
        if code in (3, 130) and journal:
            print(f"campaign incomplete: resume with --resume {journal}",
                  file=sys.stderr)
        return code
    if result.stopped_early:
        print("time budget exhausted: campaign stopped early "
              "(resume with --resume to continue)")
    return 1 if result.failure_count else 0


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------

def _scenario_from_record(record: Dict[str, object]
                          ) -> Tuple[Scenario, Optional[str]]:
    """(scenario, expected status) from a journal/corpus record.

    Chaos records embed the full scenario.  A plain campaign trial
    record (``kind: "trial"``) only carries protocol/network/seed plus
    the failure's exact fault spec, so the rest of the config is
    reconstructed as defaults — enough for fault-plan failures, stated
    loudly when used.
    """
    if "scenario" in record:
        expected = None
        failure = record.get("failure")
        if isinstance(failure, dict):
            expected = str(failure.get("status"))
        if record.get("expected_failure") is not None:
            # corpus entry: the failure it *used to* exhibit; replay is
            # expected to pass now that the bug is fixed.
            expected = "pass"
        scenario = Scenario.from_dict(record["scenario"])  # type: ignore
        return scenario, expected
    failure = record.get("failure") if isinstance(
        record.get("failure"), dict) else {}
    faults = failure.get("faults") or record.get("faults")
    config = {}
    for key in ("protocol", "network"):
        if record.get(key):
            config[key] = record[key]
    print("note: record has no embedded scenario; replaying "
          "protocol/network/seed/faults over the default chaos config",
          file=sys.stderr)
    scenario = Scenario(seed=int(record.get("seed", 0)),
                        faults=faults, config=config)
    expected = str(failure.get("kind")) if failure.get("kind") else None
    return scenario, expected


def _records_to_replay(value: str):
    """Yield (label, record) pairs for a --replay argument."""
    if value.lstrip().startswith("{"):
        yield "<inline>", json.loads(value)
        return
    path, line_spec = value, ""
    if ":" in value and not os.path.exists(value):
        head, _, tail = value.rpartition(":")
        if tail.isdigit():
            path, line_spec = head, tail
    if not os.path.exists(path):
        raise FileNotFoundError(f"no such replay record: {value!r}")
    if path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as handle:
            yield path, json.load(handle)
        return
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if line_spec:
        index = int(line_spec)
        if not (1 <= index <= len(lines)):
            raise FileNotFoundError(
                f"{path} has {len(lines)} lines, no line {index}")
        yield f"{path}:{index}", json.loads(lines[index - 1])
        return
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("status") == "failed":
            yield f"{path}:{number}", record


def _replay_record(record: Dict[str, object], label: str, args
                   ) -> Tuple[object, Optional[str]]:
    """Replay one record through the oracle stack it belongs to.

    Corpus entries (they carry ``schema``/``expected_failure``) go
    through :func:`replay_entry`, which validates forward compatibility
    first; journal records get their fault spec pre-parsed so an
    unknown fault kind fails loudly instead of masquerading as an
    ``exception`` verdict.  Raises :class:`CorpusFormatError`.
    """
    if "schema" in record or record.get("expected_failure") is not None:
        verdict = replay_entry(record, event_budget=args.event_budget,
                               determinism=not args.no_determinism,
                               name=label)
        return verdict, "pass"
    scenario, expected = _scenario_from_record(record)
    if scenario.faults is not None:
        try:
            FaultPlan.parse(scenario.faults)
        except FaultSpecError as exc:
            raise CorpusFormatError(f"{label}: cannot replay fault spec "
                                    f"{scenario.faults!r}: {exc}")
    relation = record.get("relation")
    if relation is not None:
        from .differential import RELATION_NAMES
        if relation not in RELATION_NAMES:
            raise CorpusFormatError(
                f"{label}: unknown differential relation {relation!r} "
                f"(this code knows: {', '.join(RELATION_NAMES)})")
        verdict = check_differential(scenario, str(relation),
                                     event_budget=args.event_budget)
    else:
        verdict = check_scenario(scenario,
                                 event_budget=args.event_budget,
                                 determinism=not args.no_determinism)
    return verdict, expected


def _run_replay(args) -> int:
    try:
        pairs = list(_records_to_replay(args.replay))
    except (FileNotFoundError, json.JSONDecodeError, ValueError) as exc:
        print(f"--replay: {exc}", file=sys.stderr)
        return 2
    if not pairs:
        print("--replay: no failed records found", file=sys.stderr)
        return 2
    mismatches = 0
    for label, record in pairs:
        try:
            verdict, expected = _replay_record(record, label, args)
        except CorpusFormatError as exc:
            print(f"--replay: {exc}", file=sys.stderr)
            return 2
        expected = expected or "pass"
        match = verdict.status == expected
        mismatches += 0 if match else 1
        marker = "reproduced" if (match and expected != "pass") else (
            "ok" if match else "DID NOT MATCH")
        print(f"{label}: expected {expected}, got {verdict.status} "
              f"[{marker}]")
        if verdict.message:
            print(f"  {verdict.message}")
    return 1 if mismatches else 0


def replay_corpus_dir(corpus_dir: str, event_budget=CHAOS_EVENT_BUDGET):
    """Programmatic corpus sweep: [(path, entry, verdict), ...]."""
    results = []
    for path, entry in load_corpus(corpus_dir):
        from .corpus import replay_entry
        results.append((path, entry, replay_entry(
            entry, event_budget=event_budget)))
    return results
