"""The unit of chaos: one fully-described, replayable scenario.

A :class:`Scenario` is pure data — a seed, an exact fault-plan spec
string, and two small override dicts (:class:`ExperimentConfig` fields
and :class:`TcpConfig` fields).  Everything the fuzzer touches travels
through this form: the generator draws Scenarios, the oracles run them,
the shrinker mutates them, and the corpus serializes them to JSON.

Keeping overrides (rather than a full config object) is deliberate:
corpus files stay readable, stay small, and keep replaying when
``ExperimentConfig`` grows new fields with benign defaults.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..experiments.runner import ExperimentConfig
from ..tcp import TcpConfig

__all__ = ["Scenario", "BASELINE_CONFIG"]

#: The minimal benign scenario the shrinker snaps fields back toward.
#: Deliberately *not* ExperimentConfig's defaults: chaos trials must be
#: cheap (one site, seconds of think time), and "minimal" for a repro
#: means "smallest run that still fails", not "the paper's full §3
#: procedure".
BASELINE_CONFIG: Dict[str, object] = {
    "protocol": "http",
    "network": "3g",
    "site_ids": [1],
    "think_time": 4.0,
    "tail_time": 4.0,
    "load_timeout": 8.0,
    "environment_variability": 0.25,
    "recovery": True,
}


@dataclass
class Scenario:
    """One (config, fault plan, seed) triple, in serializable form."""

    seed: int = 0
    faults: Optional[str] = None          # exact --faults spec, or None
    config: Dict[str, object] = field(default_factory=dict)
    tcp: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def experiment_config(self) -> ExperimentConfig:
        """Materialize the scenario into a runnable config (validated)."""
        tcp = TcpConfig(**self.tcp)
        tcp.validate()
        overrides = dict(BASELINE_CONFIG)
        overrides.update(self.config)
        return ExperimentConfig(seed=self.seed, fault_plan=self.faults,
                                tcp=tcp, **overrides)

    def digest(self) -> str:
        """Process-stable condition digest (seed excluded, like campaigns)."""
        from ..sanity import config_digest
        return config_digest(self.experiment_config())

    def with_(self, **changes) -> "Scenario":
        """Copy with fields replaced (dicts are deep-copied first)."""
        base = {"seed": self.seed, "faults": self.faults,
                "config": copy.deepcopy(self.config),
                "tcp": copy.deepcopy(self.tcp)}
        base.update(changes)
        return Scenario(**base)

    def key(self) -> str:
        """Cheap exact-identity key (for shrinker dedup, not journaling)."""
        import json
        return json.dumps(self.to_dict(), sort_keys=True)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "faults": self.faults,
                "config": copy.deepcopy(self.config),
                "tcp": copy.deepcopy(self.tcp)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        return cls(seed=int(data.get("seed", 0)),
                   faults=data.get("faults"),
                   config=dict(data.get("config") or {}),
                   tcp=dict(data.get("tcp") or {}))
