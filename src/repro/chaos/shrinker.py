"""Delta-debugging shrinker: minimize a failing scenario.

Given a scenario that fails an oracle, greedily try simpler variants —
fewer fault events first (the biggest wins), then gentler event
parameters, then config fields snapped back to the chaos baseline —
re-running the oracle after every mutation and keeping any variant that
still fails with the *same* failure kind.  The loop restarts from the
accepted variant until a full pass produces no accepted candidate
(1-minimal with respect to the candidate moves) or the shrink budget
(total oracle invocations) runs out.

The oracle is injected as a callable, so tests can shrink against
synthetic bugs without running the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from ..faults import FaultEvent, FaultPlan, FaultSpecError
from .oracles import OracleVerdict
from .scenario import BASELINE_CONFIG, Scenario

__all__ = ["ShrinkResult", "shrink", "DEFAULT_SHRINK_BUDGET"]

#: Default cap on oracle invocations per shrink.  A 4-event scenario is
#: typically 1-minimal well inside this; the cap exists so one flaky
#: failure cannot eat a whole campaign's wall clock.
DEFAULT_SHRINK_BUDGET = 48


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal scenario plus accounting."""

    scenario: Scenario
    verdict: OracleVerdict
    attempts: int                 # oracle invocations spent
    accepted: int                 # candidates that kept the failure
    initial_events: int
    final_events: int
    budget_exhausted: bool = False

    def as_dict(self) -> dict:
        return {"attempts": self.attempts, "accepted": self.accepted,
                "initial_events": self.initial_events,
                "final_events": self.final_events,
                "budget_exhausted": self.budget_exhausted}


def _plan_events(scenario: Scenario) -> List[FaultEvent]:
    if not scenario.faults:
        return []
    return list(FaultPlan.parse(scenario.faults).events)


def _with_events(scenario: Scenario,
                 events: List[FaultEvent]) -> Optional[Scenario]:
    """Scenario with a replaced (validated) plan; None if invalid."""
    if not events:
        return scenario.with_(faults=None)
    try:
        plan = FaultPlan(events)
    except FaultSpecError:
        return None
    return scenario.with_(faults=plan.to_spec())


def _event_count(scenario: Scenario) -> int:
    return len(_plan_events(scenario))


# ----------------------------------------------------------------------
# candidate moves, most aggressive first
# ----------------------------------------------------------------------

def _plan_reductions(scenario: Scenario) -> Iterator[Scenario]:
    """Drop events: all, then halves, then one at a time."""
    events = _plan_events(scenario)
    if not events:
        return
    yield scenario.with_(faults=None)
    n = len(events)
    if n >= 3:
        half = n // 2
        for chunk in (events[half:], events[:half]):
            candidate = _with_events(scenario, list(chunk))
            if candidate is not None:
                yield candidate
    if n >= 2:
        for index in range(n):
            candidate = _with_events(
                scenario, events[:index] + events[index + 1:])
            if candidate is not None:
                yield candidate


def _event_simplifications(scenario: Scenario) -> Iterator[Scenario]:
    """Per event: snap/halve times, durations, rates, counts, policies."""
    events = _plan_events(scenario)
    for index, event in enumerate(events):
        variants: List[FaultEvent] = []

        def patched(**changes) -> FaultEvent:
            fields = {"kind": event.kind, "time": event.time,
                      "duration": event.duration, "rate": event.rate,
                      "mean_burst": event.mean_burst,
                      "policy": event.policy, "count": event.count,
                      "jitter": event.jitter}
            fields.update(changes)
            return FaultEvent(**fields)

        if event.time > 0:
            variants.append(patched(time=0.0))
            if event.time > 0.01:
                variants.append(patched(time=round(event.time / 2, 6)))
        if event.kind in ("blackout", "handover", "delayspike") \
                and event.duration > 0.1:
            variants.append(
                patched(duration=round(event.duration / 2, 6)))
        if event.kind == "handover" and event.duration > 0:
            variants.append(patched(duration=0.0))
        if event.kind == "blackout" and event.policy != "queue":
            variants.append(patched(policy="queue"))
        if event.kind in ("burstloss", "arq"):
            if event.rate > 0.002:
                variants.append(patched(rate=round(event.rate / 2, 6)))
        if event.kind == "burstloss" and event.mean_burst != 8.0:
            variants.append(patched(mean_burst=8.0))
        if event.kind == "arq":
            if event.jitter != 0.2:
                variants.append(patched(jitter=0.2))
            if event.jitter > 0.4:
                variants.append(patched(jitter=round(event.jitter / 2, 6)))
        if event.kind == "rst" and event.count > 1:
            variants.append(patched(count=1))

        for variant in variants:
            candidate = _with_events(
                scenario, events[:index] + [variant] + events[index + 1:])
            if candidate is not None:
                yield candidate


def _config_snaps(scenario: Scenario) -> Iterator[Scenario]:
    """Snap config overrides back to the chaos baseline, drop TCP knobs."""
    for key in sorted(scenario.config):
        baseline = BASELINE_CONFIG.get(key)
        if baseline is None or scenario.config[key] == baseline:
            continue
        candidate = scenario.with_()
        candidate.config[key] = baseline
        yield candidate
    sites = scenario.config.get("site_ids")
    if isinstance(sites, list) and len(sites) > 1:
        candidate = scenario.with_()
        candidate.config["site_ids"] = [sites[0]]
        yield candidate
    for key in sorted(scenario.tcp):
        candidate = scenario.with_()
        del candidate.tcp[key]
        yield candidate


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    yield from _plan_reductions(scenario)
    yield from _event_simplifications(scenario)
    yield from _config_snaps(scenario)


# ----------------------------------------------------------------------

def shrink(scenario: Scenario, verdict: OracleVerdict,
           check: Callable[[Scenario], OracleVerdict],
           budget: int = DEFAULT_SHRINK_BUDGET) -> ShrinkResult:
    """Greedily minimize ``scenario`` while ``check`` keeps failing with
    ``verdict.status``; returns the last accepted (smallest) scenario."""
    current, current_verdict = scenario, verdict
    initial_events = _event_count(scenario)
    seen = {scenario.key()}
    attempts = accepted = 0
    exhausted = False
    progress = True
    while progress and not exhausted:
        progress = False
        for candidate in _candidates(current):
            key = candidate.key()
            if key in seen:
                continue
            seen.add(key)
            if attempts >= budget:
                exhausted = True
                break
            attempts += 1
            candidate_verdict = check(candidate)
            if candidate_verdict.status == verdict.status:
                current, current_verdict = candidate, candidate_verdict
                accepted += 1
                progress = True
                break  # restart candidate generation from the new minimum
    return ShrinkResult(scenario=current, verdict=current_verdict,
                        attempts=attempts, accepted=accepted,
                        initial_events=initial_events,
                        final_events=_event_count(current),
                        budget_exhausted=exhausted)
