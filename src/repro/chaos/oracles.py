"""Failure oracles: decide whether a scenario's run is healthy.

Three oracles run on every chaos trial:

* **crash oracle** — the scenario runs under ``checks="strict"`` with
  the wedge watchdog armed; any escape is classified by exception type
  into ``invariant-violation`` / ``wedge`` / ``exception``.
* **determinism oracle** — the scenario runs *twice*; the two runs'
  event digests (summary + fault log + visit order) must match exactly.
  This is the oracle no single-run test can provide, and the one that
  catches hidden global state, set-iteration ordering, and hash-salt
  leaks the lint layer cannot prove absent.
* **pass** — a healthy run still yields its digest, so corpus sentinel
  entries double as determinism anchors.
"""

from __future__ import annotations

import hashlib
import json
import traceback
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.analysis import summarize_run
from ..experiments.runner import run_experiment
from ..sanity import InvariantViolation, WedgeError
from .scenario import Scenario

__all__ = ["CHAOS_EVENT_BUDGET", "FAILURE_KINDS", "OracleVerdict",
           "check_scenario", "classify_exception", "run_digest"]

#: Per-run event budget for chaos trials.  Chaos scenarios are one to
#: three sites (tens of thousands of events); this is ~100x headroom
#: while still aborting a zero-delay event loop in seconds.
CHAOS_EVENT_BUDGET = 3_000_000

FAILURE_KINDS = ("invariant-violation", "wedge", "exception",
                 "determinism-divergence", "relation-violation")


@dataclass
class OracleVerdict:
    """What the oracles concluded about one scenario."""

    status: str                       # "pass" or one of FAILURE_KINDS
    error_type: Optional[str] = None
    message: Optional[str] = None
    run_digest: Optional[str] = None  # first run's event digest, if any
    traceback_tail: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.status != "pass"

    def as_dict(self) -> dict:
        return {"status": self.status, "error_type": self.error_type,
                "message": self.message, "run_digest": self.run_digest,
                "traceback_tail": list(self.traceback_tail)}


def run_digest(run) -> str:
    """Event digest of one run: summary + fault log + visit order.

    Two replays of the same scenario must agree on this digest; the
    summary folds in PLTs, retransmission counts, radio accounting and
    invariant counters, and the fault log pins exact injection times.
    """
    parts = {"summary": summarize_run(run),
             "fault_log": (run.fault_report or {}).get("log", []),
             "visit_order": run.visit_order}
    blob = json.dumps(parts, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def classify_exception(exc: BaseException) -> str:
    """Map an escaped exception onto a failure kind."""
    if isinstance(exc, InvariantViolation):
        return "invariant-violation"
    if isinstance(exc, WedgeError):
        return "wedge"
    return "exception"


def _failure_verdict(exc: BaseException, status: Optional[str] = None,
                     run_digest_: Optional[str] = None) -> OracleVerdict:
    tail = traceback.format_exception_only(type(exc), exc)
    return OracleVerdict(
        status=status or classify_exception(exc),
        error_type=type(exc).__name__,
        # Strict violations append a multi-line event ring buffer; the
        # first line identifies the failure and keeps records compact.
        message=str(exc).split("\n", 1)[0][:500],
        run_digest=run_digest_,
        traceback_tail=[line.rstrip("\n") for line in tail][-8:])


def check_scenario(scenario: Scenario,
                   event_budget: Optional[int] = CHAOS_EVENT_BUDGET,
                   determinism: bool = True,
                   pages=None) -> OracleVerdict:
    """Run every oracle against one scenario and return the verdict."""
    config = scenario.experiment_config().with_overrides(
        checks="strict", max_events=event_budget)
    try:
        first = run_experiment(config, pages)
    except Exception as exc:  # noqa: BLE001 - classification is the point
        return _failure_verdict(exc)
    digest = run_digest(first)
    if determinism:
        try:
            second = run_experiment(config, pages)
        except Exception as exc:  # noqa: BLE001
            # Passing once then crashing on an identical replay *is* a
            # determinism failure, whatever the exception type.
            return _failure_verdict(exc, status="determinism-divergence",
                                    run_digest_=digest)
        second_digest = run_digest(second)
        if second_digest != digest:
            return OracleVerdict(
                status="determinism-divergence",
                error_type="DigestMismatch",
                message=f"replay digest {second_digest} != first run "
                        f"digest {digest} for the same scenario",
                run_digest=digest)
    return OracleVerdict(status="pass", run_digest=digest)
