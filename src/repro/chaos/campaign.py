"""The chaos campaign driver: generate → check → shrink → archive.

Composes the pieces this package provides with the crash-safe journal
from :mod:`repro.sanity.campaign`: every trial appends one JSON record
(scenario included, so any journaled failure replays from the journal
line alone), resume skips journaled (digest, seed) pairs, and the whole
campaign is a pure function of its arguments — two invocations with the
same master seed and trial count write byte-identical journals.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sanity import CampaignJournal, JOURNAL_SCHEMA
from .corpus import corpus_entry, save_entry
from .generator import ScenarioGenerator, SearchSpace
from .oracles import CHAOS_EVENT_BUDGET, OracleVerdict, check_scenario
from .scenario import Scenario
from .shrinker import DEFAULT_SHRINK_BUDGET, shrink

__all__ = ["ChaosResult", "run_chaos_campaign", "run_chaos_trial"]


@dataclass
class ChaosResult:
    """Everything one chaos campaign produced."""

    records: List[Dict[str, object]] = field(default_factory=list)
    corpus_paths: List[str] = field(default_factory=list)
    journal_path: Optional[str] = None
    stopped_early: bool = False
    #: Supervision counters when the campaign ran under ``--workers``
    #: (see :mod:`repro.parallel`); None for serial runs.
    parallel: Optional[Dict[str, object]] = None

    @property
    def trial_count(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("status") == "failed"]

    @property
    def failure_count(self) -> int:
        return len(self.failures)

    @property
    def resumed_count(self) -> int:
        return sum(1 for r in self.records if r.get("resumed"))

    def by_failure_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.failures:
            failure = record.get("failure") or {}
            kind = str(failure.get("status", "exception"))
            counts[kind] = counts.get(kind, 0) + 1
        return counts


def run_chaos_trial(scenario: Scenario, index: int, master_seed: int,
                    check: Callable[[Scenario], OracleVerdict],
                    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
                    corpus_dir: Optional[str] = None,
                    ) -> Tuple[Dict[str, object], Optional[str]]:
    """Check one scenario and build its journal record.

    The single place a chaos-trial record is built, shared by the serial
    loop and the parallel workers; for a given (scenario, index,
    master_seed) the record is byte-identical no matter which process
    produced it.  Returns ``(record, corpus_path_or_None)``.
    """
    verdict = check(scenario)
    record: Dict[str, object] = {
        "kind": "chaos-trial", "schema": JOURNAL_SCHEMA, "index": index,
        "master_seed": master_seed, "digest": scenario.digest(),
        "seed": scenario.seed, "faults": scenario.faults,
        "scenario": scenario.to_dict(),
    }
    corpus_path: Optional[str] = None
    if not verdict.failed:
        record.update(status="ok", run_digest=verdict.run_digest,
                      failure=None)
    else:
        shrunk = shrink(scenario, verdict, check, budget=shrink_budget)
        record.update(
            status="failed", run_digest=verdict.run_digest,
            failure=verdict.as_dict(),
            shrunk={"scenario": shrunk.scenario.to_dict(),
                    "faults": shrunk.scenario.faults,
                    "failure": shrunk.verdict.as_dict(),
                    **shrunk.as_dict()})
        if corpus_dir is not None:
            entry = corpus_entry(shrunk.scenario, shrunk.verdict,
                                 master_seed=master_seed,
                                 trial_index=index,
                                 shrink_info=shrunk.as_dict())
            corpus_path = save_entry(entry, corpus_dir)
            record["corpus_entry"] = os.path.basename(corpus_path)
    return record, corpus_path


def run_chaos_campaign(trials: int,
                       master_seed: int = 0,
                       space: Optional[SearchSpace] = None,
                       shrink_budget: int = DEFAULT_SHRINK_BUDGET,
                       event_budget: Optional[int] = CHAOS_EVENT_BUDGET,
                       determinism: bool = True,
                       journal_path: Optional[str] = None,
                       resume: bool = False,
                       corpus_dir: Optional[str] = None,
                       time_budget: Optional[float] = None,
                       clock: Optional[Callable[[], float]] = None,
                       check: Optional[
                           Callable[[Scenario], OracleVerdict]] = None,
                       ) -> ChaosResult:
    """Run a chaos campaign of ``trials`` scenarios.

    ``check`` defaults to the full oracle stack; tests inject synthetic
    oracles here.  ``time_budget`` (wall-clock seconds, measured by
    ``clock``) stops the campaign between trials; the journal still
    holds every finished trial, so ``resume`` picks up where the budget
    ran out.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    generator = ScenarioGenerator(master_seed, space)
    if check is None:
        def check(scenario: Scenario) -> OracleVerdict:
            return check_scenario(scenario, event_budget=event_budget,
                                  determinism=determinism)
    journal = CampaignJournal(journal_path) if journal_path else None
    done: Dict[Tuple[str, int], Dict[str, object]] = {}
    if resume:
        if journal is None:
            raise ValueError("resume requires a journal path")
        if not os.path.exists(journal.path):
            raise FileNotFoundError(
                f"cannot resume: journal {journal.path!r} does not exist")
        for record in journal.load():
            if record.get("kind") != "chaos-trial":
                continue
            key = (str(record.get("digest")), int(record.get("seed", 0)))
            done[key] = record

    # The time budget is inherently wall-clock; it bounds the *campaign
    # process*, not anything inside the simulated world, and is never
    # journaled, so determinism of the records is unaffected.
    if clock is None:
        clock = time.monotonic  # repro-lint: disable=DET001
    start = clock()

    result = ChaosResult(journal_path=journal_path)
    records = result.records
    for index in range(trials):
        if time_budget is not None and clock() - start >= time_budget:
            result.stopped_early = True
            break
        scenario = generator.scenario(index)
        digest = scenario.digest()
        prior = done.get((digest, scenario.seed))
        if prior is not None:
            record = dict(prior)
            record["resumed"] = True
            records.append(record)  # repro-lint: disable=MEM001 -- one record per chaos trial, bounded by --trials
            continue
        record, corpus_path = run_chaos_trial(
            scenario, index, master_seed, check,
            shrink_budget=shrink_budget, corpus_dir=corpus_dir)
        if corpus_path is not None:
            result.corpus_paths.append(corpus_path)
        if journal is not None:
            journal.append(record)
        records.append(record)  # repro-lint: disable=MEM001 -- one record per chaos trial, bounded by --trials
    if journal is not None:
        journal.close()
    return result
