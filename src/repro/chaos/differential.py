"""Differential & metamorphic oracles: catch the self-consistently wrong.

The crash/determinism oracles prove a run is *internally* healthy; they
cannot notice a simulator that is deterministically, reproducibly wrong —
a CUBIC path that corrupts byte accounting, a sanitizer that perturbs
the run it observes, a remedy that quietly hurts the protocol it is
supposed to help.  Those are exactly the cross-configuration comparisons
the paper's §5–§6 conclusions rest on, so this module runs every fuzzed
scenario under a *pair* of configurations and asserts a metamorphic
relation that must hold between the two runs:

========== ============================================================
relation    what must hold (and which paper claim it protects)
========== ============================================================
cc-bytes    per-link byte/packet conservation residuals are zero under
            Reno and CUBIC alike (Table 2: protocol comparisons assume
            the transport moves bytes correctly under either cc)
proto-bytes with a fixed site corpus, a page completed under HTTP and
            under SPDY transfers the same origin object bytes (§4:
            PLT differences must come from scheduling, not content)
checks      the strict-checks run is byte-identical to the checks-off
            run modulo sanitizer counters (the §3 measurement harness
            must not perturb what it measures)
dch-pin     the §5.6.1/Figure 14 DCH-pinning remedy never makes SPDY
            page loads slower (beyond a fixed tolerance)
frto        with F-RTO disabled the spurious-RTO undo machinery stays
            silent: zero frto_undos, conservation still intact (§5.3's
            spurious-timeout accounting is really driven by F-RTO)
========== ============================================================

A violated relation is classified ``relation-violation`` and flows
through the same shrinker and corpus as any crash: the pair is bound to
the trial (never derived from scenario content), so delta-debugging
mutates the scenario while holding the comparison fixed and produces a
1-minimal *paired* repro.
"""

from __future__ import annotations

import hashlib
import json
import os
import statistics
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..core.analysis import summarize_run
from ..experiments.runner import run_experiment
from ..sanity import CampaignJournal, JOURNAL_SCHEMA
from ..sanity.checks import _testbed_links
from .corpus import corpus_entry, save_entry
from .generator import ScenarioGenerator, SearchSpace
from .campaign import ChaosResult
from .oracles import (CHAOS_EVENT_BUDGET, OracleVerdict, _failure_verdict,
                      run_digest)
from .scenario import Scenario
from .shrinker import DEFAULT_SHRINK_BUDGET, shrink

__all__ = ["RELATION_NAMES", "RELATIONS", "check_differential",
           "differential_digest", "differential_report", "pair_scenarios",
           "relation_for_trial", "run_differential_campaign",
           "run_differential_trial", "DCH_PINNING_TOLERANCE"]

#: Slack for the dch-pin relation, in seconds of median PLT.  Keepalive
#: pings share the uplink with requests, so under a hostile fault plan
#: pinning can cost a serialization quantum or two; anything beyond this
#: is a real regression of the Figure 14 remedy.
DCH_PINNING_TOLERANCE = 0.5


# ----------------------------------------------------------------------
# run profiles: what each relation compares
# ----------------------------------------------------------------------

def _link_residuals(run) -> Dict[str, Tuple[int, int]]:
    """Per-link conservation residuals (packets, bytes) from the final
    counters: accepted - delivered - lost - in_flight.  Computed here,
    independently of the sanitizer, so the relation holds teeth even in
    checks-off runs."""
    residuals: Dict[str, Tuple[int, int]] = {}
    for link in _testbed_links(run.testbed):
        residuals[link.name] = (
            link.packets_accepted - link.packets_delivered
            - link.packets_lost - link.packets_in_flight,
            link.bytes_accepted - link.bytes_delivered
            - link.bytes_lost - link.bytes_in_flight)
    return residuals


def _page_bytes(run) -> Dict[int, int]:
    """site_id -> completed origin object bytes, for *completed* pages.

    Timed-out pages are excluded: which objects made it before the
    timeout is legitimately protocol-dependent.  For a page whose onload
    fired, the object set is the site corpus and every object's size is
    corpus metadata — invariant across protocol and congestion control.
    """
    profile: Dict[int, int] = {}
    for page in run.pages:
        if page.timed_out or page.onload_at is None:
            continue
        profile[page.site_id] = sum(
            t.size for t in page.objects if t.complete)
    return profile


def _frto_undos(run) -> int:
    stacks = (run.testbed.client_stack, run.testbed.proxy_stack)
    return sum(c.stats.frto_undos
               for stack in stacks for c in stack.all_connections)


def differential_digest(run) -> str:
    """``run_digest`` with the sanitizer's own counters stripped.

    The checks relation demands that strict checks observe without
    perturbing; the only keys allowed to differ are the sanitizer's
    bookkeeping (``invariant_checks`` / ``invariant_violations``), so
    they are excluded from the hash and everything else must match.
    """
    summary = {key: value for key, value in summarize_run(run).items()
               if not key.startswith("invariant_")}
    parts = {"summary": summary,
             "fault_log": (run.fault_report or {}).get("log", []),
             "visit_order": run.visit_order}
    blob = json.dumps(parts, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# the relation catalogue
# ----------------------------------------------------------------------

def _median_plt(run) -> Optional[float]:
    plts = list(run.plts_by_site().values())
    return statistics.median(plts) if plts else None


def _verify_cc_bytes(run_a, run_b) -> Optional[str]:
    for tag, run in (("cubic", run_a), ("reno", run_b)):
        for name, (packets, bytes_) in sorted(_link_residuals(run).items()):
            if packets or bytes_:
                return (f"byte conservation broken under {tag}: link "
                        f"{name} residual packets={packets} "
                        f"bytes={bytes_} (accepted != delivered + lost "
                        f"+ in-flight)")
    return None


def _verify_proto_bytes(run_a, run_b) -> Optional[str]:
    http, spdy = _page_bytes(run_a), _page_bytes(run_b)
    for site in sorted(set(http) & set(spdy)):
        if http[site] != spdy[site]:
            return (f"site {site} transferred {http[site]} origin bytes "
                    f"under http but {spdy[site]} under spdy with the "
                    f"same fixed corpus")
    return None


def _verify_checks(run_a, run_b) -> Optional[str]:
    off, strict = differential_digest(run_a), differential_digest(run_b)
    if off != strict:
        return (f"strict checks perturbed the run: checks-off digest "
                f"{off} != checks-strict digest {strict} (modulo "
                f"sanitizer counters)")
    return None


def _verify_dch_pin(run_a, run_b) -> Optional[str]:
    base, pinned = _median_plt(run_a), _median_plt(run_b)
    if base is None or pinned is None:
        return None
    if pinned > base + DCH_PINNING_TOLERANCE:
        return (f"DCH pinning made SPDY slower: median PLT {pinned:.3f}s "
                f"pinned vs {base:.3f}s baseline (tolerance "
                f"{DCH_PINNING_TOLERANCE}s)")
    return None


def _verify_frto(run_a, run_b) -> Optional[str]:
    undos_off = _frto_undos(run_b)
    if undos_off:
        return (f"frto=off run still recorded {undos_off} F-RTO "
                f"undo(s): the ablation gate is leaking")
    for tag, run in (("frto-on", run_a), ("frto-off", run_b)):
        for name, (packets, bytes_) in sorted(_link_residuals(run).items()):
            if packets or bytes_:
                return (f"byte conservation broken under {tag}: link "
                        f"{name} residual packets={packets} "
                        f"bytes={bytes_}")
    return None


#: name -> (A overrides, B overrides, verify, blurb).  Overrides are
#: (config dict, tcp dict) layered onto the scenario; A is the baseline
#: side of the comparison and B the variant.
RELATIONS: Dict[str, Tuple[Tuple[Dict, Dict], Tuple[Dict, Dict],
                           Callable, str]] = {
    "cc-bytes": (
        ({}, {"congestion_control": "cubic"}),
        ({}, {"congestion_control": "reno"}),
        _verify_cc_bytes,
        "per-link byte conservation identical across cubic/reno"),
    "proto-bytes": (
        ({"protocol": "http"}, {}),
        ({"protocol": "spdy"}, {}),
        _verify_proto_bytes,
        "completed pages transfer identical origin bytes across "
        "http/spdy"),
    "checks": (
        ({}, {}),
        ({}, {}),
        _verify_checks,
        "checks=strict run digest identical to checks=off modulo "
        "sanitizer counters"),
    "dch-pin": (
        ({"protocol": "spdy", "keepalive_ping": False}, {}),
        ({"protocol": "spdy", "keepalive_ping": True}, {}),
        _verify_dch_pin,
        "DCH pinning never increases SPDY median PLT (tolerance "
        f"{DCH_PINNING_TOLERANCE}s)"),
    "frto": (
        ({}, {"frto": True}),
        ({}, {"frto": False}),
        _verify_frto,
        "frto=off records zero undos; conservation intact either way"),
}

RELATION_NAMES: Tuple[str, ...] = tuple(RELATIONS)


def relation_for_trial(index: int) -> str:
    """Deterministic relation assignment: bound to the trial index, never
    to scenario content, so shrinker mutations cannot flip the pair."""
    return RELATION_NAMES[index % len(RELATION_NAMES)]


def pair_scenarios(scenario: Scenario,
                   relation: str) -> Tuple[Scenario, Scenario]:
    """The (A, B) scenario variants one relation compares."""
    (config_a, tcp_a), (config_b, tcp_b), _, _ = _relation(relation)
    return (scenario.with_(config={**scenario.config, **config_a},
                           tcp={**scenario.tcp, **tcp_a}),
            scenario.with_(config={**scenario.config, **config_b},
                           tcp={**scenario.tcp, **tcp_b}))


def _relation(name: str):
    try:
        return RELATIONS[name]
    except KeyError:
        raise ValueError(f"unknown relation {name!r} (expected one of "
                         f"{', '.join(RELATION_NAMES)})")


# ----------------------------------------------------------------------
# the differential oracle
# ----------------------------------------------------------------------

def check_differential(scenario: Scenario, relation: str,
                       event_budget: Optional[int] = CHAOS_EVENT_BUDGET
                       ) -> OracleVerdict:
    """Run one scenario under a relation's paired configs and verdict it.

    Both runs use ``checks="off"`` — except the checks relation, whose
    entire point is comparing off against strict — so a corrupted
    counter surfaces as a *relation* violation computed from the final
    books, not as the sanitizer's own in-run exception.  A crash in
    either half still classifies through the usual exception taxonomy.
    """
    _, _, verify, _ = _relation(relation)
    variant_a, variant_b = pair_scenarios(scenario, relation)
    checks = ("off", "strict") if relation == "checks" else ("off", "off")
    runs = []
    for variant, mode in zip((variant_a, variant_b), checks):
        config = variant.experiment_config().with_overrides(
            checks=mode, max_events=event_budget)
        try:
            runs.append(run_experiment(config))
        except Exception as exc:  # noqa: BLE001 - classification is the point
            return _failure_verdict(exc)
    run_a, run_b = runs
    message = verify(run_a, run_b)
    digest = run_digest(run_a)
    if message is not None:
        return OracleVerdict(status="relation-violation",
                             error_type="RelationViolation",
                             message=f"{relation}: {message}",
                             run_digest=digest)
    return OracleVerdict(status="pass", run_digest=digest)


def differential_report(scenario: Scenario, relation: str,
                        event_budget: Optional[int] = CHAOS_EVENT_BUDGET
                        ) -> Dict[str, object]:
    """Side-by-side profile of one scenario under a relation pair.

    The data behind ``repro diff``: per-side digests and headline
    metrics plus the verdict.  Runs the pair once more than
    :func:`check_differential` would strictly need, in exchange for
    symmetric reporting.
    """
    _, _, verify, blurb = _relation(relation)
    variant_a, variant_b = pair_scenarios(scenario, relation)
    checks = ("off", "strict") if relation == "checks" else ("off", "off")
    sides = []
    runs = []
    for variant, mode in zip((variant_a, variant_b), checks):
        config = variant.experiment_config().with_overrides(
            checks=mode, max_events=event_budget)
        run = run_experiment(config)
        runs.append(run)
        summary = summarize_run(run)
        sides.append({
            "config": dict(variant.config), "tcp": dict(variant.tcp),
            "checks": mode,
            "digest": run_digest(run),
            "differential_digest": differential_digest(run),
            "median_plt": summary["median_plt"],
            "retransmissions": summary["retransmissions"],
            "spurious_retransmissions":
                summary["spurious_retransmissions"],
            "page_bytes": _page_bytes(run),
            "link_residuals": {name: list(residual) for name, residual
                               in sorted(_link_residuals(run).items())},
            "frto_undos": _frto_undos(run),
        })
    message = verify(runs[0], runs[1])
    return {"relation": relation, "description": blurb,
            "scenario": scenario.to_dict(),
            "a": sides[0], "b": sides[1],
            "violation": message}


# ----------------------------------------------------------------------
# the differential campaign
# ----------------------------------------------------------------------

def run_differential_trial(scenario: Scenario, relation: str, index: int,
                           master_seed: int,
                           check: Callable[[Scenario, str], OracleVerdict],
                           shrink_budget: int = DEFAULT_SHRINK_BUDGET,
                           corpus_dir: Optional[str] = None,
                           ) -> Tuple[Dict[str, object], Optional[str]]:
    """Check one scenario under its relation and build its record.

    Shared by the serial loop and the parallel workers (see
    :func:`repro.chaos.campaign.run_chaos_trial`); shrinking re-checks
    candidates under the *same* relation the failure was found with.
    Returns ``(record, corpus_path_or_None)``.
    """
    verdict = check(scenario, relation)
    record: Dict[str, object] = {
        "kind": "chaos-trial", "schema": JOURNAL_SCHEMA,
        "mode": "differential", "index": index, "relation": relation,
        "master_seed": master_seed, "digest": scenario.digest(),
        "seed": scenario.seed, "faults": scenario.faults,
        "scenario": scenario.to_dict(),
    }
    corpus_path: Optional[str] = None
    if not verdict.failed:
        record.update(status="ok", run_digest=verdict.run_digest,
                      failure=None)
    else:
        def recheck(candidate: Scenario) -> OracleVerdict:
            return check(candidate, relation)
        shrunk = shrink(scenario, verdict, recheck, budget=shrink_budget)
        record.update(
            status="failed", run_digest=verdict.run_digest,
            failure=verdict.as_dict(),
            shrunk={"scenario": shrunk.scenario.to_dict(),
                    "faults": shrunk.scenario.faults,
                    "failure": shrunk.verdict.as_dict(),
                    **shrunk.as_dict()})
        if corpus_dir is not None:
            entry = corpus_entry(shrunk.scenario, shrunk.verdict,
                                 master_seed=master_seed,
                                 trial_index=index,
                                 shrink_info=shrunk.as_dict(),
                                 relation=relation)
            corpus_path = save_entry(entry, corpus_dir)
            record["corpus_entry"] = os.path.basename(corpus_path)
    return record, corpus_path


def run_differential_campaign(trials: int,
                              master_seed: int = 0,
                              space: Optional[SearchSpace] = None,
                              shrink_budget: int = DEFAULT_SHRINK_BUDGET,
                              event_budget: Optional[int]
                              = CHAOS_EVENT_BUDGET,
                              journal_path: Optional[str] = None,
                              resume: bool = False,
                              corpus_dir: Optional[str] = None,
                              time_budget: Optional[float] = None,
                              clock: Optional[Callable[[], float]] = None,
                              check: Optional[
                                  Callable[[Scenario, str],
                                           OracleVerdict]] = None,
                              ) -> ChaosResult:
    """Run ``trials`` scenarios, each checked under its trial's relation.

    The same crash-safe journal/resume/corpus contract as
    :func:`~repro.chaos.campaign.run_chaos_campaign`; records carry a
    ``relation`` field, resume keys include it, and shrinking re-checks
    candidates under the *same* relation the failure was found with.
    ``check`` (scenario, relation) -> verdict is injectable for tests.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    generator = ScenarioGenerator(master_seed, space)
    if check is None:
        def check(scenario: Scenario, relation: str) -> OracleVerdict:
            return check_differential(scenario, relation,
                                      event_budget=event_budget)
    journal = CampaignJournal(journal_path) if journal_path else None
    done: Dict[Tuple[str, int, str], Dict[str, object]] = {}
    if resume:
        if journal is None:
            raise ValueError("resume requires a journal path")
        if not os.path.exists(journal.path):
            raise FileNotFoundError(
                f"cannot resume: journal {journal.path!r} does not exist")
        for record in journal.load():
            if record.get("kind") != "chaos-trial":
                continue
            key = (str(record.get("digest")), int(record.get("seed", 0)),
                   str(record.get("relation")))
            done[key] = record

    # Wall-clock only; bounds the campaign process, never journaled.
    if clock is None:
        clock = time.monotonic  # repro-lint: disable=DET001
    start = clock()

    result = ChaosResult(journal_path=journal_path)
    records = result.records
    for index in range(trials):
        if time_budget is not None and clock() - start >= time_budget:
            result.stopped_early = True
            break
        scenario = generator.scenario(index)
        relation = relation_for_trial(index)
        digest = scenario.digest()
        prior = done.get((digest, scenario.seed, relation))
        if prior is not None:
            record = dict(prior)
            record["resumed"] = True
            records.append(record)  # repro-lint: disable=MEM001 -- one record per differential trial, bounded by --trials
            continue
        record, corpus_path = run_differential_trial(
            scenario, relation, index, master_seed, check,
            shrink_budget=shrink_budget, corpus_dir=corpus_dir)
        if corpus_path is not None:
            result.corpus_paths.append(corpus_path)
        if journal is not None:
            journal.append(record)
        records.append(record)  # repro-lint: disable=MEM001 -- one record per differential trial, bounded by --trials
    if journal is not None:
        journal.close()
    return result
