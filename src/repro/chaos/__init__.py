"""Chaos fuzzing: randomized scenarios, oracles, shrinking, and a corpus.

The paper's central finding — RRC promotion × TCP RTO producing
spurious-retransmission storms (Figures 10–13) — is an *emergent*
cross-layer pathology no single-component test would catch.  This
package hunts for that class of bug in the simulator itself:

* :mod:`~repro.chaos.generator` draws random ``(config, fault plan,
  seed)`` scenarios from a declarative :class:`SearchSpace`, replayable
  from one master seed;
* :mod:`~repro.chaos.oracles` runs each scenario under strict invariant
  checks with the wedge watchdog, twice, classifying crashes and
  flagging event-digest divergence between identical replays;
* :mod:`~repro.chaos.shrinker` delta-debugs any failure down to a
  1-minimal scenario within a shrink budget;
* :mod:`~repro.chaos.corpus` freezes minimal repros as JSON files that
  the tier-1 suite replays forever after (``tests/chaos_corpus/``);
* :mod:`~repro.chaos.campaign` drives it all through the crash-safe,
  resumable campaign journal.
"""

from .campaign import ChaosResult, run_chaos_campaign
from .corpus import (CorpusFormatError, corpus_entry, entry_filename,
                     load_corpus, replay_entry, save_entry, validate_entry)
from .differential import (RELATION_NAMES, RELATIONS, check_differential,
                           differential_digest, differential_report,
                           pair_scenarios, relation_for_trial,
                           run_differential_campaign)
from .generator import ScenarioGenerator, SearchSpace
from .oracles import (CHAOS_EVENT_BUDGET, FAILURE_KINDS, OracleVerdict,
                      check_scenario, classify_exception, run_digest)
from .scenario import BASELINE_CONFIG, Scenario
from .shrinker import DEFAULT_SHRINK_BUDGET, ShrinkResult, shrink

__all__ = [
    "BASELINE_CONFIG", "CHAOS_EVENT_BUDGET", "ChaosResult",
    "CorpusFormatError", "DEFAULT_SHRINK_BUDGET", "FAILURE_KINDS",
    "OracleVerdict", "RELATIONS", "RELATION_NAMES",
    "Scenario", "ScenarioGenerator", "SearchSpace", "ShrinkResult",
    "check_differential", "check_scenario", "classify_exception",
    "corpus_entry", "differential_digest", "differential_report",
    "entry_filename", "load_corpus", "pair_scenarios",
    "relation_for_trial", "replay_entry", "run_chaos_campaign",
    "run_differential_campaign", "run_digest", "save_entry", "shrink",
    "validate_entry",
]
