"""The minimal-repro corpus: failures, frozen as regression tests.

Every shrunk failure serializes to one small JSON file — the scenario
(config overrides + exact fault spec + seed), the failure class it
exhibited when found, and the shrink accounting.  The pytest harness
(``tests/test_chaos_corpus.py``) replays every entry under strict
checks and expects it to *pass*: a corpus entry documents a bug that has
been fixed, and replaying green proves it stays fixed.

Entries with ``expected_failure: "pass"`` are *sentinels*: hairy
scenarios from past sweeps checked in as determinism anchors, so the
replay harness exercises the oracles even when no bug is outstanding.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from .oracles import CHAOS_EVENT_BUDGET, OracleVerdict, check_scenario
from .scenario import Scenario

__all__ = ["corpus_entry", "entry_filename", "load_corpus", "replay_entry",
           "save_entry"]

_SCHEMA = 1


def corpus_entry(scenario: Scenario, verdict: OracleVerdict,
                 master_seed: Optional[int] = None,
                 trial_index: Optional[int] = None,
                 shrink_info: Optional[Dict[str, object]] = None,
                 note: str = "") -> Dict[str, object]:
    """Build the JSON-able corpus record for one (minimal) scenario."""
    return {
        "schema": _SCHEMA,
        "expected_failure": verdict.status,   # failure class when found
        "error_type": verdict.error_type,
        "message": verdict.message,
        "scenario": scenario.to_dict(),
        "master_seed": master_seed,
        "trial_index": trial_index,
        "shrink": dict(shrink_info or {}),
        "note": note,
    }


def entry_filename(entry: Dict[str, object]) -> str:
    """Deterministic, self-describing file name for a corpus entry."""
    scenario = Scenario.from_dict(entry["scenario"])  # type: ignore[arg-type]
    return (f"{entry.get('expected_failure', 'pass')}-"
            f"{scenario.digest()}-s{scenario.seed}.json")


def save_entry(entry: Dict[str, object], corpus_dir: str) -> str:
    """Write one entry (pretty-printed, stable key order); returns path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, entry_filename(entry))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(corpus_dir: str) -> List[Tuple[str, Dict[str, object]]]:
    """All (path, entry) pairs in a corpus directory, sorted by name."""
    entries: List[Tuple[str, Dict[str, object]]] = []
    if not os.path.isdir(corpus_dir):
        return entries
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        if isinstance(entry, dict) and "scenario" in entry:
            entries.append((path, entry))
    return entries


def replay_entry(entry: Dict[str, object],
                 event_budget: Optional[int] = CHAOS_EVENT_BUDGET,
                 determinism: bool = True) -> OracleVerdict:
    """Re-run one corpus entry through the full oracle stack."""
    scenario = Scenario.from_dict(entry["scenario"])  # type: ignore[arg-type]
    return check_scenario(scenario, event_budget=event_budget,
                          determinism=determinism)
